//! Concurrency stress over the coordinator's shard-handle locks: reader
//! threads opening sessions and running queries race mutator threads doing
//! fork-mutate-swap inserts/removes. Every answer must be internally
//! consistent with the session's pinned epoch vector, and id allocation
//! must stay dense and unique under the race.
//!
//! Under `--features lock-audit` the handle locks record acquisition
//! orders, so this test doubles as the runtime witness for the static lock
//! graph (DESIGN.md §12) — CI runs it with the feature on.

use graphrep_datagen::{DatasetKind, DatasetSpec};
use graphrep_ged::GedConfig;
use graphrep_graph::generate::mutate;
use graphrep_shard::{CoordConfig, Coordinator};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;

const READERS: usize = 4;
const MUTATORS: usize = 2;
const MUTATIONS_PER_THREAD: usize = 8;

#[test]
fn concurrent_queries_and_mutations_stay_consistent() {
    let data = DatasetSpec::new(DatasetKind::DudLike, 24, 23).generate();
    let coord = Arc::new(Coordinator::build(
        &data.db,
        GedConfig::default(),
        &CoordConfig {
            shards: 4,
            seed: 1,
            ladder: data.default_ladder.clone(),
        },
    ));
    let relevant = data.default_query().relevant_set(&data.db);
    let theta = data.default_theta;
    let stop = Arc::new(AtomicBool::new(false));
    let seen_ids = Arc::new(Mutex::new(Vec::new()));

    let mut handles = Vec::new();
    for t in 0..MUTATORS {
        let coord = Arc::clone(&coord);
        let seen = Arc::clone(&seen_ids);
        let base = data.db.graphs().to_vec();
        handles.push(thread::spawn(move || {
            let mut rng = SmallRng::seed_from_u64(0xBEEF ^ t as u64);
            for i in 0..MUTATIONS_PER_THREAD {
                let src = rng.gen_range(0..base.len());
                let g = mutate(&mut rng, &base[src], 1, &[0, 1], &[0]);
                let receipt = coord.insert(g).expect("insert under race");
                assert_eq!(
                    receipt.epochs.len(),
                    coord.shard_count(),
                    "receipts always carry the full epoch vector"
                );
                seen.lock().expect("collector lock").push(receipt.id);
                if i % 3 == 2 {
                    // Remove something we inserted ourselves to keep the
                    // original dataset intact for the readers. This must
                    // succeed: it proves the concurrent insert landed in
                    // the owning shard's ascending member order (routing
                    // resolves ids by binary search).
                    let removed = coord
                        .remove(receipt.id)
                        .expect("freshly inserted id must route to its owning shard");
                    assert_eq!(removed.id, receipt.id);
                    assert_eq!(
                        removed.shard, receipt.shard,
                        "remove routes to the inserting shard"
                    );
                }
            }
        }));
    }
    for t in 0..READERS {
        let coord = Arc::clone(&coord);
        let stop = Arc::clone(&stop);
        let relevant = relevant.clone();
        handles.push(thread::spawn(move || {
            let mut rng = SmallRng::seed_from_u64(0xFEED ^ t as u64);
            let mut runs = 0u32;
            while !stop.load(Ordering::Relaxed) || runs < 4 {
                let session = coord.session(relevant.clone());
                let epochs = session.epochs();
                let k = 1 + rng.gen_range(0..4);
                let (answer, stats) = session.run(theta, k);
                assert!(answer.ids.len() <= k);
                assert!(answer.covered <= answer.relevant);
                assert_eq!(
                    session.epochs(),
                    epochs,
                    "a session stays pinned to its epoch vector"
                );
                assert_eq!(stats.shard_count, coord.shard_count());
                runs += 1;
                if runs > 64 {
                    break;
                }
            }
        }));
    }
    // Let readers overlap the mutation burst, then wind down.
    for h in handles.drain(..MUTATORS) {
        h.join().expect("mutator panicked");
    }
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().expect("reader panicked");
    }

    let mut ids = seen_ids.lock().expect("collector lock").clone();
    ids.sort_unstable();
    let expect: Vec<u32> =
        (data.db.len() as u32..(data.db.len() + MUTATORS * MUTATIONS_PER_THREAD) as u32).collect();
    assert_eq!(ids, expect, "global ids are allocated densely and uniquely");
}
