//! Mutation routing and restart consistency (DESIGN.md §14): a mutation
//! must land on exactly one shard (only that shard's epoch moves), receipts
//! must carry the full epoch vector, and a coordinator restarted from
//! persisted shard manifests must answer byte-identically at the recorded
//! epochs. A torn manifest — truncated before its `end` terminator, the
//! same discipline as the serve layer's `epoch.txt` — must be detected and
//! answered with a rebuild fallback, never silently served.

use graphrep_core::{NbIndex, NbIndexConfig};
use graphrep_datagen::{Dataset, DatasetKind, DatasetSpec};
use graphrep_ged::GedConfig;
use graphrep_graph::generate::mutate;
use graphrep_shard::{CoordConfig, CoordError, Coordinator, ManifestError, RestoreSource};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;

fn dataset() -> Dataset {
    DatasetSpec::new(DatasetKind::DudLike, 26, 17).generate()
}

fn config(shards: usize, ladder: &[f64]) -> CoordConfig {
    CoordConfig {
        shards,
        seed: 0xC0FFEE,
        ladder: ladder.to_vec(),
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("graphrep-shard-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Inserts and removes bump exactly the owning shard's epoch; every receipt
/// carries the full epoch vector.
#[test]
fn mutations_route_to_owning_shard_only() {
    let data = dataset();
    let coord = Coordinator::build(
        &data.db,
        GedConfig::default(),
        &config(4, &data.default_ladder),
    );
    let mut rng = SmallRng::seed_from_u64(99);
    let mut before = coord.epochs();
    assert_eq!(before, vec![0, 0, 0, 0]);
    for i in 0..6 {
        let src = rng.gen_range(0..data.db.len());
        let g = mutate(
            &mut rng,
            data.db.graph(src as u32),
            1 + i % 3,
            &[0, 1],
            &[0],
        );
        let receipt = coord.insert(g).expect("insert");
        assert_eq!(receipt.epochs.len(), 4, "receipt carries the full vector");
        assert_eq!(receipt.epochs, coord.epochs());
        for (s, (&e0, &e1)) in before.iter().zip(&receipt.epochs).enumerate() {
            if s == receipt.shard {
                assert_eq!(e1, e0 + 1, "owning shard {s} bumps once");
            } else {
                assert_eq!(e1, e0, "shard {s} must not move for a foreign insert");
            }
        }
        before = receipt.epochs;
    }
    // Removals route by ownership lookup, not geometry.
    let receipt = coord.remove(3).expect("remove");
    for (s, (&e0, &e1)) in before.iter().zip(&receipt.epochs).enumerate() {
        let expect = if s == receipt.shard { e0 + 1 } else { e0 };
        assert_eq!(e1, expect);
    }
    assert!(coord.remove(10_000).is_err(), "unowned id is rejected");
}

/// Round trip through `save`/`load`: the restarted coordinator sits at the
/// recorded epoch vector and answers byte-identically — and both agree with
/// the single-index reference over the same live state.
#[test]
fn restart_from_manifest_answers_identically() {
    let data = dataset();
    let coord = Coordinator::build(
        &data.db,
        GedConfig::default(),
        &config(3, &data.default_ladder),
    );
    let mut rng = SmallRng::seed_from_u64(4242);
    let mut reference = NbIndex::build(
        data.db.oracle(GedConfig::default()),
        NbIndexConfig {
            num_vps: 4,
            ladder: data.default_ladder.clone(),
            ..Default::default()
        },
    );
    let mut live: Vec<u32> = (0..data.db.len() as u32).collect();
    for i in 0..4 {
        let g = mutate(&mut rng, data.db.graph(i), 2, &[0, 1], &[0]);
        let receipt = coord.insert(g.clone()).expect("insert");
        let (id, _) = reference.insert(g).expect("reference insert");
        assert_eq!(receipt.id, id);
        live.push(id);
    }
    coord.remove(live[1]).expect("remove");
    reference.remove(live[1]).expect("reference remove");
    live.remove(1);

    let dir = temp_dir("restart");
    coord.save(&dir).expect("save");
    let restored = Coordinator::load(&dir, GedConfig::default()).expect("load");
    assert_eq!(restored.epochs(), coord.epochs(), "recorded epoch vector");
    assert_eq!(restored.live_len(), coord.live_len());

    let theta = data.default_theta;
    for k in [1, 3, 6] {
        let (want, _) = reference.start_session(live.clone()).run(theta, k);
        let (before, _) = coord.session(live.clone()).run(theta, k);
        let (after, _) = restored.session(live.clone()).run(theta, k);
        assert_eq!(format!("{before:?}"), format!("{want:?}"));
        assert_eq!(
            format!("{after:?}"),
            format!("{want:?}"),
            "restart must not change any answer at k = {k}"
        );
    }
    // A post-restart mutation continues the id sequence where it left off.
    let g = mutate(&mut rng, data.db.graph(0), 1, &[0, 1], &[0]);
    let receipt = restored.insert(g.clone()).expect("insert after restart");
    let (id, _) = reference.insert(g).expect("reference insert");
    assert_eq!(receipt.id, id);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A manifest truncated before its `end` terminator is detected as torn;
/// `open_or_rebuild` falls back to a fresh build and re-persists it.
#[test]
fn torn_manifest_is_detected_and_rebuilt() {
    let data = dataset();
    let cfg = config(3, &data.default_ladder);
    let coord = Coordinator::build(&data.db, GedConfig::default(), &cfg);
    let dir = temp_dir("torn");
    coord.save(&dir).expect("save");

    // Tear the manifest: drop its tail, terminator included.
    let path = dir.join("manifest.txt");
    let full = std::fs::read_to_string(&path).expect("read manifest");
    std::fs::write(&path, &full[..full.len() * 2 / 3]).expect("tear manifest");
    match Coordinator::load(&dir, GedConfig::default()) {
        Err(CoordError::Manifest(ManifestError::Torn(_) | ManifestError::Format(_))) => {}
        other => panic!("torn manifest must be detected, got {other:?}"),
    }

    let (rebuilt, source) =
        Coordinator::open_or_rebuild(&dir, &data.db, GedConfig::default(), &cfg)
            .expect("fallback rebuild");
    assert!(
        matches!(source, RestoreSource::Rebuilt(_)),
        "fallback must report the rebuild"
    );
    assert_eq!(rebuilt.epochs(), vec![0, 0, 0]);
    assert_eq!(rebuilt.live_len(), data.db.len());

    // The rebuild re-persisted a clean manifest: the next open loads it.
    let (reloaded, source) =
        Coordinator::open_or_rebuild(&dir, &data.db, GedConfig::default(), &cfg)
            .expect("reload after repair");
    assert_eq!(source, RestoreSource::Loaded);
    let relevant = data.default_query().relevant_set(&data.db);
    let (a, _) = rebuilt.session(relevant.clone()).run(data.default_theta, 4);
    let (b, _) = reloaded.session(relevant).run(data.default_theta, 4);
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
    let _ = std::fs::remove_dir_all(&dir);
}

/// A missing shard payload (deleted `index.bin`) is a load error even with
/// an intact manifest — the manifest is the commit record, the payloads are
/// its referents.
#[test]
fn missing_shard_payload_fails_load() {
    let data = dataset();
    let cfg = config(2, &data.default_ladder);
    let coord = Coordinator::build(&data.db, GedConfig::default(), &cfg);
    let dir = temp_dir("missing");
    coord.save(&dir).expect("save");
    std::fs::remove_file(dir.join("shard1").join("index.bin")).expect("drop payload");
    assert!(matches!(
        Coordinator::load(&dir, GedConfig::default()),
        Err(CoordError::Shard(1, _))
    ));
    let _ = std::fs::remove_dir_all(&dir);
}
