//! The shard manifest: a small line-oriented text file committing a shard
//! layout to disk (`manifest.txt`), mirroring PR 5's `epoch.txt` discipline.
//!
//! Save order is per-shard payloads first (each shard's `graphs.txt` and
//! `index.bin`), manifest last — the manifest is the commit record. A torn
//! write leaves either no manifest or one missing its `end` terminator;
//! both are detected and reported as [`ManifestError::Torn`], and callers
//! fall back to rebuilding the shards from the source dataset.
//!
//! Floats (center distances, radii, ladder rungs) are persisted as
//! `f64::to_bits` hex so a round trip is bit-exact.

use graphrep_graph::GraphId;
use std::fmt::Write as _;

const HEADER: &str = "graphrep-shard-manifest v1";

/// Per-shard record inside a [`Manifest`].
#[derive(Debug, Clone, PartialEq)]
pub struct ShardRecord {
    /// Mutation epoch the shard's `index.bin` was saved at.
    pub epoch: u64,
    /// Covering radius of the shard around its center.
    pub radius: f64,
    /// Global ids of the shard's members, ascending (tombstones included).
    pub members: Vec<GraphId>,
    /// Distance of each member to the shard center, parallel to `members`.
    pub to_center: Vec<f64>,
}

/// The persisted shard layout: partition geometry plus per-shard epochs.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// Partitioner seed.
    pub seed: u64,
    /// Next global id the coordinator will assign on insert.
    pub next_id: u64,
    /// π̂ threshold ladder the shard indexes were built with.
    pub ladder: Vec<f64>,
    /// Center graph id per shard (global ids at partition time).
    pub centers: Vec<GraphId>,
    /// Dense `S×S` center-to-center distances, row-major.
    pub center_dist: Vec<f64>,
    /// One record per shard.
    pub shards: Vec<ShardRecord>,
}

/// Why a manifest failed to load.
#[derive(Debug)]
pub enum ManifestError {
    /// Missing `end` terminator or truncated record: a torn write.
    Torn(String),
    /// Structurally present but unparseable content.
    Format(String),
    /// I/O failure reading the file.
    Io(std::io::Error),
}

impl std::fmt::Display for ManifestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ManifestError::Torn(m) => write!(f, "torn shard manifest: {m}"),
            ManifestError::Format(m) => write!(f, "malformed shard manifest: {m}"),
            ManifestError::Io(e) => write!(f, "shard manifest io: {e}"),
        }
    }
}

impl std::error::Error for ManifestError {}

fn f64_hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn parse_f64_hex(s: &str) -> Result<f64, ManifestError> {
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|e| ManifestError::Format(format!("bad f64 bits {s:?}: {e}")))
}

fn parse_u64(s: &str) -> Result<u64, ManifestError> {
    s.parse()
        .map_err(|e| ManifestError::Format(format!("bad integer {s:?}: {e}")))
}

impl Manifest {
    /// Serializes to the line-oriented text format, `end`-terminated.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        let s = self.shards.len();
        // Writing to a String cannot fail; unwraps are absent by using
        // the infallible `push_str`/`writeln!` pattern on String.
        let _ = writeln!(out, "{HEADER}");
        let _ = writeln!(out, "seed {}", self.seed);
        let _ = writeln!(out, "shards {s}");
        let _ = writeln!(out, "next_id {}", self.next_id);
        let _ = writeln!(
            out,
            "ladder {}",
            join(self.ladder.iter().map(|&v| f64_hex(v)))
        );
        let _ = writeln!(
            out,
            "centers {}",
            join(self.centers.iter().map(|c| c.to_string()))
        );
        let _ = writeln!(
            out,
            "centerdist {}",
            join(self.center_dist.iter().map(|&v| f64_hex(v)))
        );
        for (i, rec) in self.shards.iter().enumerate() {
            let _ = writeln!(
                out,
                "shard {i} epoch {} radius {}",
                rec.epoch,
                f64_hex(rec.radius)
            );
            let _ = writeln!(
                out,
                "members {}",
                join(rec.members.iter().map(|m| m.to_string()))
            );
            let _ = writeln!(
                out,
                "tocenter {}",
                join(rec.to_center.iter().map(|&v| f64_hex(v)))
            );
        }
        let _ = writeln!(out, "end");
        out
    }

    /// Parses [`Manifest::encode`] output. A missing `end` terminator (or a
    /// record cut short) is reported as [`ManifestError::Torn`].
    pub fn decode(text: &str) -> Result<Self, ManifestError> {
        let mut lines = text.lines();
        let head = lines
            .next()
            .ok_or_else(|| ManifestError::Torn("empty file".into()))?;
        if head != HEADER {
            return Err(ManifestError::Format(format!("unexpected header {head:?}")));
        }
        let take = |key: &str, lines: &mut std::str::Lines| -> Result<String, ManifestError> {
            let line = lines
                .next()
                .ok_or_else(|| ManifestError::Torn(format!("missing {key} line")))?;
            let rest = line
                .strip_prefix(key)
                .ok_or_else(|| ManifestError::Format(format!("expected {key:?}, got {line:?}")))?;
            Ok(rest.trim().to_string())
        };
        let seed = parse_u64(&take("seed", &mut lines)?)?;
        let shard_count = parse_u64(&take("shards", &mut lines)?)? as usize;
        let next_id = parse_u64(&take("next_id", &mut lines)?)?;
        let ladder = split_f64(&take("ladder", &mut lines)?)?;
        let centers = split_ids(&take("centers", &mut lines)?)?;
        let center_dist = split_f64(&take("centerdist", &mut lines)?)?;
        if centers.len() != shard_count || center_dist.len() != shard_count * shard_count {
            return Err(ManifestError::Format(format!(
                "geometry arity mismatch: {} centers, {} distances for {shard_count} shards",
                centers.len(),
                center_dist.len()
            )));
        }
        let mut shards = Vec::with_capacity(shard_count);
        for i in 0..shard_count {
            let head = take(&format!("shard {i}"), &mut lines)?;
            let fields: Vec<&str> = head.split_whitespace().collect();
            let [epoch_key, epoch, radius_key, radius] = fields[..] else {
                return Err(ManifestError::Format(format!("bad shard line {head:?}")));
            };
            if epoch_key != "epoch" || radius_key != "radius" {
                return Err(ManifestError::Format(format!("bad shard line {head:?}")));
            }
            let epoch = parse_u64(epoch)?;
            let radius = parse_f64_hex(radius)?;
            let members = split_ids(&take("members", &mut lines)?)?;
            let to_center = split_f64(&take("tocenter", &mut lines)?)?;
            if members.len() != to_center.len() {
                return Err(ManifestError::Format(format!(
                    "shard {i}: {} members but {} center distances",
                    members.len(),
                    to_center.len()
                )));
            }
            shards.push(ShardRecord {
                epoch,
                radius,
                members,
                to_center,
            });
        }
        match lines.next() {
            Some("end") => {}
            Some(other) => {
                return Err(ManifestError::Format(format!(
                    "expected terminator, got {other:?}"
                )))
            }
            None => return Err(ManifestError::Torn("missing end terminator".into())),
        }
        Ok(Manifest {
            seed,
            next_id,
            ladder,
            centers,
            center_dist,
            shards,
        })
    }

    /// Per-shard epoch vector recorded by this manifest.
    pub fn epochs(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.epoch).collect()
    }
}

fn join(parts: impl Iterator<Item = String>) -> String {
    parts.collect::<Vec<_>>().join(" ")
}

fn split_ids(s: &str) -> Result<Vec<GraphId>, ManifestError> {
    s.split_whitespace()
        .map(|t| {
            t.parse::<GraphId>()
                .map_err(|e| ManifestError::Format(format!("bad graph id {t:?}: {e}")))
        })
        .collect()
}

fn split_f64(s: &str) -> Result<Vec<f64>, ManifestError> {
    s.split_whitespace().map(parse_f64_hex).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            seed: 42,
            next_id: 7,
            ladder: vec![2.0, 4.0],
            centers: vec![0, 3],
            center_dist: vec![0.0, 5.5, 5.5, 0.0],
            shards: vec![
                ShardRecord {
                    epoch: 2,
                    radius: 3.25,
                    members: vec![0, 1, 2],
                    to_center: vec![0.0, 1.5, 3.25],
                },
                ShardRecord {
                    epoch: 0,
                    radius: 2.0,
                    members: vec![3, 4],
                    to_center: vec![0.0, 2.0],
                },
            ],
        }
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let m = sample();
        let decoded = Manifest::decode(&m.encode()).unwrap();
        assert_eq!(m, decoded);
        assert_eq!(decoded.epochs(), vec![2, 0]);
    }

    #[test]
    fn truncation_is_reported_as_torn() {
        let full = sample().encode();
        // Drop the terminator line, then progressively larger tails.
        let torn = full.trim_end().trim_end_matches("end").to_string();
        assert!(matches!(
            Manifest::decode(&torn),
            Err(ManifestError::Torn(_) | ManifestError::Format(_))
        ));
        let half = &full[..full.len() / 2];
        assert!(Manifest::decode(half).is_err());
    }

    #[test]
    fn garbage_is_a_format_error() {
        assert!(matches!(
            Manifest::decode("graphrep-shard-manifest v1\nseed x\n"),
            Err(ManifestError::Format(_))
        ));
        assert!(matches!(
            Manifest::decode("not a manifest"),
            Err(ManifestError::Format(_))
        ));
    }
}
