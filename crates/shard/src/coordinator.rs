//! The scatter-gather coordinator: distributed greedy/CELF over shards.
//!
//! The coordinator never performs distance work itself (enforced by lint
//! G011): it aggregates per-shard π̂ upper bounds into one global best-first
//! frontier and asks a shard to refine — verify a candidate's exact
//! θ-neighborhood, paying GED — only while that candidate's bound can still
//! beat the best verified pick. Shards whose geometry proves they cannot
//! contribute members (center-distance triangle test, DESIGN.md §14) are
//! never contacted at all; the per-pick fraction of such silent shards is
//! the subsystem's headline pruning metric.
//!
//! Exactness: every accepted pick has a *verified* marginal gain at least
//! every bound left in the frontier, with ties toward the smaller global
//! id — the same acceptance rule as [`graphrep_core::QuerySession`], so a
//! sharded answer is byte-identical to the single-index answer.
//!
//! Consistency: mutations route to the owning shard, run fork-mutate-swap
//! under that shard's handle lock, and bump only that shard's epoch. A
//! session snapshots every shard's `Arc` once at creation — an epoch
//! *vector* — so its answers are serializable against one global state.

use crate::manifest::{Manifest, ManifestError};
use crate::partition::{partition, PartitionConfig};
use crate::shard::{ShardIoError, ShardState};
use graphrep_core::{
    AnswerSet, CancelToken, Cancelled, GraphDatabase, MutateError, MutationOutcome, PickEvent,
};
use graphrep_ged::GedConfig;
use graphrep_graph::{Graph, GraphId};
use graphrep_lockaudit::TrackedRwLock;
use graphrep_metric::Bitset;
use std::collections::{BinaryHeap, HashMap};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Triangle-prune slop, matching the oracle's θ-membership boundary
/// (`d ≤ θ + 1e-9` is inside, so only `bound > θ + 1e-9` may prune).
const THETA_EPS: f64 = 1e-9;

/// Coordinator build parameters.
#[derive(Debug, Clone)]
pub struct CoordConfig {
    /// Requested shard count `S`.
    pub shards: usize,
    /// Partitioner seed (center selection).
    pub seed: u64,
    /// π̂ threshold ladder for the per-shard indexes.
    pub ladder: Vec<f64>,
}

impl Default for CoordConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            seed: 0x5eed,
            ladder: vec![],
        }
    }
}

/// One shard's slot in the coordinator: the current snapshot behind a
/// tracked lock, swapped whole on mutation.
#[derive(Debug)]
struct ShardHandle {
    state: TrackedRwLock<Arc<ShardState>>,
}

/// Receipt for a routed mutation: which shard absorbed it and the full
/// per-shard epoch vector afterwards.
#[derive(Debug, Clone)]
pub struct CoordReceipt {
    /// Global id inserted or removed.
    pub id: GraphId,
    /// Owning shard the mutation landed on.
    pub shard: usize,
    /// How the owning shard absorbed it.
    pub outcome: MutationOutcome,
    /// Epoch of every shard after the mutation (only `shard`'s moved).
    pub epochs: Vec<u64>,
    /// Total member slots across shards (live + tombstoned), from the same
    /// snapshot as `live` — so `len - live` is a consistent tombstone count.
    pub len: usize,
    /// Total live graphs across shards.
    pub live: usize,
}

/// How [`Coordinator::open_or_rebuild`] obtained its state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RestoreSource {
    /// Every shard loaded from disk at its manifest epoch.
    Loaded,
    /// Persisted state was absent, torn, or inconsistent; shards were
    /// rebuilt from the source dataset (reason attached).
    Rebuilt(String),
}

/// Why a persisted coordinator failed to load.
#[derive(Debug)]
pub enum CoordError {
    /// Manifest missing, torn, or malformed.
    Manifest(ManifestError),
    /// A shard directory failed to restore.
    Shard(usize, ShardIoError),
}

impl std::fmt::Display for CoordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoordError::Manifest(e) => write!(f, "{e}"),
            CoordError::Shard(s, e) => write!(f, "shard {s}: {e}"),
        }
    }
}

impl std::error::Error for CoordError {}

/// The sharded deployment: partition geometry plus one handle per shard.
#[derive(Debug)]
pub struct Coordinator {
    shards: Vec<ShardHandle>,
    seed: u64,
    /// Global center ids, fixed at partition time.
    centers: Vec<GraphId>,
    /// Dense `S×S` center-to-center distances, row-major.
    center_dist: Vec<f64>,
    ladder: Vec<f64>,
    /// Next global id an insert will claim — monotone, tracking exactly the
    /// id a single-index deployment would assign (`oracle.len()`).
    next_id: AtomicU64,
}

impl Coordinator {
    /// Partitions `db` and builds every shard's index.
    pub fn build(db: &GraphDatabase, ged: GedConfig, cfg: &CoordConfig) -> Coordinator {
        let part = partition(
            db,
            ged,
            &PartitionConfig {
                shards: cfg.shards,
                seed: cfg.seed,
            },
        );
        let shards = part
            .members
            .iter()
            .enumerate()
            .map(|(s, members)| ShardHandle {
                state: TrackedRwLock::new(
                    "shard.coordinator.ShardHandle.state",
                    Arc::new(ShardState::build(
                        db,
                        ged,
                        members.clone(),
                        part.to_center[s].clone(),
                        part.centers[s],
                        part.radius[s],
                        &cfg.ladder,
                    )),
                ),
            })
            .collect();
        Coordinator {
            shards,
            seed: cfg.seed,
            centers: part.centers,
            center_dist: part.center_dist,
            ladder: cfg.ladder.clone(),
            next_id: AtomicU64::new(db.len() as u64),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Current snapshot of shard `s`.
    fn snap(&self, s: usize) -> Arc<ShardState> {
        self.shards[s].state.read().clone()
    }

    /// Current snapshots of every shard — one consistent epoch vector per
    /// individual read, pinned for as long as the caller holds the `Arc`s.
    fn snap_all(&self) -> Vec<Arc<ShardState>> {
        (0..self.shards.len()).map(|s| self.snap(s)).collect()
    }

    /// Current snapshots of every shard, for observability layers that
    /// aggregate per-shard counters themselves. Each entry pins that
    /// shard's state at its own epoch, exactly like a session would.
    pub fn snapshots(&self) -> Vec<Arc<ShardState>> {
        self.snap_all()
    }

    /// Per-shard mutation epochs right now.
    pub fn epochs(&self) -> Vec<u64> {
        self.snap_all().iter().map(|s| s.epoch()).collect()
    }

    /// Total live graphs across shards.
    pub fn live_len(&self) -> usize {
        self.snap_all().iter().map(|s| s.live_len()).sum()
    }

    /// Total member slots across shards (live + tombstoned).
    pub fn len(&self) -> usize {
        self.snap_all().iter().map(|s| s.len()).sum()
    }

    /// Global ids of every live member, ascending. Lets a single-index
    /// reference replay this layout's tombstones, since liveness is
    /// persisted per shard rather than in one `index.bin`.
    pub fn live_ids(&self) -> Vec<GraphId> {
        let mut ids: Vec<GraphId> = Vec::with_capacity(self.live_len());
        for s in self.snap_all() {
            ids.extend(
                (0..s.len() as GraphId)
                    .filter(|&l| s.is_live(l))
                    .map(|l| s.global_of(l)),
            );
        }
        ids.sort_unstable();
        ids
    }

    /// True when no shard holds any member slot.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Opens a query session pinned to the current epoch vector. Tombstoned
    /// ids in `relevant` are dropped, preserving order — the same admission
    /// rule as [`graphrep_core::NbIndex::start_session`].
    pub fn session(&self, relevant: Vec<GraphId>) -> CoordSession {
        CoordSession::new(
            self.snap_all(),
            self.center_dist.clone(),
            relevant,
            // SeqCst: the id-space bound must not be observed behind a
            // concurrently completed insert's snapshot.
            self.next_id.load(Ordering::SeqCst) as usize,
        )
    }

    /// Inserts `graph`, routing it to the shard with the nearest center
    /// (ties toward the smaller shard index) and assigning the next global
    /// id — exactly the id a single-index deployment would assign.
    pub fn insert(&self, graph: Graph) -> Result<CoordReceipt, MutateError> {
        // Routing distances probe fixed center graphs: no lock is held and
        // no later mutation can change the owner.
        let snaps = self.snap_all();
        let mut owner = (f64::INFINITY, 0usize);
        for (s, snap) in snaps.iter().enumerate() {
            let d = snap.center_distance(&graph);
            if d < owner.0 {
                owner = (d, s);
            }
        }
        let (d_center, s) = owner;
        let (global, outcome) = {
            let mut guard = self.shards[s].state.write();
            // The id is claimed *under* the owning shard's write lock: ids
            // handed out by the same shard are then monotone in append
            // order, keeping `members` ascending (its binary-search
            // invariant) even when concurrent inserts race to one shard.
            // SeqCst: global ids must still form one total order across all
            // shards so they match what a single-index deployment assigns.
            let global = self.next_id.fetch_add(1, Ordering::SeqCst) as GraphId;
            let (next, outcome) = guard
                // graphrep: allow(G008, mutations serialize on the owning shard's handle lock by design -- the NP-hard insert runs on a private fork while readers and sessions keep their pinned Arc snapshots; only competing mutations of the same shard wait)
                .with_insert(graph, global, d_center)?;
            *guard = Arc::new(next);
            (global, outcome)
        };
        Ok(self.receipt(global, s, outcome))
    }

    /// Tombstones global id `g` on its owning shard.
    pub fn remove(&self, g: GraphId) -> Result<CoordReceipt, MutateError> {
        let snaps = self.snap_all();
        let Some(s) = snaps.iter().position(|snap| snap.local_of(g).is_some()) else {
            return Err(MutateError(format!("graph {g} is not owned by any shard")));
        };
        let outcome = {
            let mut guard = self.shards[s].state.write();
            let (next, outcome) = guard
                // graphrep: allow(G008, same serialization as insert -- the tombstone and any rebuild it trips run on a private fork under the owning shard's handle lock)
                .with_remove(g)?;
            *guard = Arc::new(next);
            outcome
        };
        Ok(self.receipt(g, s, outcome))
    }

    fn receipt(&self, id: GraphId, shard: usize, outcome: MutationOutcome) -> CoordReceipt {
        let snaps = self.snap_all();
        CoordReceipt {
            id,
            shard,
            outcome,
            epochs: snaps.iter().map(|s| s.epoch()).collect(),
            len: snaps.iter().map(|s| s.len()).sum(),
            live: snaps.iter().map(|s| s.live_len()).sum(),
        }
    }

    /// Cumulative per-shard engine entries: oracle-mediated calls plus
    /// foreign-probe calls, one entry per shard.
    pub fn engine_entries(&self) -> Vec<u64> {
        self.snap_all()
            .iter()
            .map(|s| s.engine_calls() + s.foreign_calls())
            .collect()
    }

    /// Point-in-time per-shard overview for observability endpoints (one
    /// consistent snapshot per shard, like [`Coordinator::epochs`]).
    pub fn overview(&self) -> Vec<ShardOverview> {
        self.snap_all()
            .iter()
            .enumerate()
            .map(|(shard, s)| ShardOverview {
                shard,
                epoch: s.epoch(),
                len: s.len(),
                live: s.live_len(),
                radius: s.radius(),
                engine_calls: s.engine_calls(),
                foreign_calls: s.foreign_calls(),
                index_memory_bytes: s.index_memory_bytes(),
            })
            .collect()
    }

    /// Persists every shard (its `graphs.txt` + `index.bin`) and then the
    /// manifest — last, as the commit record: a torn save leaves a missing
    /// or unterminated manifest, which [`Coordinator::load`] detects.
    pub fn save(&self, dir: &Path) -> std::io::Result<()> {
        let snaps = self.snap_all();
        std::fs::create_dir_all(dir)?;
        for (s, snap) in snaps.iter().enumerate() {
            snap.save_dir(&dir.join(format!("shard{s}")))?;
        }
        let manifest = Manifest {
            seed: self.seed,
            // SeqCst: the persisted watermark must cover every id already
            // handed out, or a restart could re-issue one.
            next_id: self.next_id.load(Ordering::SeqCst),
            ladder: self.ladder.clone(),
            centers: self.centers.clone(),
            center_dist: self.center_dist.clone(),
            shards: snaps.iter().map(|s| s.record()).collect(),
        };
        std::fs::write(dir.join("manifest.txt"), manifest.encode())
    }

    /// Restores a coordinator from [`Coordinator::save`] output, verifying
    /// each shard loads at its recorded epoch.
    pub fn load(dir: &Path, ged: GedConfig) -> Result<Coordinator, CoordError> {
        let text = std::fs::read_to_string(dir.join("manifest.txt"))
            .map_err(|e| CoordError::Manifest(ManifestError::Io(e)))?;
        let manifest = Manifest::decode(&text).map_err(CoordError::Manifest)?;
        let mut shards = Vec::with_capacity(manifest.shards.len());
        for (s, rec) in manifest.shards.iter().enumerate() {
            let state = ShardState::load_dir(
                &dir.join(format!("shard{s}")),
                ged,
                rec,
                manifest.centers[s],
            )
            .map_err(|e| CoordError::Shard(s, e))?;
            shards.push(ShardHandle {
                state: TrackedRwLock::new("shard.coordinator.ShardHandle.state", Arc::new(state)),
            });
        }
        Ok(Coordinator {
            shards,
            seed: manifest.seed,
            centers: manifest.centers,
            center_dist: manifest.center_dist,
            ladder: manifest.ladder,
            next_id: AtomicU64::new(manifest.next_id),
        })
    }

    /// [`Coordinator::load`], falling back to a fresh build from `db` (which
    /// is then saved to `dir`) when the persisted state is absent, torn, or
    /// inconsistent — mirroring the serve layer's `epoch.txt` discipline.
    pub fn open_or_rebuild(
        dir: &Path,
        db: &GraphDatabase,
        ged: GedConfig,
        cfg: &CoordConfig,
    ) -> std::io::Result<(Coordinator, RestoreSource)> {
        match Coordinator::load(dir, ged) {
            Ok(c) => Ok((c, RestoreSource::Loaded)),
            Err(e) => {
                let coord = Coordinator::build(db, ged, cfg);
                coord.save(dir)?;
                Ok((coord, RestoreSource::Rebuilt(e.to_string())))
            }
        }
    }
}

/// One shard's slice of a [`Coordinator::overview`] snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardOverview {
    /// Shard index.
    pub shard: usize,
    /// Mutation epoch.
    pub epoch: u64,
    /// Member slots (live + tombstoned).
    pub len: usize,
    /// Live members.
    pub live: usize,
    /// Covering radius around the shard center.
    pub radius: f64,
    /// Edit-distance engine calls through the shard's oracle.
    pub engine_calls: u64,
    /// Engine calls served for foreign (cross-shard) probes.
    pub foreign_calls: u64,
    /// Resident bytes of the shard's NB-Index.
    pub index_memory_bytes: usize,
}

/// Statistics of one distributed run.
#[derive(Debug, Clone, Default)]
pub struct CoordRunStats {
    /// Greedy picks completed.
    pub picks: u64,
    /// Shard count of the session.
    pub shard_count: usize,
    /// Over all picks, shards that performed *no* fresh verification work
    /// (geometry-pruned, empty slice, or every needed neighborhood already
    /// memoized).
    pub pruned_shard_picks: u64,
    /// Complement of `pruned_shard_picks`: shard-pick pairs that did work.
    pub touched_shard_picks: u64,
    /// Candidates whose exact neighborhood was verified.
    pub verified_candidates: u64,
    /// Per-shard engine entries (oracle + foreign) spent by this run.
    pub engine_entries: Vec<u64>,
    /// Wall time of the run.
    pub wall: Duration,
}

impl CoordRunStats {
    /// Mean fraction of shards pruned per pick, in `[0, 1]`.
    pub fn prune_rate(&self) -> f64 {
        let total = self.pruned_shard_picks + self.touched_shard_picks;
        if total == 0 {
            0.0
        } else {
            self.pruned_shard_picks as f64 / total as f64
        }
    }
}

/// A unique candidate: a live relevant graph, addressed both globally and
/// on its owning shard.
#[derive(Debug, Clone, Copy)]
struct Candidate {
    id: GraphId,
    shard: usize,
    local: GraphId,
}

/// Frontier entry, mirroring the single-index session's heap order exactly:
/// larger bound first, then verified entries before unverified at the same
/// bound, then the smaller global id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    bound: i64,
    tie: u64,
    cand: u32,
    verified: bool,
}

impl Entry {
    fn new(bound: i64, cand: u32, id: GraphId, verified: bool) -> Self {
        let v = if verified { 0u64 } else { 1 << 32 };
        Entry {
            bound,
            tie: v | id as u64,
            cand,
            verified,
        }
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.bound
            .cmp(&other.bound)
            .then_with(|| other.tie.cmp(&self.tie))
    }
}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A query session pinned to one epoch vector: the shard snapshots taken at
/// creation are immutable, so every run answers against the same global
/// state no matter what mutations land concurrently.
#[derive(Debug)]
pub struct CoordSession {
    snaps: Vec<Arc<ShardState>>,
    center_dist: Vec<f64>,
    /// Live relevant ids in caller order (duplicates preserved, like
    /// `start_session`): `|L_q|` and the π denominator.
    relevant: Vec<GraphId>,
    /// Unique candidates, grouped by shard, ascending local id.
    cand: Vec<Candidate>,
    /// Ascending unique live relevant locals per shard.
    locals: Vec<Vec<GraphId>>,
    /// Global-id bitset capacity.
    id_space: usize,
}

impl CoordSession {
    fn new(
        snaps: Vec<Arc<ShardState>>,
        center_dist: Vec<f64>,
        mut relevant: Vec<GraphId>,
        id_space: usize,
    ) -> CoordSession {
        let owner = |g: GraphId| {
            snaps
                .iter()
                .enumerate()
                .find_map(|(s, snap)| snap.local_of(g).map(|l| (s, l)))
        };
        relevant.retain(|&g| owner(g).is_some_and(|(s, l)| snaps[s].is_live(l)));
        let mut locals: Vec<Vec<GraphId>> = vec![Vec::new(); snaps.len()];
        for &g in &relevant {
            // graphrep: allow(G001, retain above kept only ids with a live owner)
            let (s, l) = owner(g).expect("relevant id lost its owner");
            locals[s].push(l);
        }
        let mut cand = Vec::new();
        for (s, ls) in locals.iter_mut().enumerate() {
            ls.sort_unstable();
            ls.dedup();
            for &l in ls.iter() {
                cand.push(Candidate {
                    id: snaps[s].global_of(l),
                    shard: s,
                    local: l,
                });
            }
        }
        CoordSession {
            snaps,
            center_dist,
            relevant,
            cand,
            locals,
            id_space,
        }
    }

    /// The live relevant set `L_q` this session answers for.
    pub fn relevant(&self) -> &[GraphId] {
        &self.relevant
    }

    /// The epoch vector this session is pinned to.
    pub fn epochs(&self) -> Vec<u64> {
        self.snaps.iter().map(|s| s.epoch()).collect()
    }

    /// Whether shard `t` provably contributes no θ-member for `cand`:
    /// `d(c_home, c_t) − d(cand, c_home) − radius_t > θ` implies every
    /// member of `t` is farther than θ from `cand` (triangle inequality,
    /// twice) — pure coordinator-side arithmetic, no shard contact.
    fn geometry_prunes(&self, cand: &Candidate, t: usize, theta: f64) -> bool {
        let s_count = self.snaps.len();
        let cc = self.center_dist[cand.shard * s_count + t];
        let to_center = self.snaps[cand.shard].member_center_distance(cand.local);
        cc - to_center - self.snaps[t].radius() > theta + THETA_EPS
    }

    /// Exact θ-neighborhood of `cand` over the whole relevant set, as a
    /// global-id bitset. Home members come from the shard's own tiered
    /// oracle; foreign shards are contacted only when the center-distance
    /// geometry cannot rule them out. Marks every shard that did fresh work
    /// in `touched`.
    fn neighborhood(
        &self,
        ci: u32,
        theta: f64,
        memo: &mut HashMap<u32, Bitset>,
        touched: &mut [bool],
        stats: &mut CoordRunStats,
    ) -> Bitset {
        if let Some(nb) = memo.get(&ci) {
            return nb.clone();
        }
        let cand = self.cand[ci as usize];
        let home = cand.shard;
        touched[home] = true;
        stats.verified_candidates += 1;
        let mut members = self.snaps[home].home_members(cand.local, &self.locals[home], theta);
        let probe = self.snaps[home].graph(cand.local);
        for (t, snap) in self.snaps.iter().enumerate() {
            if t == home || self.locals[t].is_empty() || self.geometry_prunes(&cand, t, theta) {
                continue;
            }
            touched[t] = true;
            let d_center = snap.center_distance(probe);
            members.extend(snap.foreign_members(probe, d_center, &self.locals[t], theta));
        }
        let mut nb = Bitset::new(self.id_space);
        for m in members {
            nb.insert(m as usize);
        }
        memo.insert(ci, nb.clone());
        nb
    }

    /// Distance-free initial upper bounds: per candidate, the home shard's
    /// π̂ count plus, for every foreign shard the geometry cannot prune, the
    /// full size of that shard's relevant slice. Both parts dominate the
    /// true contribution, so the aggregate is admissible (DESIGN.md §14).
    fn initial_bounds(&self, theta: f64) -> Vec<i64> {
        let mut bound = vec![0i64; self.cand.len()];
        let mut ci = 0usize;
        for (s, ls) in self.locals.iter().enumerate() {
            if ls.is_empty() {
                continue;
            }
            let home = self.snaps[s].pihat_bounds(ls, theta);
            for (j, _) in ls.iter().enumerate() {
                let cand = self.cand[ci + j];
                let mut b = home[j];
                for (t, tl) in self.locals.iter().enumerate() {
                    if t == s || tl.is_empty() || self.geometry_prunes(&cand, t, theta) {
                        continue;
                    }
                    b += tl.len() as i64;
                }
                bound[ci + j] = b;
            }
            ci += ls.len();
        }
        bound
    }

    /// Executes the distributed search for one `(θ, k)`: returns the greedy
    /// answer — byte-identical to the single-index session's — plus
    /// per-shard work statistics.
    pub fn run(&self, theta: f64, k: usize) -> (AnswerSet, CoordRunStats) {
        match self.run_cancellable(theta, k, &CancelToken::never()) {
            Ok(r) => r,
            // graphrep: allow(G001, a never-token cannot fire)
            Err(Cancelled) => unreachable!("CancelToken::never never cancels"),
        }
    }

    /// [`CoordSession::run`], polling `cancel` between frontier pops — the
    /// same cooperative boundary as the single-index session, so one NP-hard
    /// refinement is the atomic unit of work. A cancelled run discards its
    /// partial answer; the session stays pinned and fully usable.
    pub fn run_cancellable(
        &self,
        theta: f64,
        k: usize,
        cancel: &CancelToken,
    ) -> Result<(AnswerSet, CoordRunStats), Cancelled> {
        self.run_streaming_cancellable(theta, k, cancel, &mut |_| true)
    }

    /// [`CoordSession::run_cancellable`] with a per-pick observer, the
    /// sharded twin of `QuerySession::run_streaming_cancellable`: `on_pick`
    /// fires once per accepted representative after it is committed, never
    /// alters the computation, and aborts the run like a fired cancel token
    /// when it returns `false`. A completed streamed run returns the
    /// byte-identical answer the blocking run would.
    pub fn run_streaming_cancellable(
        &self,
        theta: f64,
        k: usize,
        cancel: &CancelToken,
        on_pick: &mut dyn FnMut(PickEvent) -> bool,
    ) -> Result<(AnswerSet, CoordRunStats), Cancelled> {
        let t0 = Instant::now();
        let s_count = self.snaps.len();
        let entries0: Vec<u64> = self
            .snaps
            .iter()
            .map(|s| s.engine_calls() + s.foreign_calls())
            .collect();
        let mut stats = CoordRunStats {
            shard_count: s_count,
            ..CoordRunStats::default()
        };
        let mut bound = self.initial_bounds(theta);
        let mut covered = Bitset::new(self.id_space);
        let mut in_answer = vec![false; self.cand.len()];
        let mut memo: HashMap<u32, Bitset> = HashMap::new();
        let mut ids = Vec::new();
        let mut pi_trajectory = Vec::new();
        let budget = k.min(self.relevant.len());
        for _ in 0..budget {
            let mut touched = vec![false; s_count];
            let mut heap: BinaryHeap<Entry> = BinaryHeap::new();
            for (ci, c) in self.cand.iter().enumerate() {
                if !in_answer[ci] {
                    heap.push(Entry::new(bound[ci], ci as u32, c.id, false));
                }
            }
            let mut best: Option<(i64, GraphId, u32)> = None;
            while let Some(e) = heap.pop() {
                cancel.check()?;
                if let Some((bg, _, _)) = best {
                    if e.bound < bg {
                        break;
                    }
                }
                let ci = e.cand;
                let id = self.cand[ci as usize].id;
                if !e.verified {
                    let cur = bound[ci as usize];
                    if e.bound > cur {
                        heap.push(Entry::new(cur, ci, id, false));
                        continue;
                    }
                    let nb = self.neighborhood(ci, theta, &mut memo, &mut touched, &mut stats);
                    let gain = nb.difference_count(&covered) as i64;
                    debug_assert!(
                        gain <= e.bound,
                        "verified gain must not exceed its upper bound"
                    );
                    bound[ci as usize] = gain;
                    heap.push(Entry::new(gain, ci, id, true));
                } else {
                    let better = match best {
                        None => true,
                        Some((bg, bid, _)) => e.bound > bg || (e.bound == bg && id < bid),
                    };
                    if better {
                        best = Some((e.bound, id, ci));
                    }
                }
            }
            let Some((gain, id, ci)) = best else {
                break;
            };
            if gain == 0 {
                // Verified zero marginal gain: coverage is saturated (same
                // early-stop rule as the single-index search). Not an
                // accepted pick, so it contributes nothing to the pick or
                // shard-prune counters — the single-index path counts no
                // equivalent iteration either.
                break;
            }
            stats.picks += 1;
            let touched_count = touched.iter().filter(|&&t| t).count() as u64;
            stats.touched_shard_picks += touched_count;
            stats.pruned_shard_picks += s_count as u64 - touched_count;
            ids.push(id);
            in_answer[ci as usize] = true;
            let nb = memo
                .get(&ci)
                // graphrep: allow(G001, search contract: best is only set from verified entries, which are memoized)
                .expect("selected candidate was verified")
                .clone();
            covered.union_with(&nb);
            pi_trajectory.push(if self.relevant.is_empty() {
                0.0
            } else {
                covered.count() as f64 / self.relevant.len() as f64
            });
            let keep_going = on_pick(PickEvent {
                seq: ids.len() - 1,
                id,
                covered: covered.count(),
                relevant: self.relevant.len(),
                pi: pi_trajectory[pi_trajectory.len() - 1],
            });
            if !keep_going {
                return Err(Cancelled);
            }
        }
        stats.engine_entries = self
            .snaps
            .iter()
            .zip(&entries0)
            .map(|(s, &e0)| s.engine_calls() + s.foreign_calls() - e0)
            .collect();
        stats.wall = t0.elapsed();
        Ok((
            AnswerSet {
                ids,
                covered: covered.count(),
                relevant: self.relevant.len(),
                pi_trajectory,
            },
            stats,
        ))
    }
}
