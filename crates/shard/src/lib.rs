//! Horizontal sharding for graphrep (DESIGN.md §14).
//!
//! The paper's admissible-bound machinery (Thm 4/5 vantage bounds, the Sec
//! 7.1 π̂-vectors) lifts one level up: a metric-space [`partition`] assigns
//! graphs to shards by farthest-point clustering, each shard owns an
//! independent [`graphrep_core::NbIndex`] over its slice, and the
//! [`Coordinator`] runs distributed greedy/CELF — aggregating per-shard π̂
//! upper bounds into one global best-first frontier and paying GED on a
//! shard only while its bound can still beat the current pick. Answers are
//! byte-identical to a single-index deployment; the payoff is the fraction
//! of shards each pick never touches.

pub mod coordinator;
pub mod manifest;
pub mod partition;
pub mod shard;

pub use coordinator::{
    CoordConfig, CoordError, CoordReceipt, CoordRunStats, CoordSession, Coordinator, RestoreSource,
    ShardOverview,
};
pub use manifest::{Manifest, ManifestError, ShardRecord};
pub use partition::{partition, Partition, PartitionConfig};
pub use shard::{ShardIoError, ShardState};
