//! Per-shard state: each shard owns its [`NbIndex`] (and through it its
//! [`DistanceOracle`]), its member list mapping local ids to global ids,
//! and its partition geometry (center, covering radius, member-to-center
//! distances).
//!
//! All distance work lives here, behind shard-side methods — the
//! coordinator aggregates bounds and routes refinement requests but never
//! touches the GED engine or oracle verification paths itself (lint G011).
//!
//! A `ShardState` is an immutable snapshot: mutations build a successor via
//! fork-mutate and the coordinator swaps it in under its handle lock, so a
//! session holding `Arc<ShardState>`s is pinned to one epoch vector.

use crate::manifest::ShardRecord;
use graphrep_core::{
    GraphDatabase, MutateError, MutationOutcome, NbIndex, NbIndexConfig, PersistError,
    PiHatVectors, ThresholdLadder,
};
use graphrep_ged::{DistanceOracle, GedConfig, GedEngine};
use graphrep_graph::{io as gio, Graph, GraphId};
use graphrep_metric::Bitset;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Accept/reject slop on θ-membership, matching the tiered oracle's
/// boundary arithmetic (`d ≤ θ + 1e-9` is inside).
const THETA_EPS: f64 = 1e-9;

/// One shard's immutable snapshot.
#[derive(Debug)]
pub struct ShardState {
    index: Arc<NbIndex>,
    /// Global id of each local graph, ascending (tombstones included —
    /// local ids are oracle positions and never move).
    members: Vec<GraphId>,
    /// Distance of each member to the shard center, parallel to `members`.
    to_center: Vec<f64>,
    /// Local id of the shard center.
    center_local: GraphId,
    /// Covering radius: max member-to-center distance ever admitted.
    radius: f64,
    /// Edit-distance computations served for foreign probes (candidates
    /// owned by other shards), outside the oracle's own counters.
    foreign_calls: AtomicU64,
}

impl ShardState {
    /// Builds a shard over `db`'s graphs `members` (global ids, ascending),
    /// centered on `center` (which must be a member).
    pub fn build(
        db: &GraphDatabase,
        ged: GedConfig,
        members: Vec<GraphId>,
        to_center: Vec<f64>,
        center: GraphId,
        radius: f64,
        ladder: &[f64],
    ) -> ShardState {
        let graphs: Vec<Graph> = members.iter().map(|&g| db.graph(g).clone()).collect();
        let oracle = Arc::new(DistanceOracle::new(Arc::new(graphs), GedEngine::new(ged)));
        let config = NbIndexConfig {
            ladder: ladder.to_vec(),
            ..NbIndexConfig::default()
        };
        let index = Arc::new(NbIndex::build(oracle, config));
        let center_local = local_position(&members, center)
            // graphrep: allow(G001, partitioner assigns every center to its own shard)
            .expect("shard center must be a member");
        ShardState {
            index,
            members,
            to_center,
            center_local,
            radius,
            foreign_calls: AtomicU64::new(0),
        }
    }

    /// Restores a shard from `dir` (its `graphs.txt` + `index.bin`) at the
    /// epoch recorded in `rec`. Any failure — unreadable files, a snapshot
    /// at the wrong epoch — is an error; the caller decides whether to fall
    /// back to a full rebuild from the source dataset.
    pub fn load_dir(
        dir: &Path,
        ged: GedConfig,
        rec: &ShardRecord,
        center: GraphId,
    ) -> Result<ShardState, ShardIoError> {
        let text = std::fs::read_to_string(dir.join("graphs.txt")).map_err(ShardIoError::Io)?;
        let graphs = gio::read_graphs(&text).map_err(|e| ShardIoError::Graphs(e.to_string()))?;
        if graphs.len() != rec.members.len() {
            return Err(ShardIoError::Graphs(format!(
                "graphs.txt holds {} graphs but the manifest records {} members",
                graphs.len(),
                rec.members.len()
            )));
        }
        let oracle = Arc::new(DistanceOracle::new(Arc::new(graphs), GedEngine::new(ged)));
        let bytes = std::fs::read(dir.join("index.bin")).map_err(ShardIoError::Io)?;
        let index =
            NbIndex::load_bin_at_epoch(&bytes, oracle, rec.epoch).map_err(ShardIoError::Persist)?;
        let center_local = local_position(&rec.members, center).ok_or_else(|| {
            ShardIoError::Graphs(format!("manifest center {center} is not a shard member"))
        })?;
        Ok(ShardState {
            index: Arc::new(index),
            members: rec.members.clone(),
            to_center: rec.to_center.clone(),
            center_local,
            radius: rec.radius,
            foreign_calls: AtomicU64::new(0),
        })
    }

    /// Writes this shard's `graphs.txt` and succinct `index.bin` into `dir`.
    pub fn save_dir(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let text = gio::write_graphs(self.index.oracle().graphs());
        std::fs::write(dir.join("graphs.txt"), text)?;
        std::fs::write(dir.join("index.bin"), self.index.save_bin())
    }

    /// The manifest record describing this snapshot.
    pub fn record(&self) -> ShardRecord {
        ShardRecord {
            epoch: self.epoch(),
            radius: self.radius,
            members: self.members.clone(),
            to_center: self.to_center.clone(),
        }
    }

    /// Mutation epoch of this shard's index.
    pub fn epoch(&self) -> u64 {
        self.index.epoch()
    }

    /// Total member slots (live + tombstoned).
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when the shard holds no member slots at all.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Live member count.
    pub fn live_len(&self) -> usize {
        self.index.tree().live_len()
    }

    /// Global id of the graph at `local`.
    pub fn global_of(&self, local: GraphId) -> GraphId {
        self.members[local as usize]
    }

    /// Local id owning global id `g`, if this shard holds it.
    pub fn local_of(&self, g: GraphId) -> Option<GraphId> {
        local_position(&self.members, g)
    }

    /// Whether local graph `local` is live (not tombstoned).
    pub fn is_live(&self, local: GraphId) -> bool {
        self.index.tree().is_live(local)
    }

    /// Covering radius around the shard center.
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// Stored distance from local member `local` to the shard center.
    pub fn member_center_distance(&self, local: GraphId) -> f64 {
        self.to_center[local as usize]
    }

    /// Global id of the shard center (fixed at partition time; the center
    /// graph stays resident even if tombstoned).
    pub fn center_global(&self) -> GraphId {
        self.members[self.center_local as usize]
    }

    /// Exact distance from an out-of-shard probe graph to the shard center.
    pub fn center_distance(&self, probe: &Graph) -> f64 {
        // Relaxed: a monotone stats counter, never used for synchronization.
        self.foreign_calls.fetch_add(1, Ordering::Relaxed);
        let center = &self.index.oracle().graphs()[self.center_local as usize];
        self.index.oracle().engine().distance(probe, center)
    }

    /// The graph owned at `local` (for cross-shard probes).
    pub fn graph(&self, local: GraphId) -> &Graph {
        &self.index.oracle().graphs()[local as usize]
    }

    /// Edit-distance engine calls made through this shard's oracle.
    pub fn engine_calls(&self) -> u64 {
        self.index.oracle().engine_calls()
    }

    /// Resident bytes of this shard's NB-Index.
    pub fn index_memory_bytes(&self) -> usize {
        self.index.memory_bytes()
    }

    /// Cumulative distance-oracle counters for this shard.
    pub fn oracle_stats(&self) -> graphrep_ged::OracleStats {
        self.index.oracle().stats()
    }

    /// Cumulative filter-tier counters for this shard's oracle.
    pub fn oracle_tier_stats(&self) -> graphrep_ged::TierStats {
        self.index.oracle().tier_stats()
    }

    /// Edit-distance computations served for foreign probes.
    pub fn foreign_calls(&self) -> u64 {
        // Relaxed: a monotone stats counter, never used for synchronization.
        self.foreign_calls.load(Ordering::Relaxed)
    }

    /// Distance-free π̂ upper bounds at θ for the given local candidates
    /// (paper Sec 7.1, computed over this shard's vantage orderings alone):
    /// entry `i` bounds `|N_θ(locals[i]) ∩ L_shard|` from above.
    pub fn pihat_bounds(&self, locals: &[GraphId], theta: f64) -> Vec<i64> {
        let tree = self.index.tree();
        let by_id = Bitset::from_indices(tree.len(), locals.iter().map(|&l| l as usize));
        let pihat = PiHatVectors::initialize(
            self.index.vantage(),
            tree,
            locals,
            &by_id,
            &ThresholdLadder::new(vec![theta]),
        );
        locals
            .iter()
            .map(|&l| pihat.graph_count(tree.pos_of(l), 0) as i64)
            .collect()
    }

    /// Exact θ-neighborhood of home candidate `cand` within this shard's
    /// slice of the relevant set, as ascending *global* ids. `locals` must
    /// be ascending, deduplicated, live local ids.
    pub fn home_members(&self, cand: GraphId, locals: &[GraphId], theta: f64) -> Vec<GraphId> {
        let vt = self.index.vantage();
        let oracle = self.index.oracle();
        locals
            .iter()
            .copied()
            .filter(|&c| {
                vt.passes_all_bands(cand, c, theta) && oracle.within_verdict(cand, c, theta)
            })
            .map(|c| self.global_of(c))
            .collect()
    }

    /// Exact θ-neighborhood of a *foreign* probe graph within this shard's
    /// slice of the relevant set, as ascending global ids.
    ///
    /// `d_center` is the probe's exact distance to this shard's center (one
    /// engine call, typically amortized across picks); each member is then
    /// triangle-prescreened through its stored center distance —
    /// `|d_center − to_center| > θ` rejects, `d_center + to_center ≤ θ`
    /// accepts — and only the undecided remainder pays an edit distance.
    /// The verdict arbiter is the same `distance_within` the home oracle
    /// bottoms out in, so membership is byte-identical across paths.
    pub fn foreign_members(
        &self,
        probe: &Graph,
        d_center: f64,
        locals: &[GraphId],
        theta: f64,
    ) -> Vec<GraphId> {
        let engine = self.index.oracle().engine();
        let graphs = self.index.oracle().graphs();
        let mut out = Vec::new();
        for &c in locals {
            let dc = self.to_center[c as usize];
            if (d_center - dc).abs() > theta + THETA_EPS {
                continue; // triangle lower bound: d ≥ |d_center − dc| > θ
            }
            let inside = if d_center + dc <= theta + THETA_EPS {
                true // triangle upper bound certifies membership
            } else {
                // Relaxed: a monotone stats counter, never synchronization.
                self.foreign_calls.fetch_add(1, Ordering::Relaxed);
                engine
                    .distance_within(probe, &graphs[c as usize], theta)
                    .is_some()
            };
            if inside {
                out.push(self.global_of(c));
            }
        }
        out
    }

    /// Successor snapshot with `graph` inserted as global id `global`
    /// (`d_center` its distance to this shard's center). Local id = next
    /// oracle position; the member list stays ascending because the
    /// coordinator assigns global ids monotonically.
    pub fn with_insert(
        &self,
        graph: Graph,
        global: GraphId,
        d_center: f64,
    ) -> Result<(ShardState, MutationOutcome), MutateError> {
        let mut forked = self.index.fork();
        let (local, outcome) = forked.insert(graph)?;
        debug_assert_eq!(local as usize, self.members.len());
        let mut members = self.members.clone();
        members.push(global);
        let mut to_center = self.to_center.clone();
        to_center.push(d_center);
        Ok((
            ShardState {
                index: Arc::new(forked),
                members,
                to_center,
                center_local: self.center_local,
                radius: self.radius.max(d_center),
                foreign_calls: AtomicU64::new(self.foreign_calls()),
            },
            outcome,
        ))
    }

    /// Successor snapshot with global id `g` tombstoned.
    pub fn with_remove(&self, g: GraphId) -> Result<(ShardState, MutationOutcome), MutateError> {
        let local = self
            .local_of(g)
            .ok_or_else(|| MutateError(format!("graph {g} is not owned by this shard")))?;
        let mut forked = self.index.fork();
        let outcome = forked.remove(local)?;
        Ok((
            ShardState {
                index: Arc::new(forked),
                members: self.members.clone(),
                to_center: self.to_center.clone(),
                center_local: self.center_local,
                // The radius is kept: a looser covering radius only costs
                // pruning opportunities, never admissibility.
                radius: self.radius,
                foreign_calls: AtomicU64::new(self.foreign_calls()),
            },
            outcome,
        ))
    }
}

/// Why a shard failed to load from disk.
#[derive(Debug)]
pub enum ShardIoError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Unreadable or inconsistent `graphs.txt`.
    Graphs(String),
    /// `index.bin` rejected (format, version, or epoch mismatch).
    Persist(PersistError),
}

impl std::fmt::Display for ShardIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardIoError::Io(e) => write!(f, "shard io: {e}"),
            ShardIoError::Graphs(m) => write!(f, "shard graphs: {m}"),
            ShardIoError::Persist(e) => write!(f, "shard index: {e}"),
        }
    }
}

impl std::error::Error for ShardIoError {}

/// Index of `g` in the ascending `members` list.
fn local_position(members: &[GraphId], g: GraphId) -> Option<GraphId> {
    members.binary_search(&g).ok().map(|i| i as GraphId)
}
