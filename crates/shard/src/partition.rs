//! Metric-space partitioner: assigns every graph of a database to one of
//! `S` shards by farthest-point clustering — the same pivot heuristic the
//! NB-Tree uses for its top-level split, lifted to the shard level.
//!
//! The partition is deterministic under a seed: the first center is
//! `seed % n`, each further center is the graph maximizing its distance to
//! the nearest chosen center (ties toward the smaller id), and each graph
//! joins its nearest center (ties toward the smaller shard index). The
//! center-to-center distance matrix and each shard's covering radius are
//! retained: together with a candidate's distance to its home center they
//! power the coordinator's cross-shard triangle pruning (DESIGN.md §14).

use graphrep_core::GraphDatabase;
use graphrep_ged::GedConfig;
use graphrep_graph::GraphId;

/// Partitioner parameters.
#[derive(Debug, Clone, Copy)]
pub struct PartitionConfig {
    /// Requested shard count `S`; clamped to `[1, n]` for a non-empty
    /// database so every shard owns at least its own center.
    pub shards: usize,
    /// Seed selecting the first farthest-point center.
    pub seed: u64,
}

impl Default for PartitionConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            seed: 0x5eed,
        }
    }
}

/// A computed shard assignment over one database.
#[derive(Debug, Clone, PartialEq)]
pub struct Partition {
    /// Effective shard count after clamping.
    pub shards: usize,
    /// Seed the centers were chosen under.
    pub seed: u64,
    /// Center graph id (in the source database) per shard.
    pub centers: Vec<GraphId>,
    /// Dense `S×S` center-to-center distance matrix, row-major.
    pub center_dist: Vec<f64>,
    /// Member ids per shard, ascending.
    pub members: Vec<Vec<GraphId>>,
    /// Distance of each member to its shard center, parallel to `members`.
    pub to_center: Vec<Vec<f64>>,
    /// Covering radius per shard: `max` of `to_center`.
    pub radius: Vec<f64>,
}

impl Partition {
    /// Distance between the centers of shards `s` and `t`.
    pub fn center_distance(&self, s: usize, t: usize) -> f64 {
        self.center_dist[s * self.shards + t]
    }
}

/// Partitions `db` into `cfg.shards` shards. Builds a throwaway global
/// oracle for the O(S·n) center selection and assignment distances; the
/// per-shard oracles built afterwards are independent of it.
pub fn partition(db: &GraphDatabase, ged: GedConfig, cfg: &PartitionConfig) -> Partition {
    let n = db.len();
    let shards = if n == 0 { 1 } else { cfg.shards.clamp(1, n) };
    if n == 0 {
        return Partition {
            shards,
            seed: cfg.seed,
            centers: vec![],
            center_dist: vec![0.0],
            members: vec![vec![]],
            to_center: vec![vec![]],
            radius: vec![0.0],
        };
    }
    let oracle = db.oracle(ged);

    // Farthest-point center selection (ties toward the smaller id).
    let mut centers: Vec<GraphId> = vec![(cfg.seed % n as u64) as GraphId];
    let mut min_dist: Vec<f64> = (0..n as GraphId)
        .map(|g| oracle.distance(g, centers[0]))
        .collect();
    while centers.len() < shards {
        let mut far: Option<(f64, GraphId)> = None;
        for g in 0..n as GraphId {
            if centers.contains(&g) {
                continue;
            }
            let d = min_dist[g as usize];
            if far.is_none_or(|(fd, _)| d > fd) {
                far = Some((d, g));
            }
        }
        // graphrep: allow(G001, centers.len() < shards <= n guarantees an unchosen graph exists)
        let (_, c) = far.expect("farthest-point: no candidate center left");
        centers.push(c);
        for (g, slot) in min_dist.iter_mut().enumerate() {
            let d = oracle.distance(g as GraphId, c);
            if d < *slot {
                *slot = d;
            }
        }
    }

    // Nearest-center assignment (ties toward the smaller shard index).
    let mut members: Vec<Vec<GraphId>> = vec![Vec::new(); shards];
    let mut to_center: Vec<Vec<f64>> = vec![Vec::new(); shards];
    for g in 0..n as GraphId {
        let mut best = (f64::INFINITY, 0usize);
        for (s, &c) in centers.iter().enumerate() {
            let d = oracle.distance(g, c);
            if d < best.0 {
                best = (d, s);
            }
        }
        members[best.1].push(g);
        to_center[best.1].push(best.0);
    }

    let radius = to_center
        .iter()
        .map(|ds| ds.iter().copied().fold(0.0f64, f64::max))
        .collect();
    let mut center_dist = vec![0.0; shards * shards];
    for s in 0..shards {
        for t in 0..shards {
            center_dist[s * shards + t] = oracle.distance(centers[s], centers[t]);
        }
    }
    Partition {
        shards,
        seed: cfg.seed,
        centers,
        center_dist,
        members,
        to_center,
        radius,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphrep_datagen::{DatasetKind, DatasetSpec};

    fn small_db() -> GraphDatabase {
        DatasetSpec::new(DatasetKind::DudLike, 24, 7).generate().db
    }

    #[test]
    fn partition_is_deterministic_and_total() {
        let db = small_db();
        let cfg = PartitionConfig {
            shards: 4,
            seed: 42,
        };
        let a = partition(&db, GedConfig::default(), &cfg);
        let b = partition(&db, GedConfig::default(), &cfg);
        assert_eq!(a, b);
        let mut all: Vec<GraphId> = a.members.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..db.len() as GraphId).collect::<Vec<_>>());
        for (s, ms) in a.members.iter().enumerate() {
            assert!(ms.contains(&a.centers[s]), "center owns itself");
            assert!(ms.windows(2).all(|w| w[0] < w[1]), "members ascending");
        }
    }

    #[test]
    fn radius_covers_members() {
        let db = small_db();
        let cfg = PartitionConfig { shards: 3, seed: 1 };
        let p = partition(&db, GedConfig::default(), &cfg);
        for s in 0..p.shards {
            for &d in &p.to_center[s] {
                assert!(d <= p.radius[s]);
            }
        }
    }

    #[test]
    fn shard_count_clamps_to_database_size() {
        let db = DatasetSpec::new(DatasetKind::DudLike, 3, 7).generate().db;
        let cfg = PartitionConfig { shards: 8, seed: 0 };
        let p = partition(&db, GedConfig::default(), &cfg);
        assert_eq!(p.shards, 3);
    }
}
