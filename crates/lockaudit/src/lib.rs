//! Runtime lock-order witness for the workspace's named lock sites.
//!
//! [`TrackedMutex`] / [`TrackedRwLock`] carry the same site names the static
//! analyzer derives (`{crate}.{file-stem}.{Struct}.{field}`, rules G008/G009
//! in `graphrep-check`), so the dynamic acquisition order observed under load
//! is directly comparable to the statically extracted lock graph.
//!
//! Two build modes, selected by the `lock-audit` feature:
//!
//! * **off** (default): the wrappers are transparent newtypes over
//!   `std::sync` primitives with `#[inline(always)]` passthroughs and no
//!   per-acquisition bookkeeping — the site string is not even stored.
//! * **on**: every acquisition pushes its site on a thread-local *held
//!   stack*; for each site already held, the ordered pair `(held, acquired)`
//!   is inserted into a global edge set; the first insertion that closes a
//!   cycle panics with the witness path. [`witness::observed_edges`] exposes
//!   the accumulated graph so tests can assert it is a subset of the static
//!   one.
//!
//! Both modes translate `std::sync` poisoning into guard recovery
//! (`parking_lot` semantics): a panicking holder must not wedge unrelated
//! threads, and every protected structure in this workspace is swapped or
//! appended whole, never left torn.
//!
//! Site identity is the *field*, not the instance: the 64 oracle shards all
//! share `ged.cache.Shard.exact`, and same-site pairs are skipped as
//! self-edges — exactly mirroring the static model, which cannot distinguish
//! instances either.

#![deny(unsafe_code)]
#![warn(missing_docs)]

#[cfg(feature = "lock-audit")]
mod imp {
    use crate::witness;
    use std::fmt;
    use std::sync;
    use std::time::Duration;

    /// A mutex that reports acquisitions to the [`witness`].
    pub struct TrackedMutex<T: ?Sized> {
        site: &'static str,
        inner: sync::Mutex<T>,
    }

    impl<T> TrackedMutex<T> {
        /// A new mutex registered under `site`.
        pub const fn new(site: &'static str, value: T) -> Self {
            Self {
                site,
                inner: sync::Mutex::new(value),
            }
        }
    }

    impl<T: ?Sized> TrackedMutex<T> {
        /// Acquires the lock, recording the acquisition order first (so a
        /// would-be deadlock panics with its witness instead of hanging).
        pub fn lock(&self) -> TrackedMutexGuard<'_, T> {
            witness::on_acquire(self.site);
            let g = match self.inner.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            TrackedMutexGuard {
                site: self.site,
                inner: Some(g),
            }
        }
    }

    impl<T: fmt::Debug> fmt::Debug for TrackedMutex<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self.inner.try_lock() {
                Ok(g) => f.debug_tuple("TrackedMutex").field(&&*g).finish(),
                Err(_) => f.write_str("TrackedMutex(<locked>)"),
            }
        }
    }

    /// Guard of a [`TrackedMutex`]; releases the witness entry on drop.
    pub struct TrackedMutexGuard<'a, T: ?Sized> {
        site: &'static str,
        /// `None` only while the guard is parked in a condvar wait (the site
        /// intentionally stays on the held stack through the wait).
        inner: Option<sync::MutexGuard<'a, T>>,
    }

    impl<T: ?Sized> std::ops::Deref for TrackedMutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.inner.as_ref().expect("guard parked in condvar wait")
        }
    }

    impl<T: ?Sized> std::ops::DerefMut for TrackedMutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.inner.as_mut().expect("guard parked in condvar wait")
        }
    }

    impl<T: ?Sized> Drop for TrackedMutexGuard<'_, T> {
        fn drop(&mut self) {
            if self.inner.is_some() {
                witness::on_release(self.site);
            }
        }
    }

    /// A reader-writer lock that reports acquisitions to the [`witness`].
    pub struct TrackedRwLock<T: ?Sized> {
        site: &'static str,
        inner: sync::RwLock<T>,
    }

    impl<T> TrackedRwLock<T> {
        /// A new lock registered under `site`.
        pub const fn new(site: &'static str, value: T) -> Self {
            Self {
                site,
                inner: sync::RwLock::new(value),
            }
        }
    }

    impl<T: ?Sized> TrackedRwLock<T> {
        /// Acquires a shared read guard (order recorded first; read and write
        /// acquisitions are the same site — the order graph does not
        /// distinguish modes, matching the static model).
        pub fn read(&self) -> TrackedReadGuard<'_, T> {
            witness::on_acquire(self.site);
            let g = match self.inner.read() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            TrackedReadGuard {
                site: self.site,
                inner: g,
            }
        }

        /// Acquires an exclusive write guard (order recorded first).
        pub fn write(&self) -> TrackedWriteGuard<'_, T> {
            witness::on_acquire(self.site);
            let g = match self.inner.write() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            TrackedWriteGuard {
                site: self.site,
                inner: g,
            }
        }
    }

    impl<T: fmt::Debug> fmt::Debug for TrackedRwLock<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self.inner.try_read() {
                Ok(g) => f.debug_tuple("TrackedRwLock").field(&&*g).finish(),
                Err(_) => f.write_str("TrackedRwLock(<locked>)"),
            }
        }
    }

    /// Read guard of a [`TrackedRwLock`]; releases the witness entry on drop.
    pub struct TrackedReadGuard<'a, T: ?Sized> {
        site: &'static str,
        inner: sync::RwLockReadGuard<'a, T>,
    }

    impl<T: ?Sized> std::ops::Deref for TrackedReadGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.inner
        }
    }

    impl<T: ?Sized> Drop for TrackedReadGuard<'_, T> {
        fn drop(&mut self) {
            witness::on_release(self.site);
        }
    }

    /// Write guard of a [`TrackedRwLock`]; releases the witness entry on drop.
    pub struct TrackedWriteGuard<'a, T: ?Sized> {
        site: &'static str,
        inner: sync::RwLockWriteGuard<'a, T>,
    }

    impl<T: ?Sized> std::ops::Deref for TrackedWriteGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.inner
        }
    }

    impl<T: ?Sized> std::ops::DerefMut for TrackedWriteGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.inner
        }
    }

    impl<T: ?Sized> Drop for TrackedWriteGuard<'_, T> {
        fn drop(&mut self) {
            witness::on_release(self.site);
        }
    }

    /// A condition variable over a [`TrackedMutex`].
    #[derive(Default)]
    pub struct TrackedCondvar {
        inner: sync::Condvar,
    }

    impl TrackedCondvar {
        /// A new condition variable.
        pub const fn new() -> Self {
            Self {
                inner: sync::Condvar::new(),
            }
        }

        /// Wakes one waiter.
        pub fn notify_one(&self) {
            self.inner.notify_one();
        }

        /// Wakes every waiter.
        pub fn notify_all(&self) {
            self.inner.notify_all();
        }

        /// Waits on the guard's mutex with a timeout. The guard's site stays
        /// on the held stack through the wait (the thread is blocked, so the
        /// over-approximation can never contribute a spurious edge).
        pub fn wait_timeout<'a, T>(
            &self,
            mut guard: TrackedMutexGuard<'a, T>,
            dur: Duration,
        ) -> (TrackedMutexGuard<'a, T>, sync::WaitTimeoutResult) {
            let site = guard.site;
            let std_guard = guard.inner.take().expect("guard parked in condvar wait");
            drop(guard); // Inner is None: the drop does not pop the site.
            let (g, timeout) = match self.inner.wait_timeout(std_guard, dur) {
                Ok(v) => v,
                Err(p) => p.into_inner(),
            };
            (
                TrackedMutexGuard {
                    site,
                    inner: Some(g),
                },
                timeout,
            )
        }
    }

    impl fmt::Debug for TrackedCondvar {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("TrackedCondvar")
        }
    }
}

#[cfg(not(feature = "lock-audit"))]
mod imp {
    use std::fmt;
    use std::sync;
    use std::time::Duration;

    /// A mutex; with `lock-audit` off this is a transparent `std::sync`
    /// wrapper (the site string is discarded at construction).
    pub struct TrackedMutex<T: ?Sized> {
        inner: sync::Mutex<T>,
    }

    impl<T> TrackedMutex<T> {
        /// A new mutex; `site` is unused in this build.
        pub const fn new(_site: &'static str, value: T) -> Self {
            Self {
                inner: sync::Mutex::new(value),
            }
        }
    }

    impl<T: ?Sized> TrackedMutex<T> {
        /// Acquires the lock (poison recovered, `parking_lot` semantics).
        #[inline(always)]
        pub fn lock(&self) -> TrackedMutexGuard<'_, T> {
            TrackedMutexGuard {
                inner: match self.inner.lock() {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                },
            }
        }
    }

    impl<T: fmt::Debug> fmt::Debug for TrackedMutex<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self.inner.try_lock() {
                Ok(g) => f.debug_tuple("TrackedMutex").field(&&*g).finish(),
                Err(_) => f.write_str("TrackedMutex(<locked>)"),
            }
        }
    }

    /// Guard of a [`TrackedMutex`] (plain `std` guard underneath).
    pub struct TrackedMutexGuard<'a, T: ?Sized> {
        inner: sync::MutexGuard<'a, T>,
    }

    impl<T: ?Sized> std::ops::Deref for TrackedMutexGuard<'_, T> {
        type Target = T;
        #[inline(always)]
        fn deref(&self) -> &T {
            &self.inner
        }
    }

    impl<T: ?Sized> std::ops::DerefMut for TrackedMutexGuard<'_, T> {
        #[inline(always)]
        fn deref_mut(&mut self) -> &mut T {
            &mut self.inner
        }
    }

    /// A reader-writer lock; transparent `std::sync` wrapper in this build.
    pub struct TrackedRwLock<T: ?Sized> {
        inner: sync::RwLock<T>,
    }

    impl<T> TrackedRwLock<T> {
        /// A new lock; `site` is unused in this build.
        pub const fn new(_site: &'static str, value: T) -> Self {
            Self {
                inner: sync::RwLock::new(value),
            }
        }
    }

    impl<T: ?Sized> TrackedRwLock<T> {
        /// Acquires a shared read guard (poison recovered).
        #[inline(always)]
        pub fn read(&self) -> TrackedReadGuard<'_, T> {
            TrackedReadGuard {
                inner: match self.inner.read() {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                },
            }
        }

        /// Acquires an exclusive write guard (poison recovered).
        #[inline(always)]
        pub fn write(&self) -> TrackedWriteGuard<'_, T> {
            TrackedWriteGuard {
                inner: match self.inner.write() {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                },
            }
        }
    }

    impl<T: fmt::Debug> fmt::Debug for TrackedRwLock<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self.inner.try_read() {
                Ok(g) => f.debug_tuple("TrackedRwLock").field(&&*g).finish(),
                Err(_) => f.write_str("TrackedRwLock(<locked>)"),
            }
        }
    }

    /// Read guard of a [`TrackedRwLock`] (plain `std` guard underneath).
    pub struct TrackedReadGuard<'a, T: ?Sized> {
        inner: sync::RwLockReadGuard<'a, T>,
    }

    impl<T: ?Sized> std::ops::Deref for TrackedReadGuard<'_, T> {
        type Target = T;
        #[inline(always)]
        fn deref(&self) -> &T {
            &self.inner
        }
    }

    /// Write guard of a [`TrackedRwLock`] (plain `std` guard underneath).
    pub struct TrackedWriteGuard<'a, T: ?Sized> {
        inner: sync::RwLockWriteGuard<'a, T>,
    }

    impl<T: ?Sized> std::ops::Deref for TrackedWriteGuard<'_, T> {
        type Target = T;
        #[inline(always)]
        fn deref(&self) -> &T {
            &self.inner
        }
    }

    impl<T: ?Sized> std::ops::DerefMut for TrackedWriteGuard<'_, T> {
        #[inline(always)]
        fn deref_mut(&mut self) -> &mut T {
            &mut self.inner
        }
    }

    /// A condition variable over a [`TrackedMutex`]; transparent wrapper.
    #[derive(Debug, Default)]
    pub struct TrackedCondvar {
        inner: sync::Condvar,
    }

    impl TrackedCondvar {
        /// A new condition variable.
        pub const fn new() -> Self {
            Self {
                inner: sync::Condvar::new(),
            }
        }

        /// Wakes one waiter.
        #[inline(always)]
        pub fn notify_one(&self) {
            self.inner.notify_one();
        }

        /// Wakes every waiter.
        #[inline(always)]
        pub fn notify_all(&self) {
            self.inner.notify_all();
        }

        /// Waits on the guard's mutex with a timeout (poison recovered).
        #[inline(always)]
        pub fn wait_timeout<'a, T>(
            &self,
            guard: TrackedMutexGuard<'a, T>,
            dur: Duration,
        ) -> (TrackedMutexGuard<'a, T>, sync::WaitTimeoutResult) {
            let (g, timeout) = match self.inner.wait_timeout(guard.inner, dur) {
                Ok(v) => v,
                Err(p) => p.into_inner(),
            };
            (TrackedMutexGuard { inner: g }, timeout)
        }
    }
}

pub use imp::{
    TrackedCondvar, TrackedMutex, TrackedMutexGuard, TrackedReadGuard, TrackedRwLock,
    TrackedWriteGuard,
};

/// The global acquisition-order witness (compiled only under `lock-audit`).
#[cfg(feature = "lock-audit")]
pub mod witness {
    use std::cell::RefCell;
    use std::collections::BTreeSet;
    use std::sync::Mutex;

    thread_local! {
        /// Sites whose guards this thread currently holds, in acquisition
        /// order. Duplicates are legal (reentrant same-site reads).
        static HELD: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
    }

    /// Every ordered pair `(held, acquired)` observed so far, process-wide.
    static EDGES: Mutex<BTreeSet<(&'static str, &'static str)>> = Mutex::new(BTreeSet::new());

    /// Records that `site` is being acquired by this thread: inserts one
    /// edge per distinct held site and panics if an insertion closes a
    /// cycle. Called *before* blocking on the underlying primitive, so a
    /// genuine order inversion reports instead of deadlocking.
    pub fn on_acquire(site: &'static str) {
        // `try_with`: guards dropped during thread-local teardown must not
        // panic the unwinder.
        let _ = HELD.try_with(|h| {
            let mut held = h.borrow_mut();
            if !held.is_empty() {
                let mut edges = match EDGES.lock() {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                };
                for &from in held.iter() {
                    if from != site && edges.insert((from, site)) {
                        if let Some(path) = path_between(&edges, site, from) {
                            panic!(
                                "lock-order cycle: acquiring `{site}` while holding `{from}` \
                                 closes the cycle {} -> {site}",
                                path.join(" -> ")
                            );
                        }
                    }
                }
            }
            held.push(site);
        });
    }

    /// Records that this thread released a guard for `site` (the most
    /// recent matching acquisition).
    pub fn on_release(site: &'static str) {
        let _ = HELD.try_with(|h| {
            let mut held = h.borrow_mut();
            if let Some(pos) = held.iter().rposition(|&s| s == site) {
                held.remove(pos);
            }
        });
    }

    /// The accumulated order graph: every `(held, acquired)` pair observed
    /// since process start, sorted.
    pub fn observed_edges() -> Vec<(&'static str, &'static str)> {
        let edges = match EDGES.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        edges.iter().copied().collect()
    }

    /// A path `start -> … -> goal` through `edges`, if one exists (DFS).
    fn path_between(
        edges: &BTreeSet<(&'static str, &'static str)>,
        start: &'static str,
        goal: &'static str,
    ) -> Option<Vec<&'static str>> {
        let mut stack = vec![vec![start]];
        let mut seen = BTreeSet::new();
        seen.insert(start);
        while let Some(path) = stack.pop() {
            let last = *path.last()?;
            if last == goal {
                return Some(path);
            }
            for &(f, t) in edges.iter() {
                if f == last && seen.insert(t) {
                    let mut next = path.clone();
                    next.push(t);
                    stack.push(next);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_and_rwlock_basics() {
        let m = TrackedMutex::new("test.basic.m", 1u64);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let l = TrackedRwLock::new("test.basic.l", 5u64);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn condvar_wait_times_out() {
        let m = TrackedMutex::new("test.cv.m", ());
        let cv = TrackedCondvar::new();
        let g = m.lock();
        let (_g, t) = cv.wait_timeout(g, std::time::Duration::from_millis(1));
        assert!(t.timed_out());
    }

    #[cfg(feature = "lock-audit")]
    #[test]
    fn nested_acquisition_records_an_edge() {
        let a = TrackedMutex::new("test.edge.a", ());
        let b = TrackedMutex::new("test.edge.b", ());
        let ga = a.lock();
        let gb = b.lock();
        drop(gb);
        drop(ga);
        assert!(witness::observed_edges().contains(&("test.edge.a", "test.edge.b")));
    }

    #[cfg(feature = "lock-audit")]
    #[test]
    fn same_site_reentry_is_not_an_edge() {
        let l = TrackedRwLock::new("test.reent.l", ());
        let g1 = l.read();
        let g2 = l.read();
        drop(g2);
        drop(g1);
        assert!(!witness::observed_edges()
            .iter()
            .any(|&(f, t)| f == "test.reent.l" && t == "test.reent.l"));
    }

    #[cfg(feature = "lock-audit")]
    #[test]
    #[should_panic(expected = "lock-order cycle")]
    fn inverted_order_panics_with_witness() {
        let x = TrackedMutex::new("test.cycle.x", ());
        let y = TrackedMutex::new("test.cycle.y", ());
        {
            let gx = x.lock();
            let gy = y.lock();
            drop(gy);
            drop(gx);
        }
        let gy = y.lock();
        let _gx = x.lock(); // y -> x closes the cycle: panics.
        drop(gy);
    }

    #[cfg(feature = "lock-audit")]
    #[test]
    fn condvar_wait_keeps_site_held_once() {
        let m = TrackedMutex::new("test.cvheld.m", ());
        let cv = TrackedCondvar::new();
        let g = m.lock();
        let (g, _) = cv.wait_timeout(g, std::time::Duration::from_millis(1));
        drop(g);
        // Balanced: a fresh acquisition after the wait+drop records no
        // self-edge and does not panic.
        let other = TrackedMutex::new("test.cvheld.n", ());
        let go = other.lock();
        let gm = m.lock();
        drop(gm);
        drop(go);
        assert!(witness::observed_edges().contains(&("test.cvheld.n", "test.cvheld.m")));
    }
}
