//! Fixture-driven parser tests over `tests/fixtures/parse/`.
//!
//! The workspace sweep (`parse_sweep.rs`) proves the parser handles whatever
//! the tree happens to contain today; these fixtures pin down the grammar
//! shapes it must keep handling even if the workspace stops using them —
//! every item kind, generics and turbofish, nested control flow, macros and
//! attributes, and the hairier literal forms. Each fixture must parse with
//! zero diagnostics, tile the token stream, round-trip its spans, and match
//! the structural expectations asserted per file.

use graphrep_check::lexer::lex;
use graphrep_check::parser::{parse, visit_spans, Ast, ItemKind};
use std::path::Path;

fn parse_fixture(name: &str) -> Ast {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/parse")
        .join(name);
    let src =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("fixture {name} unreadable: {e}"));
    let lexed = lex(&src);
    let ast = parse(&lexed);
    assert!(
        ast.errors.is_empty(),
        "{name}: parse diagnostics: {:?}",
        ast.errors
    );
    // Same invariants the workspace sweep enforces: items tile the token
    // stream and every span round-trips to the lexer's byte ranges.
    if let Some(first) = ast.items.first() {
        assert_eq!(first.span.lo, 0, "{name}: first item does not start at 0");
        for w in ast.items.windows(2) {
            assert_eq!(w[0].span.hi, w[1].span.lo, "{name}: gap between items");
        }
        assert_eq!(
            ast.items.last().unwrap().span.hi,
            lexed.tokens.len(),
            "{name}: last item does not end at EOF"
        );
    }
    visit_spans(&ast, &mut |kind, sp| {
        assert!(sp.lo < sp.hi, "{name}: empty {kind} span");
        assert_eq!(sp.byte_lo, lexed.tokens[sp.lo].lo, "{name}: {kind} byte_lo");
        assert_eq!(
            sp.byte_hi,
            lexed.tokens[sp.hi - 1].hi,
            "{name}: {kind} byte_hi"
        );
    });
    ast
}

/// Flattens an item tree into (kind-tag, name) pairs for easy assertions.
fn inventory(ast: &Ast) -> Vec<(String, String)> {
    fn walk(items: &[graphrep_check::parser::Item], out: &mut Vec<(String, String)>) {
        for item in items {
            match &item.kind {
                ItemKind::Struct { name, .. } => out.push(("struct".into(), name.clone())),
                ItemKind::Enum { name } => out.push(("enum".into(), name.clone())),
                ItemKind::Trait { name } => out.push(("trait".into(), name.clone())),
                ItemKind::Impl { self_ty, fns, .. } => {
                    out.push(("impl".into(), self_ty.clone()));
                    for f in fns {
                        out.push(("method".into(), f.name.clone()));
                    }
                }
                ItemKind::Fn(f) => out.push(("fn".into(), f.name.clone())),
                ItemKind::Mod { name, items } => {
                    out.push(("mod".into(), name.clone()));
                    if let Some(inner) = items {
                        walk(inner, out);
                    }
                }
                ItemKind::Other => {}
            }
        }
    }
    let mut out = Vec::new();
    walk(&ast.items, &mut out);
    out
}

fn has(inv: &[(String, String)], kind: &str, name: &str) -> bool {
    inv.iter().any(|(k, n)| k == kind && n == name)
}

#[test]
fn items_fixture_covers_every_item_kind() {
    let ast = parse_fixture("items.rs");
    let inv = inventory(&ast);
    for (kind, name) in [
        ("struct", "Config"),
        ("struct", "Marker"),
        ("struct", "Pair"),
        ("enum", "Verdict"),
        ("trait", "Score"),
        ("impl", "Config"),
        ("method", "new"),
        ("method", "bump"),
        ("method", "score"),
        ("fn", "lookup"),
        ("mod", "inner"),
        ("fn", "helper"),
        ("struct", "Hidden"),
        ("mod", "declared"),
    ] {
        assert!(has(&inv, kind, name), "missing {kind} {name} in {inv:?}");
    }
    // The named-field struct records its fields in order.
    let config_fields: Vec<&str> = ast
        .items
        .iter()
        .find_map(|i| match &i.kind {
            ItemKind::Struct { name, fields } if name == "Config" => {
                Some(fields.iter().map(|f| f.name.as_str()).collect())
            }
            _ => None,
        })
        .expect("Config struct parsed");
    assert_eq!(config_fields, ["name", "threshold", "retries"]);
    // The trait-impl carries its trait name.
    assert!(ast.items.iter().any(|i| matches!(
        &i.kind,
        ItemKind::Impl { self_ty, trait_name: Some(t), .. }
            if self_ty == "Config" && t == "Score"
    )));
}

#[test]
fn generics_fixture_parses_bounds_and_turbofish() {
    let ast = parse_fixture("generics.rs");
    let inv = inventory(&ast);
    for (kind, name) in [
        ("struct", "Wrapper"),
        ("struct", "Ref"),
        ("impl", "Wrapper"),
        ("method", "push"),
        ("method", "first"),
        ("fn", "collect_sorted"),
        ("fn", "nested"),
        ("fn", "shift"),
        ("impl", "Ref"),
        ("method", "get"),
    ] {
        assert!(has(&inv, kind, name), "missing {kind} {name} in {inv:?}");
    }
}

#[test]
fn control_flow_fixture_nests_blocks() {
    let ast = parse_fixture("control_flow.rs");
    let inv = inventory(&ast);
    for name in ["classify", "fold", "chained", "fallible"] {
        assert!(has(&inv, "fn", name), "missing fn {name} in {inv:?}");
    }
    // `fold` contains nested blocks (for / loop / while bodies); the parser
    // must model them as sub-blocks rather than flat token runs.
    let fold = ast
        .items
        .iter()
        .find_map(|i| match &i.kind {
            ItemKind::Fn(f) if f.name == "fold" => f.body.as_ref(),
            _ => None,
        })
        .expect("fold has a body");
    let nested_blocks: usize = fold
        .stmts
        .iter()
        .map(|s| {
            s.parts
                .iter()
                .filter(|p| matches!(p, graphrep_check::parser::StmtPart::Block(_)))
                .count()
        })
        .sum();
    assert!(
        nested_blocks >= 2,
        "fold should contain nested loop/for blocks, found {nested_blocks}"
    );
}

#[test]
fn macros_and_attributes_fixture() {
    let ast = parse_fixture("macros_attrs.rs");
    let inv = inventory(&ast);
    for (kind, name) in [
        ("struct", "Event"),
        ("struct", "Log"),
        ("impl", "Log"),
        ("method", "record"),
        ("method", "summary"),
        ("fn", "gated"),
        ("fn", "uses_macro"),
        ("mod", "tests"),
    ] {
        assert!(has(&inv, kind, name), "missing {kind} {name} in {inv:?}");
    }
}

#[test]
fn token_shapes_fixture() {
    let ast = parse_fixture("tokens.rs");
    let inv = inventory(&ast);
    for name in ["ranges", "ops", "closures_capture"] {
        assert!(has(&inv, "fn", name), "missing fn {name} in {inv:?}");
    }
}
