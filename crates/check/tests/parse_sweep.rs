//! Workspace parse sweep: every non-vendored `.rs` file must parse with zero
//! diagnostics, every AST span must round-trip exactly to the lexer's token
//! spans, and top-level items must tile the token stream.

use graphrep_check::lexer::lex;
use graphrep_check::parser::{parse, visit_spans};
use graphrep_check::{collect_sources, workspace_root};

#[test]
fn every_workspace_file_parses_cleanly() {
    let root = workspace_root();
    let sources = collect_sources(&root).expect("walk workspace");
    assert!(
        sources.len() >= 20,
        "suspiciously few sources: {}",
        sources.len()
    );
    let mut parsed = 0usize;
    for path in sources {
        let rel = path
            .strip_prefix(&root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(&path).expect("read source");
        let lexed = lex(&src);
        let ast = parse(&lexed);
        assert!(
            ast.errors.is_empty(),
            "{rel}: parse diagnostics: {:?}",
            ast.errors
        );
        // Top-level items tile the token stream.
        if let Some(first) = ast.items.first() {
            assert_eq!(first.span.lo, 0, "{rel}: first item does not start at 0");
            for w in ast.items.windows(2) {
                assert_eq!(
                    w[0].span.hi, w[1].span.lo,
                    "{rel}: gap between items at token {}",
                    w[0].span.hi
                );
            }
            assert_eq!(
                ast.items.last().unwrap().span.hi,
                lexed.tokens.len(),
                "{rel}: last item does not end at EOF"
            );
        } else {
            assert!(lexed.tokens.is_empty(), "{rel}: tokens but no items");
        }
        // Every span's byte range equals the range spanned by its tokens.
        visit_spans(&ast, &mut |kind, sp| {
            assert!(sp.lo < sp.hi, "{rel}: empty {kind} span at token {}", sp.lo);
            assert!(
                sp.hi <= lexed.tokens.len(),
                "{rel}: {kind} span past EOF ({} > {})",
                sp.hi,
                lexed.tokens.len()
            );
            assert_eq!(
                sp.byte_lo, lexed.tokens[sp.lo].lo,
                "{rel}: {kind} byte_lo mismatch at token {}",
                sp.lo
            );
            assert_eq!(
                sp.byte_hi,
                lexed.tokens[sp.hi - 1].hi,
                "{rel}: {kind} byte_hi mismatch at token {}",
                sp.hi - 1
            );
        });
        parsed += 1;
    }
    assert!(parsed >= 20, "swept only {parsed} files");
}
