/// Returns the documented constant.
pub fn documented() -> u32 {
    7
}
