//! Fixture: clean rewrite — timing budgets without sockets or blocking
//! sleeps; the serving layer owns the actual waiting.
fn backoff_budget(attempt: u32) -> std::time::Duration {
    std::time::Duration::from_millis(10 * u64::from(attempt.min(8)))
}
