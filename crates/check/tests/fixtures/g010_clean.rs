//! Fixture: clean rewrite — the data plane hands the value to the
//! persistence seam instead of rendering a format itself.
fn persist(index: &crate::PersistedIndex) -> String {
    crate::persist::save(index)
}
