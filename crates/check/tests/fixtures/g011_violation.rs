//! Fixture: the coordinator pays an edit distance itself instead of
//! routing the verification to the owning shard.
fn refine(snap: &crate::ShardState, g: u32, c: u32, theta: f64) -> bool {
    snap.oracle().within_verdict(g, c, theta)
}
