use std::sync::atomic::{AtomicU64, Ordering};

fn bump(c: &AtomicU64) {
    // graphrep: allow(G002, fixture: the directive doubles as the justification)
    c.fetch_add(1, Ordering::Relaxed);
}
