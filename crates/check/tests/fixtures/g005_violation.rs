pub fn undocumented() -> u32 {
    7
}
