fn trace(v: u64) -> String {
    format!("v = {v}")
}
