//! Fixture: suppressed blocking sleep with a recorded reason.
fn settle() {
    // graphrep: allow(G007, fixture: one-shot settle delay in a diagnostic tool)
    std::thread::sleep(std::time::Duration::from_millis(1));
}
