//! Fixture: suppressed serde_json use with a recorded reason.
fn debug_dump(v: &impl serde::Serialize) -> String {
    // graphrep: allow(G010, fixture: feature-gated debug dump never built in release)
    serde_json::to_string(v).unwrap_or_default()
}
