fn is_sentinel(x: f64) -> bool {
    // graphrep: allow(G004, fixture: sentinel value is assigned, never computed)
    x == -1.0
}
