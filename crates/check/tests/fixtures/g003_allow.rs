fn trace(v: u64) {
    // graphrep: allow(G003, fixture: operator-facing progress line)
    println!("v = {v}");
}
