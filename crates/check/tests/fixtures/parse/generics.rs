//! Parse fixture: generics, lifetimes, where clauses, turbofish.

use std::fmt::Debug;

pub struct Wrapper<T> {
    inner: Vec<T>,
}

pub struct Ref<'a, T: Clone> {
    slot: &'a T,
}

impl<T: Clone + Debug> Wrapper<T> {
    pub fn push(&mut self, v: T) {
        self.inner.push(v);
    }

    pub fn first(&self) -> Option<&T> {
        self.inner.first()
    }
}

pub fn collect_sorted<I>(it: I) -> Vec<u64>
where
    I: Iterator<Item = u64>,
{
    let mut v = it.collect::<Vec<u64>>();
    v.sort_unstable();
    v
}

pub fn nested(m: Vec<Vec<Option<u32>>>) -> usize {
    m.iter().map(|row| row.len()).sum::<usize>()
}

pub fn shift(x: u64) -> u64 {
    (x >> 2) << 1
}

impl<'a, T: Clone> Ref<'a, T> {
    pub fn get(&self) -> T {
        self.slot.clone()
    }
}
