//! Parse fixture: macro invocations, attributes, cfg-gated items.

#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    pub kind: u8,
    pub payload: Vec<u8>,
}

#[derive(Debug, Default)]
pub struct Log {
    events: Vec<Event>,
}

impl Log {
    #[inline]
    pub fn record(&mut self, kind: u8) {
        self.events.push(Event {
            kind,
            payload: vec![0u8; 4],
        });
    }

    #[allow(dead_code)]
    fn summary(&self) -> String {
        format!("{} event(s)", self.events.len())
    }
}

#[cfg(feature = "extra")]
pub fn gated() -> bool {
    matches!(1 + 1, 2)
}

macro_rules! twice {
    ($e:expr) => {
        $e + $e
    };
}

pub fn uses_macro() -> u32 {
    twice!(21)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records() {
        let mut log = Log::default();
        log.record(3);
        assert_eq!(log.events.len(), 1);
        assert!(log.summary().starts_with('1'));
    }
}
