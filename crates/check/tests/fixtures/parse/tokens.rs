//! Parse fixture: literal and token shapes the lexer must carry through.

pub const RAW: &str = r#"quoted "inner" text"#;
pub const ESCAPED: &str = "line\nbreak\tand \"quotes\"";
pub const BYTES: &[u8] = b"raw bytes";
pub const CH: char = '\'';
pub const HEX: u64 = 0xdead_beef;
pub const FLOATY: f64 = 1.5e-3;

pub fn ranges(v: &[u8]) -> usize {
    let head = &v[..v.len() / 2];
    let tail = &v[v.len() / 2..];
    head.len() + tail.len()
}

pub fn ops(a: u32, b: u32) -> u32 {
    let mut x = a ^ b;
    x |= a & !b;
    x %= b.max(1);
    x
}

pub fn closures_capture() -> u32 {
    let base = 10u32;
    let add = move |x: u32| -> u32 { x + base };
    let twice = |f: &dyn Fn(u32) -> u32, x| f(f(x));
    twice(&add, 1)
}
