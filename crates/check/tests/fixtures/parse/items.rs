//! Parse fixture: one of every item kind the parser models.

use std::collections::HashMap;

const LIMIT: usize = 8;

/// A struct with named fields.
pub struct Config {
    pub name: String,
    threshold: f64,
    pub(crate) retries: usize,
}

/// A unit struct.
pub struct Marker;

/// A tuple struct.
pub struct Pair(u32, u32);

/// An enum with mixed variants.
pub enum Verdict {
    Accept,
    Reject { reason: String },
    Defer(u64),
}

/// A trait with a provided and a required method.
pub trait Score {
    fn score(&self) -> f64;
    fn passes(&self) -> bool {
        self.score() > 0.5
    }
}

impl Config {
    pub fn new(name: &str) -> Config {
        Config {
            name: name.to_string(),
            threshold: 0.5,
            retries: LIMIT,
        }
    }

    fn bump(&mut self) {
        self.retries += 1;
    }
}

impl Score for Config {
    fn score(&self) -> f64 {
        self.threshold
    }
}

/// A free function.
pub fn lookup(map: &HashMap<String, u64>, key: &str) -> Option<u64> {
    map.get(key).copied()
}

mod inner {
    pub fn helper(x: u32) -> u32 {
        x * 2
    }

    pub struct Hidden {
        pub value: i64,
    }
}

mod declared;

type Alias = Vec<(String, u64)>;

static GLOBAL: &str = "fixture";
