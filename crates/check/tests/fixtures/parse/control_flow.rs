//! Parse fixture: nested blocks, matches, loops, closures, struct literals.

pub struct Acc {
    total: u64,
    hits: usize,
}

pub fn classify(x: i64) -> &'static str {
    match x {
        0 => "zero",
        n if n < 0 => "negative",
        1..=9 => "small",
        _ => {
            let digits = x.to_string().len();
            if digits > 3 {
                "huge"
            } else {
                "large"
            }
        }
    }
}

pub fn fold(values: &[u64]) -> Acc {
    let mut acc = Acc { total: 0, hits: 0 };
    for (i, v) in values.iter().enumerate() {
        if *v == 0 {
            continue;
        }
        acc.total += v;
        acc.hits += 1;
        let _ = i;
    }
    'outer: loop {
        let mut k = 0usize;
        while k < values.len() {
            if values[k] > acc.total {
                break 'outer;
            }
            k += 1;
        }
        break;
    }
    acc
}

pub fn chained(values: &[u64]) -> Vec<u64> {
    values
        .iter()
        .filter(|v| **v > 1)
        .map(|v| {
            let doubled = v * 2;
            doubled + 1
        })
        .collect()
}

pub fn fallible(s: &str) -> Result<u64, std::num::ParseIntError> {
    let n = s.trim().parse::<u64>()?;
    Ok(if n > 10 { n } else { n + 10 })
}
