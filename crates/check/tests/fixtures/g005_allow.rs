// graphrep: allow(G005, fixture: internal hook pending stabilisation)
pub fn undocumented() -> u32 {
    7
}
