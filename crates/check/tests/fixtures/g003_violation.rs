fn trace(v: u64) {
    println!("v = {v}");
}
