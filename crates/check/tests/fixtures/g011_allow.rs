//! Fixture: suppressed coordinator-side distance call with a recorded
//! reason.
fn probe(snap: &crate::ShardState, g: u32, c: u32) -> f64 {
    // graphrep: allow(G011, fixture: one-off calibration probe behind a bench-only gate)
    snap.oracle().distance(g, c)
}
