//! Fixture: clean rewrite — the coordinator asks the shard to verify and
//! only aggregates the returned members.
fn refine(snap: &crate::ShardState, cand: u32, locals: &[u32], theta: f64) -> Vec<u32> {
    snap.home_members(cand, locals, theta)
}
