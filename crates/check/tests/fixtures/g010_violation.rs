//! Fixture: names `serde_json` in core outside the persistence seam.
fn dump(v: &impl serde::Serialize) -> String {
    serde_json::to_string(v).unwrap_or_default()
}
