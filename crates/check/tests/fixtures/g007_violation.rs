//! Fixture: opens a raw socket outside the serving layer.
fn probe_port() -> bool {
    std::net::TcpStream::connect("127.0.0.1:9").is_ok()
}
