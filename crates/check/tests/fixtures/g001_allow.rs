fn parse(x: Option<u32>) -> u32 {
    // graphrep: allow(G001, fixture: emptiness was checked by the caller)
    x.unwrap()
}
