//! Fixture-driven end-to-end tests for the lint rules.
//!
//! Every rule has three fixtures under `tests/fixtures/`: one violating
//! file, one clean rewrite, and one where the violation is suppressed by an
//! allow-directive. The fixtures directory is excluded from the workspace
//! walk, so these files never pollute `graphrep-check -- lint` output.

use graphrep_check::report::Report;
use graphrep_check::rules::{lint_source, Finding, Scope, Suppressed};
use std::path::Path;

/// Fixtures are linted as if they lived in `crates/core/src/`, a scope
/// where every scoped rule (G001, G005, G007 included) is active.
fn core_scope() -> Scope {
    Scope {
        crate_name: "core".into(),
        is_test_file: false,
    }
}

fn lint_fixture(name: &str) -> (Vec<Finding>, Vec<Suppressed>) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let src =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("fixture {name} unreadable: {e}"));
    lint_source(name, &src, &core_scope())
}

/// Asserts the violating fixture yields exactly one finding of `rule` at
/// `line`, and that the JSON report carries the exact rule/file/line triple.
fn assert_violation(name: &str, rule: &str, line: usize) {
    let (findings, suppressed) = lint_fixture(name);
    assert_eq!(
        findings.len(),
        1,
        "{name}: expected exactly one finding, got {findings:?}"
    );
    assert_eq!(findings[0].rule, rule, "{name}: wrong rule");
    assert_eq!(findings[0].file, name, "{name}: wrong file");
    assert_eq!(findings[0].line, line, "{name}: wrong line");
    assert!(suppressed.is_empty(), "{name}: unexpected suppressions");

    let mut report = Report {
        checked_files: 1,
        findings,
        suppressed: vec![],
        lock_graph: None,
    };
    report.normalize();
    let json = report.to_json();
    assert!(
        json.contains(&format!(
            "{{\"rule\": \"{rule}\", \"file\": \"{name}\", \"line\": {line},"
        )),
        "{name}: JSON report missing exact rule/file/line entry:\n{json}"
    );
}

fn assert_clean(name: &str) {
    let (findings, suppressed) = lint_fixture(name);
    assert!(
        findings.is_empty(),
        "{name}: expected clean, got {findings:?}"
    );
    assert!(suppressed.is_empty(), "{name}: unexpected suppressions");
}

/// Asserts the allow fixture has no surviving findings and exactly one
/// recorded suppression of `rule` at `line`.
fn assert_suppressed(name: &str, rule: &str, line: usize) {
    let (findings, suppressed) = lint_fixture(name);
    assert!(
        findings.is_empty(),
        "{name}: directive failed to suppress, got {findings:?}"
    );
    assert_eq!(suppressed.len(), 1, "{name}: {suppressed:?}");
    assert_eq!(suppressed[0].rule, rule);
    assert_eq!(suppressed[0].file, name);
    assert_eq!(suppressed[0].line, line);
    assert!(
        suppressed[0].reason.starts_with("fixture:"),
        "reason should carry the directive text, got {:?}",
        suppressed[0].reason
    );
}

#[test]
fn g001_fixtures() {
    assert_violation("g001_violation.rs", "G001", 2);
    assert_clean("g001_clean.rs");
    assert_suppressed("g001_allow.rs", "G001", 3);
}

#[test]
fn g002_fixtures() {
    assert_violation("g002_violation.rs", "G002", 4);
    assert_clean("g002_clean.rs");
    // A G002 allow-directive is itself a comment adjacent to the `Ordering::`
    // use, so it satisfies the rule directly: no finding is produced at all
    // (hence nothing to record as suppressed).
    let (findings, _) = lint_fixture("g002_allow.rs");
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn g003_fixtures() {
    assert_violation("g003_violation.rs", "G003", 2);
    assert_clean("g003_clean.rs");
    assert_suppressed("g003_allow.rs", "G003", 3);
}

#[test]
fn g004_fixtures() {
    assert_violation("g004_violation.rs", "G004", 2);
    assert_clean("g004_clean.rs");
    assert_suppressed("g004_allow.rs", "G004", 3);
}

#[test]
fn g005_fixtures() {
    assert_violation("g005_violation.rs", "G005", 1);
    assert_clean("g005_clean.rs");
    assert_suppressed("g005_allow.rs", "G005", 2);
}

#[test]
fn g007_fixtures() {
    assert_violation("g007_violation.rs", "G007", 3);
    assert_clean("g007_clean.rs");
    assert_suppressed("g007_allow.rs", "G007", 4);
}

#[test]
fn g010_fixtures() {
    assert_violation("g010_violation.rs", "G010", 3);
    assert_clean("g010_clean.rs");
    assert_suppressed("g010_allow.rs", "G010", 4);
}

/// G011 is doubly scoped — crate `shard`, file `coordinator.rs` — so its
/// fixtures are linted under that path explicitly.
fn lint_shard_coordinator(name: &str) -> (Vec<Finding>, Vec<Suppressed>) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let src =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("fixture {name} unreadable: {e}"));
    let scope = Scope {
        crate_name: "shard".into(),
        is_test_file: false,
    };
    lint_source("crates/shard/src/coordinator.rs", &src, &scope)
}

#[test]
fn g011_fixtures() {
    let (findings, suppressed) = lint_shard_coordinator("g011_violation.rs");
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, "G011");
    assert_eq!(findings[0].line, 4);
    assert!(suppressed.is_empty());
    let mut report = Report {
        checked_files: 1,
        findings,
        suppressed: vec![],
        lock_graph: None,
    };
    report.normalize();
    assert!(
        report.to_json().contains(
            "{\"rule\": \"G011\", \"file\": \"crates/shard/src/coordinator.rs\", \"line\": 4,"
        ),
        "JSON report missing the G011 entry:\n{}",
        report.to_json()
    );

    let (findings, suppressed) = lint_shard_coordinator("g011_clean.rs");
    assert!(findings.is_empty(), "{findings:?}");
    assert!(suppressed.is_empty());

    let (findings, suppressed) = lint_shard_coordinator("g011_allow.rs");
    assert!(findings.is_empty(), "{findings:?}");
    assert_eq!(suppressed.len(), 1, "{suppressed:?}");
    assert_eq!(suppressed[0].rule, "G011");
    assert_eq!(suppressed[0].line, 5);
    assert!(suppressed[0].reason.starts_with("fixture:"));
}

/// G011 stays silent everywhere but the coordinator file: the same fixture
/// under a shard-side path (or another crate entirely) produces nothing.
#[test]
fn g011_scoped_to_the_coordinator_file() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/g011_violation.rs");
    let src = std::fs::read_to_string(path).unwrap();
    let shard = Scope {
        crate_name: "shard".into(),
        is_test_file: false,
    };
    let (findings, _) = lint_source("crates/shard/src/shard.rs", &src, &shard);
    assert!(findings.is_empty(), "{findings:?}");
    let serve = Scope {
        crate_name: "serve".into(),
        is_test_file: false,
    };
    let (findings, _) = lint_source("crates/serve/src/coordinator.rs", &src, &serve);
    assert!(findings.is_empty(), "{findings:?}");
}

/// G010 exempts the persistence seam itself: the same fixture linted under
/// a `persist.rs` path produces nothing.
#[test]
fn g010_exempt_in_persist_module() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/g010_violation.rs");
    let src = std::fs::read_to_string(path).unwrap();
    let (findings, _) = lint_source("crates/core/src/persist.rs", &src, &core_scope());
    assert!(findings.is_empty(), "{findings:?}");
}

/// G007 is scoped: the same socket fixture is fine inside the serving layer
/// and the CLI that fronts it.
#[test]
fn g007_exempt_in_serve_and_cli_scopes() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/g007_violation.rs");
    let src = std::fs::read_to_string(path).unwrap();
    for name in ["serve", "cli"] {
        let scope = Scope {
            crate_name: name.into(),
            is_test_file: false,
        };
        let (findings, _) = lint_source("g007_violation.rs", &src, &scope);
        assert!(findings.is_empty(), "{name}: {findings:?}");
    }
}

/// G003 is scoped: the same `println!` fixture is fine inside the cli crate.
#[test]
fn g003_exempt_in_cli_scope() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/g003_violation.rs");
    let src = std::fs::read_to_string(path).unwrap();
    let scope = Scope {
        crate_name: "cli".into(),
        is_test_file: false,
    };
    let (findings, _) = lint_source("g003_violation.rs", &src, &scope);
    assert!(findings.is_empty(), "{findings:?}");
}

/// G001/G005 are scoped: a non-library crate does not trip them.
#[test]
fn scoped_rules_silent_outside_their_crates() {
    for name in ["g001_violation.rs", "g005_violation.rs"] {
        let path = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("tests/fixtures")
            .join(name);
        let src = std::fs::read_to_string(path).unwrap();
        let scope = Scope {
            crate_name: "bench".into(),
            is_test_file: false,
        };
        let (findings, _) = lint_source(name, &src, &scope);
        assert!(findings.is_empty(), "{name}: {findings:?}");
    }
}

/// The real workspace tree must stay lint-clean; this doubles as the
/// regression guard CI runs via `cargo test`.
#[test]
fn workspace_is_lint_clean() {
    let root = graphrep_check::workspace_root();
    let report = graphrep_check::lint_workspace(&root).expect("workspace walk");
    assert!(
        report.is_clean(),
        "workspace lint regressions:\n{}",
        report.to_text()
    );
    assert!(report.checked_files > 50, "walker lost most of the tree");
}
