//! Report assembly and hand-rolled JSON serialisation.
//!
//! The JSON writer is deliberately tiny (objects, arrays, strings, integers)
//! so the check crate stays dependency-free and safe to run before the rest
//! of the workspace even compiles.

use crate::lockgraph::LockGraph;
use crate::rules::{Finding, Suppressed};

/// Aggregated lint results over the walked workspace files.
#[derive(Debug, Default)]
pub struct Report {
    /// Number of `.rs` files actually linted.
    pub checked_files: usize,
    /// Surviving violations, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Directive-suppressed violations, for auditability.
    pub suppressed: Vec<Suppressed>,
    /// The workspace lock-acquisition graph (None when the lock analysis
    /// did not run, e.g. single-file lints).
    pub lock_graph: Option<LockGraph>,
}

impl Report {
    /// True when the lint pass found no violations.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Sorts findings and suppressions into a stable order.
    pub fn normalize(&mut self) {
        self.findings
            .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
        self.suppressed
            .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    }

    /// Machine-readable report for CI.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256 + self.findings.len() * 128);
        s.push_str("{\n  \"version\": 2,\n  \"checked_files\": ");
        s.push_str(&self.checked_files.to_string());
        s.push_str(",\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("\n    {\"rule\": ");
            json_str(&mut s, f.rule);
            s.push_str(", \"file\": ");
            json_str(&mut s, &f.file);
            s.push_str(", \"line\": ");
            s.push_str(&f.line.to_string());
            s.push_str(", \"message\": ");
            json_str(&mut s, &f.message);
            s.push('}');
        }
        if !self.findings.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("],\n  \"suppressed\": [");
        for (i, f) in self.suppressed.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("\n    {\"rule\": ");
            json_str(&mut s, f.rule);
            s.push_str(", \"file\": ");
            json_str(&mut s, &f.file);
            s.push_str(", \"line\": ");
            s.push_str(&f.line.to_string());
            s.push_str(", \"reason\": ");
            json_str(&mut s, &f.reason);
            s.push('}');
        }
        if !self.suppressed.is_empty() {
            s.push_str("\n  ");
        }
        s.push(']');
        if let Some(g) = &self.lock_graph {
            s.push_str(",\n  \"lock_graph\": {\n    \"nodes\": [");
            for (i, n) in g.nodes.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str("\n      {\"name\": ");
                json_str(&mut s, &n.name);
                s.push_str(", \"file\": ");
                json_str(&mut s, &n.file);
                s.push_str(", \"line\": ");
                s.push_str(&n.line.to_string());
                s.push('}');
            }
            if !g.nodes.is_empty() {
                s.push_str("\n    ");
            }
            s.push_str("],\n    \"edges\": [");
            for (i, e) in g.edges.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str("\n      {\"from\": ");
                json_str(&mut s, &e.from);
                s.push_str(", \"to\": ");
                json_str(&mut s, &e.to);
                s.push_str(", \"file\": ");
                json_str(&mut s, &e.file);
                s.push_str(", \"line\": ");
                s.push_str(&e.line.to_string());
                s.push('}');
            }
            if !g.edges.is_empty() {
                s.push_str("\n    ");
            }
            s.push_str("]\n  }");
        }
        s.push_str("\n}\n");
        s
    }

    /// Human-readable listing, one finding per line.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        for f in &self.findings {
            s.push_str(&format!(
                "{}:{}: [{}] {}\n",
                f.file, f.line, f.rule, f.message
            ));
        }
        if let Some(g) = &self.lock_graph {
            s.push_str(&format!(
                "lock graph: {} site(s), {} edge(s)\n",
                g.nodes.len(),
                g.edges.len()
            ));
        }
        s.push_str(&format!(
            "checked {} files: {} finding(s), {} suppressed\n",
            self.checked_files,
            self.findings.len(),
            self.suppressed.len()
        ));
        s
    }
}

fn json_str(out: &mut String, v: &str) {
    out.push('"');
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_shape() {
        let mut r = Report {
            checked_files: 2,
            findings: vec![Finding {
                rule: "G001",
                file: "a\\b.rs".into(),
                line: 3,
                message: "say \"no\"".into(),
            }],
            suppressed: vec![],
            lock_graph: None,
        };
        r.normalize();
        let j = r.to_json();
        assert!(j.contains("\"checked_files\": 2"));
        assert!(j.contains("\"a\\\\b.rs\""));
        assert!(j.contains("say \\\"no\\\""));
        assert!(j.contains("\"suppressed\": []"));
    }
}
