//! A small handwritten Rust lexer — just enough syntax awareness for the
//! `graphrep-check` lint rules.
//!
//! The lexer produces a flat token stream (identifiers, numbers, strings,
//! chars, lifetimes, single-character punctuation) plus a separate list of
//! comments with line spans and doc-comment classification. It understands
//! the token-level constructs that would otherwise produce false positives:
//! nested block comments, raw strings (`r#"…"#`), byte strings, raw
//! identifiers (`r#type`), char literals vs. lifetimes, and float literals
//! (including exponents and `f32`/`f64` suffixes).
//!
//! It deliberately does **not** parse: the rules in [`crate::rules`] work on
//! token patterns, which is robust against formatting and cheap to maintain.

/// Kinds of tokens the rules care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`pub`, `fn`, `unwrap`, …).
    Ident,
    /// Integer literal (`42`, `0xff`, `1_000u64`).
    Int,
    /// Float literal (`0.0`, `1e-6`, `2f64`).
    Float,
    /// String literal of any flavor (regular, raw, byte).
    Str,
    /// Character literal (`'a'`, `'\n'`).
    Char,
    /// Lifetime (`'a` in `&'a T`).
    Lifetime,
    /// Single punctuation character (`.`, `=`, `!`, `(`, …).
    Punct(char),
}

/// One token with its source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// The token text (empty for strings, whose content is irrelevant here).
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: usize,
    /// Byte offset of the token's first character in the source.
    pub lo: usize,
    /// Byte offset one past the token's last character.
    pub hi: usize,
}

/// One comment (line or block) with its line span.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: usize,
    /// 1-based line the comment ends on (same as `line` for `//` comments).
    pub end_line: usize,
    /// Whether this is a doc comment (`///`, `//!`, `/** */`, `/*! */`).
    pub doc: bool,
    /// Raw comment text, including the comment markers.
    pub text: String,
}

/// The result of lexing one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// The significant tokens, in source order.
    pub tokens: Vec<Token>,
    /// All comments, in source order.
    pub comments: Vec<Comment>,
}

/// Lexes `src` into tokens and comments. Unknown bytes are skipped; the
/// lexer never fails (a lint driver must degrade gracefully on odd input).
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    // Byte offset of each char index (plus one-past-the-end), so tokens can
    // carry exact byte spans while the scanner works in char indices.
    let mut byte_of: Vec<usize> = Vec::with_capacity(b.len() + 1);
    let mut acc = 0usize;
    for &c in &b {
        byte_of.push(acc);
        acc += c.len_utf8();
    }
    byte_of.push(acc);
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1usize;
    let n = b.len();

    let is_ident_start = |c: char| c.is_alphabetic() || c == '_';
    let is_ident = |c: char| c.is_alphanumeric() || c == '_';

    while i < n {
        let c = b[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comments, including doc comments.
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            let start = i;
            while i < n && b[i] != '\n' {
                i += 1;
            }
            let text: String = b[start..i].iter().collect();
            let doc =
                (text.starts_with("///") && !text.starts_with("////")) || text.starts_with("//!");
            out.comments.push(Comment {
                line,
                end_line: line,
                doc,
                text,
            });
            continue;
        }
        // Block comments (nested, possibly doc).
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let start = i;
            let start_line = line;
            let mut depth = 1;
            i += 2;
            while i < n && depth > 0 {
                if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    if b[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            let text: String = b[start..i.min(n)].iter().collect();
            let doc =
                (text.starts_with("/**") && !text.starts_with("/***")) || text.starts_with("/*!");
            out.comments.push(Comment {
                line: start_line,
                end_line: line,
                doc,
                text,
            });
            continue;
        }
        // Raw identifiers and raw/byte strings: r#ident, r"…", r#"…"#, b"…",
        // br#"…"#. A prefix only counts when the quote/hash actually follows;
        // otherwise `relevant`/`break` lex as plain identifiers below.
        if c == 'r' || c == 'b' {
            // Position just past the r/b/br prefix, if this is a special form.
            let mut j = i + 1;
            if c == 'b' && j < n && b[j] == 'r' {
                j += 1;
            }
            let raw = c == 'r' || (c == 'b' && j == i + 2);
            let mut hashes = 0;
            let mut k = j;
            if raw {
                while k < n && b[k] == '#' {
                    hashes += 1;
                    k += 1;
                }
            }
            if raw && hashes > 0 && k < n && is_ident_start(b[k]) && c == 'r' && hashes == 1 {
                // Raw identifier r#type.
                let start = k;
                let mut e = k;
                while e < n && is_ident(b[e]) {
                    e += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: b[start..e].iter().collect(),
                    line,
                    lo: byte_of[i],
                    hi: byte_of[e],
                });
                i = e;
                continue;
            }
            if k < n && b[k] == '"' && (raw || c == 'b') {
                let tok_line = line;
                let mut e = k + 1;
                if hashes > 0 || raw {
                    // Raw (byte) string: scan for `"` followed by `hashes` #s.
                    loop {
                        if e >= n {
                            break;
                        }
                        if b[e] == '\n' {
                            line += 1;
                            e += 1;
                            continue;
                        }
                        if b[e] == '"' {
                            let mut h = 0;
                            while h < hashes && e + 1 + h < n && b[e + 1 + h] == '#' {
                                h += 1;
                            }
                            if h == hashes {
                                e += 1 + hashes;
                                break;
                            }
                        }
                        e += 1;
                    }
                } else {
                    // b"…" byte string with escapes.
                    while e < n {
                        if b[e] == '\\' {
                            e += 2;
                            continue;
                        }
                        if b[e] == '\n' {
                            line += 1;
                        }
                        if b[e] == '"' {
                            e += 1;
                            break;
                        }
                        e += 1;
                    }
                }
                out.tokens.push(Token {
                    kind: TokenKind::Str,
                    text: String::new(),
                    line: tok_line,
                    lo: byte_of[i],
                    hi: byte_of[e.min(n)],
                });
                i = e;
                continue;
            }
            // Fall through: plain identifier starting with r/b.
        }
        // String literals.
        if c == '"' {
            let tok_line = line;
            let start = i;
            i += 1;
            while i < n {
                if b[i] == '\\' {
                    i += 2;
                    continue;
                }
                if b[i] == '\n' {
                    line += 1;
                }
                if b[i] == '"' {
                    i += 1;
                    break;
                }
                i += 1;
            }
            out.tokens.push(Token {
                kind: TokenKind::Str,
                text: String::new(),
                line: tok_line,
                lo: byte_of[start],
                hi: byte_of[i],
            });
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            if i + 1 < n && (is_ident_start(b[i + 1])) && b[i + 1] != '\\' {
                // Could be 'a' (char) or 'a (lifetime): a char literal has a
                // closing quote right after one ident char.
                if i + 2 < n && b[i + 2] == '\'' {
                    out.tokens.push(Token {
                        kind: TokenKind::Char,
                        text: String::new(),
                        line,
                        lo: byte_of[i],
                        hi: byte_of[i + 3],
                    });
                    i += 3;
                    continue;
                }
                let start = i + 1;
                let mut j = i + 1;
                while j < n && is_ident(b[j]) {
                    j += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Lifetime,
                    text: b[start..j].iter().collect(),
                    line,
                    lo: byte_of[i],
                    hi: byte_of[j],
                });
                i = j;
                continue;
            }
            // Escaped or non-ident char literal: '\n', '\'', '{', …
            let tok_line = line;
            let mut j = i + 1;
            if j < n && b[j] == '\\' {
                j += 2;
                // \u{…}
                while j < n && b[j] != '\'' {
                    j += 1;
                }
            } else if j < n {
                j += 1;
            }
            if j < n && b[j] == '\'' {
                j += 1;
            }
            out.tokens.push(Token {
                kind: TokenKind::Char,
                text: String::new(),
                line: tok_line,
                lo: byte_of[i],
                hi: byte_of[j.min(n)],
            });
            i = j;
            continue;
        }
        // Identifiers and keywords.
        if is_ident_start(c) {
            let start = i;
            while i < n && is_ident(b[i]) {
                i += 1;
            }
            out.tokens.push(Token {
                kind: TokenKind::Ident,
                text: b[start..i].iter().collect(),
                line,
                lo: byte_of[start],
                hi: byte_of[i],
            });
            continue;
        }
        // Numbers, including float detection.
        if c.is_ascii_digit() {
            let start = i;
            let mut float = false;
            i += 1;
            if c == '0' && i < n && (b[i] == 'x' || b[i] == 'o' || b[i] == 'b') {
                // Radix literal: never a float.
                i += 1;
                while i < n && (b[i].is_ascii_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
            } else {
                while i < n && (b[i].is_ascii_digit() || b[i] == '_') {
                    i += 1;
                }
                // Fractional part: `1.5`, or trailing `1.` (but not `1..2`
                // ranges or `1.method()` calls).
                if i < n && b[i] == '.' {
                    let after = b.get(i + 1).copied();
                    match after {
                        Some(d) if d.is_ascii_digit() => {
                            float = true;
                            i += 1;
                            while i < n && (b[i].is_ascii_digit() || b[i] == '_') {
                                i += 1;
                            }
                        }
                        Some('.') => {}
                        Some(a) if is_ident_start(a) => {}
                        _ => {
                            float = true;
                            i += 1;
                        }
                    }
                }
                // Exponent.
                if i < n && (b[i] == 'e' || b[i] == 'E') {
                    let mut j = i + 1;
                    if j < n && (b[j] == '+' || b[j] == '-') {
                        j += 1;
                    }
                    if j < n && b[j].is_ascii_digit() {
                        float = true;
                        i = j;
                        while i < n && (b[i].is_ascii_digit() || b[i] == '_') {
                            i += 1;
                        }
                    }
                }
                // Type suffix: `1f64` is a float, `1u32` is not.
                if i < n && is_ident_start(b[i]) {
                    let sstart = i;
                    while i < n && is_ident(b[i]) {
                        i += 1;
                    }
                    let suffix: String = b[sstart..i].iter().collect();
                    if suffix == "f32" || suffix == "f64" {
                        float = true;
                    }
                }
            }
            out.tokens.push(Token {
                kind: if float {
                    TokenKind::Float
                } else {
                    TokenKind::Int
                },
                text: b[start..i].iter().collect(),
                line,
                lo: byte_of[start],
                hi: byte_of[i],
            });
            continue;
        }
        // Everything else: single punctuation character.
        out.tokens.push(Token {
            kind: TokenKind::Punct(c),
            text: c.to_string(),
            line,
            lo: byte_of[i],
            hi: byte_of[i + 1],
        });
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).tokens.into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn idents_and_punct() {
        let l = lex("foo.unwrap()");
        let texts: Vec<&str> = l.tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, vec!["foo", ".", "unwrap", "(", ")"]);
    }

    #[test]
    fn float_vs_int() {
        assert_eq!(kinds("1"), vec![TokenKind::Int]);
        assert_eq!(kinds("1.5"), vec![TokenKind::Float]);
        assert_eq!(kinds("1e-6"), vec![TokenKind::Float]);
        assert_eq!(kinds("2f64"), vec![TokenKind::Float]);
        assert_eq!(kinds("3u32"), vec![TokenKind::Int]);
        assert_eq!(kinds("0xff"), vec![TokenKind::Int]);
        // Ranges and method calls on ints are not floats.
        assert_eq!(
            kinds("1..2"),
            vec![
                TokenKind::Int,
                TokenKind::Punct('.'),
                TokenKind::Punct('.'),
                TokenKind::Int
            ]
        );
        assert_eq!(
            kinds("x.0"),
            vec![TokenKind::Ident, TokenKind::Punct('.'), TokenKind::Int]
        );
    }

    #[test]
    fn comments_classified() {
        let l = lex("/// doc\n// plain\n//! inner\n/* block */\n/** docblock */");
        let docs: Vec<bool> = l.comments.iter().map(|c| c.doc).collect();
        assert_eq!(docs, vec![true, false, true, false, true]);
    }

    #[test]
    fn strings_and_chars_opaque() {
        // `unwrap` inside a string must not produce an Ident token.
        let l = lex("let s = \".unwrap() panic!\"; let c = '\\n'; let r = r#\"panic!\"#;");
        assert!(l
            .tokens
            .iter()
            .all(|t| t.text != "unwrap" && t.text != "panic"));
        assert_eq!(
            l.tokens.iter().filter(|t| t.kind == TokenKind::Str).count(),
            2
        );
        assert_eq!(
            l.tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Char)
                .count(),
            1
        );
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'x'; }");
        assert_eq!(
            l.tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Lifetime)
                .count(),
            2
        );
        assert_eq!(
            l.tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Char)
                .count(),
            1
        );
    }

    #[test]
    fn line_numbers_tracked() {
        let l = lex("a\nb\n\nc");
        let lines: Vec<usize> = l.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn nested_block_comment() {
        let l = lex("/* outer /* inner */ still */ ident");
        assert_eq!(l.comments.len(), 1);
        assert_eq!(l.tokens.len(), 1);
        assert_eq!(l.tokens[0].text, "ident");
    }

    #[test]
    fn raw_ident() {
        let l = lex("r#type");
        assert_eq!(l.tokens[0].text, "type");
        assert_eq!(l.tokens[0].kind, TokenKind::Ident);
    }
}
