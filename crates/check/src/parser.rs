//! A lightweight recursive-descent parser over [`crate::lexer`].
//!
//! This is *not* a full Rust grammar: it recovers exactly the structure the
//! flow-aware rules (G008/G009, see [`crate::lockgraph`]) need —
//!
//! * an **item tree** (structs with typed fields, enums, traits, impls with
//!   their methods, free functions, inline modules) with token/byte spans,
//! * **function bodies** as statement lists, where every statement records
//!   its interleaved token runs and nested blocks in source order (blocks
//!   inside closures, `if`/`match` arms, struct literals — anything brace
//!   delimited — are parsed recursively), and
//! * **`let`-binding names**, so lock-guard bindings (`let g = x.lock();`)
//!   can be tracked to their drop or scope end.
//!
//! Everything the grammar does not model (macro bodies, patterns, generics)
//! is consumed as balanced token runs, so the parser accepts every source
//! file in the workspace and never panics: unknown constructs degrade to
//! [`ItemKind::Other`] items or plain expression statements. Spans round-trip
//! exactly to the lexer's token spans — each node's byte span equals the span
//! from its first to its last token — which the parse sweep test asserts for
//! every non-vendored file.

use crate::lexer::{Lexed, Token, TokenKind};

/// A half-open token-index range plus the byte range those tokens cover.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// First token index.
    pub lo: usize,
    /// One past the last token index.
    pub hi: usize,
    /// Byte offset of the first token's first byte.
    pub byte_lo: usize,
    /// Byte offset one past the last token's last byte.
    pub byte_hi: usize,
}

/// Item visibility, as far as the lint rules care.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Vis {
    /// No `pub`.
    Private,
    /// Plain `pub`.
    Pub,
    /// `pub(crate)`, `pub(super)`, `pub(in …)`.
    Restricted,
}

/// One struct field: name and the raw text of its type.
#[derive(Debug, Clone)]
pub struct FieldDef {
    /// Field name.
    pub name: String,
    /// Type text, tokens joined with spaces (e.g. `Arc < NbIndex >`).
    pub ty: String,
    /// Field span (name through type).
    pub span: Span,
}

/// One function or method.
#[derive(Debug)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// Visibility of the `fn` item.
    pub vis: Vis,
    /// Parameter list: (pattern name, type text). `self` params use "self".
    pub params: Vec<(String, String)>,
    /// Return type text ("" for unit).
    pub ret: String,
    /// Body, absent for trait-method signatures.
    pub body: Option<Block>,
    /// Span of the whole `fn` item (attributes included).
    pub span: Span,
}

/// What kind of item a node is.
#[derive(Debug)]
pub enum ItemKind {
    /// `struct Name { fields }` (unit and tuple structs have empty fields).
    Struct {
        /// Type name.
        name: String,
        /// Named fields, in declaration order.
        fields: Vec<FieldDef>,
    },
    /// `enum Name { … }`.
    Enum {
        /// Type name.
        name: String,
    },
    /// `trait Name { … }` (body not modelled).
    Trait {
        /// Trait name.
        name: String,
    },
    /// `impl [Trait for] SelfTy { fns }`.
    Impl {
        /// Base identifier of the self type (`Foo` in `impl Foo<T>`).
        self_ty: String,
        /// Base identifier of the implemented trait, if any.
        trait_name: Option<String>,
        /// Methods and associated functions with bodies.
        fns: Vec<FnDef>,
    },
    /// A free function.
    Fn(FnDef),
    /// `mod name;` or `mod name { items }`.
    Mod {
        /// Module name.
        name: String,
        /// Inline items, `None` for out-of-line `mod name;`.
        items: Option<Vec<Item>>,
    },
    /// Anything else: `use`, `const`, `static`, `type`, macro definitions and
    /// invocations, inner attributes — consumed as a balanced token run.
    Other,
}

/// One item with its span.
#[derive(Debug)]
pub struct Item {
    /// The item's kind and payload.
    pub kind: ItemKind,
    /// Span of the item, leading attributes included.
    pub span: Span,
}

/// A brace-delimited region: a function body, a nested block, a `match`
/// body, or a struct literal (the parser does not distinguish — all are
/// statement soups with recursively parsed sub-blocks).
#[derive(Debug)]
pub struct Block {
    /// Statements in source order.
    pub stmts: Vec<Stmt>,
    /// Span including the delimiting braces.
    pub span: Span,
}

/// A statement part: a flat token run or a nested block, in source order.
#[derive(Debug)]
pub enum StmtPart {
    /// Token-index range `[lo, hi)` of a flat run (no nested braces).
    Tokens(usize, usize),
    /// A nested brace-delimited region.
    Block(Block),
}

/// Statement classification.
#[derive(Debug)]
pub enum StmtKind {
    /// `let [mut] name … = …;` — `name` is `None` for destructuring patterns.
    Let(Option<String>),
    /// An expression statement (with or without trailing `;`).
    Expr,
    /// A nested item (fn, struct, `use`, …) in statement position.
    Item(Box<Item>),
}

/// One statement.
#[derive(Debug)]
pub struct Stmt {
    /// What kind of statement.
    pub kind: StmtKind,
    /// Span of the whole statement.
    pub span: Span,
    /// Interleaved token runs and nested blocks, in source order.
    pub parts: Vec<StmtPart>,
}

/// A non-fatal parse diagnostic (the parser always produces a tree).
#[derive(Debug, Clone)]
pub struct ParseError {
    /// 1-based line.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

/// The parsed file.
#[derive(Debug, Default)]
pub struct Ast {
    /// Top-level items, tiling the token stream in order.
    pub items: Vec<Item>,
    /// Diagnostics (expected empty for every workspace file).
    pub errors: Vec<ParseError>,
}

/// Parses a lexed file into an item/statement tree. Never fails: unknown
/// constructs degrade to `Other` items and diagnostics in [`Ast::errors`].
pub fn parse(lexed: &Lexed) -> Ast {
    let mut p = Parser {
        toks: &lexed.tokens,
        pos: 0,
        errors: Vec::new(),
    };
    let mut items = Vec::new();
    while p.pos < p.toks.len() {
        let before = p.pos;
        items.push(p.parse_item());
        if p.pos == before {
            // Defensive: guarantee progress on any token stream.
            p.error("parser made no progress; skipping token");
            p.pos += 1;
        }
    }
    Ast {
        items,
        errors: p.errors,
    }
}

struct Parser<'a> {
    toks: &'a [Token],
    pos: usize,
    errors: Vec<ParseError>,
}

impl<'a> Parser<'a> {
    fn error(&mut self, msg: &str) {
        let line = self.toks.get(self.pos).map_or(0, |t| t.line);
        self.errors.push(ParseError {
            line,
            msg: msg.to_string(),
        });
    }

    fn at(&self, i: usize) -> Option<&Token> {
        self.toks.get(i)
    }

    fn is_punct(&self, i: usize, c: char) -> bool {
        self.at(i).is_some_and(|t| t.kind == TokenKind::Punct(c))
    }

    fn is_ident(&self, i: usize, s: &str) -> bool {
        self.at(i)
            .is_some_and(|t| t.kind == TokenKind::Ident && t.text == s)
    }

    fn ident_text(&self, i: usize) -> Option<&str> {
        self.at(i).and_then(|t| {
            if t.kind == TokenKind::Ident {
                Some(t.text.as_str())
            } else {
                None
            }
        })
    }

    fn span_from(&self, lo: usize) -> Span {
        let hi = self.pos.max(lo + 1).min(self.toks.len().max(lo + 1));
        let byte_lo = self.toks.get(lo).map_or(0, |t| t.lo);
        let byte_hi = self
            .toks
            .get(hi.saturating_sub(1))
            .map_or(byte_lo, |t| t.hi);
        Span {
            lo,
            hi,
            byte_lo,
            byte_hi,
        }
    }

    /// Skips a balanced `open … close` group; assumes `pos` is at `open`.
    fn skip_balanced(&mut self, open: char, close: char) {
        let mut depth = 0usize;
        while self.pos < self.toks.len() {
            if self.is_punct(self.pos, open) {
                depth += 1;
            } else if self.is_punct(self.pos, close) {
                depth -= 1;
                if depth == 0 {
                    self.pos += 1;
                    return;
                }
            }
            self.pos += 1;
        }
        self.error("unbalanced delimiter at end of file");
    }

    /// Skips `<…>` generics if present (balanced on angle tokens).
    fn skip_generics(&mut self) {
        if !self.is_punct(self.pos, '<') {
            return;
        }
        let mut depth = 0usize;
        while self.pos < self.toks.len() {
            if self.is_punct(self.pos, '<') {
                depth += 1;
            } else if self.is_punct(self.pos, '>') {
                depth -= 1;
                if depth == 0 {
                    self.pos += 1;
                    return;
                }
            } else if self.is_punct(self.pos, '-') && self.is_punct(self.pos + 1, '>') {
                // `->` inside `Fn(..) -> T` bounds: the `>` is not a closer.
                self.pos += 2;
                continue;
            }
            self.pos += 1;
        }
    }

    /// Consumes one `#[…]` or `#![…]` attribute; assumes `pos` is at `#`.
    fn skip_attr(&mut self) {
        self.pos += 1; // '#'
        if self.is_punct(self.pos, '!') {
            self.pos += 1;
        }
        if self.is_punct(self.pos, '[') {
            self.skip_balanced('[', ']');
        }
    }

    fn at_attr(&self, i: usize) -> bool {
        self.is_punct(i, '#') && (self.is_punct(i + 1, '[') || self.is_punct(i + 2, '['))
    }

    /// Parses one item starting at `pos` (attributes included).
    fn parse_item(&mut self) -> Item {
        let lo = self.pos;
        // Inner attributes `#![…]` stand alone (they scope the enclosing
        // module, not the next item).
        if self.is_punct(self.pos, '#') && self.is_punct(self.pos + 1, '!') {
            self.skip_attr();
            return Item {
                kind: ItemKind::Other,
                span: self.span_from(lo),
            };
        }
        while self.at_attr(self.pos) {
            self.skip_attr();
        }
        let vis = self.parse_vis();
        // Qualifiers before `fn`.
        let mut q = self.pos;
        while self
            .ident_text(q)
            .is_some_and(|t| matches!(t, "const" | "async" | "unsafe" | "extern"))
            || self.at(q).is_some_and(|t| t.kind == TokenKind::Str)
        {
            q += 1;
        }
        if self.is_ident(q, "fn") {
            self.pos = q;
            let f = self.parse_fn(lo, vis);
            let span = f.span;
            return Item {
                kind: ItemKind::Fn(f),
                span,
            };
        }
        match self.ident_text(self.pos) {
            Some("struct") => self.parse_struct(lo),
            Some("enum") | Some("union") => {
                let is_enum = self.ident_text(self.pos) == Some("enum");
                self.pos += 1;
                let name = self.take_ident().unwrap_or_default();
                self.skip_generics();
                self.skip_to_item_end();
                let kind = if is_enum {
                    ItemKind::Enum { name }
                } else {
                    ItemKind::Other
                };
                Item {
                    kind,
                    span: self.span_from(lo),
                }
            }
            Some("trait") => {
                self.pos += 1;
                let name = self.take_ident().unwrap_or_default();
                self.skip_to_item_end();
                Item {
                    kind: ItemKind::Trait { name },
                    span: self.span_from(lo),
                }
            }
            Some("impl") => self.parse_impl(lo),
            Some("mod") => {
                self.pos += 1;
                let name = self.take_ident().unwrap_or_default();
                if self.is_punct(self.pos, ';') {
                    self.pos += 1;
                    return Item {
                        kind: ItemKind::Mod { name, items: None },
                        span: self.span_from(lo),
                    };
                }
                if self.is_punct(self.pos, '{') {
                    let end = self.matching_brace(self.pos);
                    self.pos += 1; // '{'
                    let mut items = Vec::new();
                    while self.pos < end {
                        let before = self.pos;
                        items.push(self.parse_item());
                        if self.pos == before {
                            self.pos += 1;
                        }
                    }
                    self.pos = (end + 1).min(self.toks.len());
                    return Item {
                        kind: ItemKind::Mod {
                            name,
                            items: Some(items),
                        },
                        span: self.span_from(lo),
                    };
                }
                self.skip_to_item_end();
                Item {
                    kind: ItemKind::Mod { name, items: None },
                    span: self.span_from(lo),
                }
            }
            _ => {
                // use, extern crate, const, static, type, macro_rules!,
                // top-level macro invocations, stray tokens.
                self.skip_to_item_end();
                Item {
                    kind: ItemKind::Other,
                    span: self.span_from(lo),
                }
            }
        }
    }

    fn parse_vis(&mut self) -> Vis {
        if !self.is_ident(self.pos, "pub") {
            return Vis::Private;
        }
        self.pos += 1;
        if self.is_punct(self.pos, '(') {
            self.skip_balanced('(', ')');
            return Vis::Restricted;
        }
        Vis::Pub
    }

    fn take_ident(&mut self) -> Option<String> {
        let t = self.ident_text(self.pos).map(str::to_string);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Token index of the `}` matching the `{` at `open` (or EOF).
    fn matching_brace(&self, open: usize) -> usize {
        let mut depth = 0usize;
        let mut i = open;
        while i < self.toks.len() {
            if self.is_punct(i, '{') {
                depth += 1;
            } else if self.is_punct(i, '}') {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            i += 1;
        }
        self.toks.len()
    }

    /// Consumes to the end of a non-structured item: a `;` at depth 0, or a
    /// balanced `{…}` body (whichever comes first).
    fn skip_to_item_end(&mut self) {
        let mut pdepth = 0usize;
        while self.pos < self.toks.len() {
            if self.is_punct(self.pos, '(') || self.is_punct(self.pos, '[') {
                pdepth += 1;
            } else if self.is_punct(self.pos, ')') || self.is_punct(self.pos, ']') {
                pdepth = pdepth.saturating_sub(1);
            } else if pdepth == 0 && self.is_punct(self.pos, ';') {
                self.pos += 1;
                return;
            } else if pdepth == 0 && self.is_punct(self.pos, '{') {
                self.skip_balanced('{', '}');
                // `macro_rules! m { … }` and item bodies end here; a trailing
                // `;` (e.g. `type F = fn() {…};` never occurs) is separate.
                return;
            }
            self.pos += 1;
        }
    }

    fn parse_struct(&mut self, lo: usize) -> Item {
        self.pos += 1; // 'struct'
        let name = self.take_ident().unwrap_or_default();
        self.skip_generics();
        // where clause (rare before braces).
        while self.pos < self.toks.len()
            && !self.is_punct(self.pos, '{')
            && !self.is_punct(self.pos, ';')
            && !self.is_punct(self.pos, '(')
        {
            self.pos += 1;
        }
        let mut fields = Vec::new();
        if self.is_punct(self.pos, '(') {
            // Tuple struct: consume `(…)` then the `;`.
            self.skip_balanced('(', ')');
            while self.pos < self.toks.len() && !self.is_punct(self.pos, ';') {
                self.pos += 1;
            }
            self.pos = (self.pos + 1).min(self.toks.len());
        } else if self.is_punct(self.pos, ';') {
            self.pos += 1;
        } else if self.is_punct(self.pos, '{') {
            let end = self.matching_brace(self.pos);
            self.pos += 1;
            while self.pos < end {
                while self.pos < end && self.at_attr(self.pos) {
                    self.skip_attr();
                }
                let _ = self.parse_vis();
                let flo = self.pos;
                let Some(fname) = self.take_ident() else {
                    self.pos += 1;
                    continue;
                };
                if !self.is_punct(self.pos, ':') {
                    continue;
                }
                self.pos += 1;
                // Type runs to the next comma at depth 0 (angles included).
                let mut ty = String::new();
                let mut adepth = 0isize;
                let mut ddepth = 0usize;
                while self.pos < end {
                    let t = &self.toks[self.pos];
                    match t.kind {
                        TokenKind::Punct('<') => adepth += 1,
                        TokenKind::Punct('>') => adepth -= 1,
                        TokenKind::Punct('(') | TokenKind::Punct('[') => ddepth += 1,
                        TokenKind::Punct(')') | TokenKind::Punct(']') => {
                            ddepth = ddepth.saturating_sub(1)
                        }
                        TokenKind::Punct(',') if adepth <= 0 && ddepth == 0 => break,
                        _ => {}
                    }
                    if !ty.is_empty() {
                        ty.push(' ');
                    }
                    ty.push_str(&t.text);
                    self.pos += 1;
                }
                let fspan = self.span_from(flo);
                fields.push(FieldDef {
                    name: fname,
                    ty,
                    span: fspan,
                });
                if self.is_punct(self.pos, ',') {
                    self.pos += 1;
                }
            }
            self.pos = (end + 1).min(self.toks.len());
        }
        Item {
            kind: ItemKind::Struct { name, fields },
            span: self.span_from(lo),
        }
    }

    fn parse_impl(&mut self, lo: usize) -> Item {
        self.pos += 1; // 'impl'
        self.skip_generics();
        // Collect the head up to `{`, splitting on `for`.
        let head_start = self.pos;
        let mut for_at = None;
        while self.pos < self.toks.len() && !self.is_punct(self.pos, '{') {
            if self.is_ident(self.pos, "for") && for_at.is_none() {
                for_at = Some(self.pos);
            }
            if self.is_ident(self.pos, "where") {
                break;
            }
            self.pos += 1;
        }
        // Skip where clause.
        while self.pos < self.toks.len() && !self.is_punct(self.pos, '{') {
            self.pos += 1;
        }
        let base_ident = |toks: &[Token], lo: usize, hi: usize| -> String {
            toks[lo..hi.min(toks.len())]
                .iter()
                .find(|t| {
                    t.kind == TokenKind::Ident && !matches!(t.text.as_str(), "dyn" | "mut" | "r")
                })
                .map(|t| t.text.clone())
                .unwrap_or_default()
        };
        let (trait_name, self_ty) = match for_at {
            Some(f) => (
                Some(base_ident(self.toks, head_start, f)),
                base_ident(self.toks, f + 1, self.pos),
            ),
            None => (None, base_ident(self.toks, head_start, self.pos)),
        };
        let mut fns = Vec::new();
        if self.is_punct(self.pos, '{') {
            let end = self.matching_brace(self.pos);
            self.pos += 1;
            while self.pos < end {
                let ilo = self.pos;
                while self.pos < end && self.at_attr(self.pos) {
                    self.skip_attr();
                }
                let vis = self.parse_vis();
                let mut q = self.pos;
                while self
                    .ident_text(q)
                    .is_some_and(|t| matches!(t, "const" | "async" | "unsafe" | "extern"))
                    || self.at(q).is_some_and(|t| t.kind == TokenKind::Str)
                {
                    q += 1;
                }
                if self.is_ident(q, "fn") {
                    self.pos = q;
                    fns.push(self.parse_fn(ilo, vis));
                } else {
                    // Associated const/type, macro call, stray token.
                    let before = self.pos;
                    self.skip_to_item_end();
                    if self.pos == before {
                        self.pos += 1;
                    }
                }
            }
            self.pos = (end + 1).min(self.toks.len());
        }
        Item {
            kind: ItemKind::Impl {
                self_ty,
                trait_name,
                fns,
            },
            span: self.span_from(lo),
        }
    }

    /// Parses a `fn` item; `pos` is at the `fn` keyword (qualifiers already
    /// consumed), `lo` is the item start (attributes included).
    fn parse_fn(&mut self, lo: usize, vis: Vis) -> FnDef {
        self.pos += 1; // 'fn'
        let name = self.take_ident().unwrap_or_default();
        self.skip_generics();
        // Parameters.
        let mut params = Vec::new();
        if self.is_punct(self.pos, '(') {
            let pstart = self.pos + 1;
            let pend = {
                // Find matching ')'.
                let mut depth = 0usize;
                let mut i = self.pos;
                loop {
                    if i >= self.toks.len() {
                        break i;
                    }
                    if self.is_punct(i, '(') {
                        depth += 1;
                    } else if self.is_punct(i, ')') {
                        depth -= 1;
                        if depth == 0 {
                            break i;
                        }
                    }
                    i += 1;
                }
            };
            params = self.parse_params(pstart, pend);
            self.pos = (pend + 1).min(self.toks.len());
        }
        // Return type.
        let mut ret = String::new();
        if self.is_punct(self.pos, '-') && self.is_punct(self.pos + 1, '>') {
            self.pos += 2;
            let mut adepth = 0isize;
            while self.pos < self.toks.len() {
                let t = &self.toks[self.pos];
                match t.kind {
                    TokenKind::Punct('<') => adepth += 1,
                    TokenKind::Punct('>') => adepth -= 1,
                    TokenKind::Punct('{') | TokenKind::Punct(';') if adepth <= 0 => break,
                    TokenKind::Ident if t.text == "where" && adepth <= 0 => break,
                    _ => {}
                }
                if !ret.is_empty() {
                    ret.push(' ');
                }
                ret.push_str(&t.text);
                self.pos += 1;
            }
        }
        // Where clause.
        while self.pos < self.toks.len()
            && !self.is_punct(self.pos, '{')
            && !self.is_punct(self.pos, ';')
        {
            self.pos += 1;
        }
        let body = if self.is_punct(self.pos, '{') {
            Some(self.parse_block())
        } else {
            if self.is_punct(self.pos, ';') {
                self.pos += 1;
            }
            None
        };
        FnDef {
            name,
            vis,
            params,
            ret,
            body,
            span: self.span_from(lo),
        }
    }

    /// Extracts `(name, type)` pairs from the token range of a param list.
    fn parse_params(&self, lo: usize, hi: usize) -> Vec<(String, String)> {
        let mut out = Vec::new();
        let mut i = lo;
        while i < hi {
            // One parameter: up to a comma at depth 0.
            let start = i;
            let mut adepth = 0isize;
            let mut ddepth = 0usize;
            let mut colon = None;
            while i < hi {
                match self.toks[i].kind {
                    TokenKind::Punct('<') => adepth += 1,
                    TokenKind::Punct('>') => adepth -= 1,
                    TokenKind::Punct('(') | TokenKind::Punct('[') => ddepth += 1,
                    TokenKind::Punct(')') | TokenKind::Punct(']') => {
                        ddepth = ddepth.saturating_sub(1)
                    }
                    TokenKind::Punct(',') if adepth <= 0 && ddepth == 0 => break,
                    // `::` is a path separator, not the param colon.
                    TokenKind::Punct(':')
                        if adepth <= 0
                            && ddepth == 0
                            && colon.is_none()
                            && i + 1 < hi
                            && !self.is_punct(i + 1, ':')
                            && !(i > start && self.is_punct(i - 1, ':')) =>
                    {
                        colon = Some(i);
                    }
                    _ => {}
                }
                i += 1;
            }
            let seg_end = i;
            i += 1; // skip ','
            match colon {
                Some(c) => {
                    // Pattern name: last ident before the colon.
                    let pname = self.toks[start..c]
                        .iter()
                        .rev()
                        .find(|t| t.kind == TokenKind::Ident && t.text != "mut")
                        .map(|t| t.text.clone())
                        .unwrap_or_default();
                    let ty = self.toks[c + 1..seg_end]
                        .iter()
                        .map(|t| t.text.as_str())
                        .collect::<Vec<_>>()
                        .join(" ");
                    out.push((pname, ty));
                }
                None => {
                    // `self`, `&self`, `&mut self`, `mut self`.
                    if self.toks[start..seg_end]
                        .iter()
                        .any(|t| t.kind == TokenKind::Ident && t.text == "self")
                    {
                        out.push(("self".to_string(), "Self".to_string()));
                    }
                }
            }
        }
        out
    }

    /// Parses a brace-delimited region; `pos` is at `{`.
    fn parse_block(&mut self) -> Block {
        let lo = self.pos;
        let end = self.matching_brace(self.pos);
        self.pos += 1; // '{'
        let mut stmts = Vec::new();
        while self.pos < end {
            let before = self.pos;
            stmts.push(self.parse_stmt(end));
            if self.pos == before {
                self.pos += 1;
            }
        }
        self.pos = (end + 1).min(self.toks.len());
        Block {
            stmts,
            span: self.span_from(lo),
        }
    }

    /// True when the tokens at `i` begin a nested item.
    fn stmt_is_item(&self, i: usize, end: usize) -> bool {
        let mut j = i;
        while j < end && self.at_attr(j) {
            // Skip one attribute group.
            let mut depth = 0usize;
            j += 1; // '#'
            if self.is_punct(j, '!') {
                j += 1;
            }
            while j < end {
                if self.is_punct(j, '[') {
                    depth += 1;
                } else if self.is_punct(j, ']') {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        if self.is_ident(j, "pub") {
            j += 1;
            if self.is_punct(j, '(') {
                let mut depth = 0usize;
                while j < end {
                    if self.is_punct(j, '(') {
                        depth += 1;
                    } else if self.is_punct(j, ')') {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    j += 1;
                }
            }
        }
        match self.ident_text(j) {
            Some("fn") | Some("struct") | Some("enum") | Some("trait") | Some("impl")
            | Some("mod") | Some("use") | Some("static") | Some("type") => true,
            Some("const") => {
                // `const FOO: T = …;` or `const fn` — both items; a `const`
                // expression (`const { … }`) is not.
                self.ident_text(j + 1).is_some() || self.is_ident(j + 1, "fn")
            }
            Some("macro_rules") => true,
            Some("extern") => self.is_ident(j + 1, "crate") || self.at(j + 1).is_some(),
            _ => false,
        }
    }

    /// Parses one statement inside a block ending (exclusive) at `end`.
    fn parse_stmt(&mut self, end: usize) -> Stmt {
        let lo = self.pos;
        // Bare semicolons.
        if self.is_punct(self.pos, ';') {
            self.pos += 1;
            return Stmt {
                kind: StmtKind::Expr,
                span: self.span_from(lo),
                parts: vec![StmtPart::Tokens(lo, self.pos)],
            };
        }
        if self.stmt_is_item(self.pos, end) {
            let item = self.parse_item();
            let span = self.span_from(lo);
            return Stmt {
                kind: StmtKind::Item(Box::new(item)),
                span,
                parts: Vec::new(),
            };
        }
        let is_let = self.is_ident(self.pos, "let");
        let mut let_name = None;
        if is_let {
            // `let [mut] ident (: ty)? = …` — capture simple binding names.
            let mut j = self.pos + 1;
            if self.is_ident(j, "mut") {
                j += 1;
            }
            if let Some(name) = self.ident_text(j) {
                if self.is_punct(j + 1, '=')
                    || self.is_punct(j + 1, ':')
                    || self.is_ident(j + 1, "else")
                {
                    let_name = Some(name.to_string());
                }
            }
        }
        // Scan to the statement end, collecting flat runs and nested blocks.
        let mut parts = Vec::new();
        let mut run_start = self.pos;
        let mut pdepth = 0usize;
        let block_leading = matches!(
            self.ident_text(self.pos),
            Some("if")
                | Some("match")
                | Some("while")
                | Some("loop")
                | Some("for")
                | Some("unsafe")
        ) || self.is_punct(self.pos, '{');
        while self.pos < end {
            if self.is_punct(self.pos, '(') || self.is_punct(self.pos, '[') {
                pdepth += 1;
                self.pos += 1;
                continue;
            }
            if self.is_punct(self.pos, ')') || self.is_punct(self.pos, ']') {
                pdepth = pdepth.saturating_sub(1);
                self.pos += 1;
                continue;
            }
            if self.is_punct(self.pos, '{') {
                if run_start < self.pos {
                    parts.push(StmtPart::Tokens(run_start, self.pos));
                }
                let blk = self.parse_block();
                parts.push(StmtPart::Block(blk));
                run_start = self.pos;
                // A block at paren depth 0 ends a block-leading statement,
                // unless the expression visibly continues.
                if pdepth == 0 && !is_let && block_leading {
                    let cont = self.is_ident(self.pos, "else")
                        || self.is_punct(self.pos, '.')
                        || self.is_punct(self.pos, '?');
                    if !cont {
                        if self.is_punct(self.pos, ';') {
                            self.pos += 1;
                        }
                        break;
                    }
                }
                continue;
            }
            if pdepth == 0 && self.is_punct(self.pos, ';') {
                self.pos += 1;
                break;
            }
            self.pos += 1;
        }
        if run_start < self.pos {
            parts.push(StmtPart::Tokens(run_start, self.pos));
        }
        Stmt {
            kind: if is_let {
                StmtKind::Let(let_name)
            } else {
                StmtKind::Expr
            },
            span: self.span_from(lo),
            parts,
        }
    }
}

/// Walks every span in the tree, calling `f` with (kind-name, span).
pub fn visit_spans(ast: &Ast, f: &mut dyn FnMut(&'static str, Span)) {
    fn item(it: &Item, f: &mut dyn FnMut(&'static str, Span)) {
        f("item", it.span);
        match &it.kind {
            ItemKind::Struct { fields, .. } => {
                for fd in fields {
                    f("field", fd.span);
                }
            }
            ItemKind::Impl { fns, .. } => {
                for fd in fns {
                    f("fn", fd.span);
                    if let Some(b) = &fd.body {
                        block(b, f);
                    }
                }
            }
            ItemKind::Fn(fd) => {
                f("fn", fd.span);
                if let Some(b) = &fd.body {
                    block(b, f);
                }
            }
            ItemKind::Mod {
                items: Some(items), ..
            } => {
                for it in items {
                    item(it, f);
                }
            }
            _ => {}
        }
    }
    fn block(b: &Block, f: &mut dyn FnMut(&'static str, Span)) {
        f("block", b.span);
        for s in &b.stmts {
            f("stmt", s.span);
            match &s.kind {
                StmtKind::Item(it) => item(it, f),
                _ => {
                    for p in &s.parts {
                        if let StmtPart::Block(nb) = p {
                            block(nb, f);
                        }
                    }
                }
            }
        }
    }
    for it in &ast.items {
        item(it, f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Ast {
        parse(&lex(src))
    }

    #[test]
    fn items_tile_the_token_stream() {
        let src = "use std::fmt;\n\nstruct S { a: u32, b: Vec<String> }\n\nimpl S {\n    fn get(&self) -> u32 { self.a }\n}\n\nfn free() {}\n";
        let ast = parse_src(src);
        assert!(ast.errors.is_empty(), "{:?}", ast.errors);
        let n = lex(src).tokens.len();
        assert_eq!(ast.items.first().unwrap().span.lo, 0);
        for w in ast.items.windows(2) {
            assert_eq!(w[0].span.hi, w[1].span.lo);
        }
        assert_eq!(ast.items.last().unwrap().span.hi, n);
    }

    #[test]
    fn struct_fields_with_types() {
        let ast = parse_src("pub struct Shard { exact: RwLock<HashMap<u64, f64>>, n: usize }");
        let ItemKind::Struct { name, fields } = &ast.items[0].kind else {
            panic!("not a struct: {:?}", ast.items[0].kind);
        };
        assert_eq!(name, "Shard");
        assert_eq!(fields.len(), 2);
        assert_eq!(fields[0].name, "exact");
        assert!(fields[0].ty.contains("RwLock"));
        assert_eq!(fields[1].name, "n");
        assert_eq!(fields[1].ty, "usize");
    }

    #[test]
    fn impl_methods_and_trait_impls() {
        let src = "impl<T: Clone> Store<T> {\n    pub fn read(&self) -> Guard<'_, T> { self.state.read() }\n}\nimpl Drop for Store<u32> { fn drop(&mut self) {} }\n";
        let ast = parse_src(src);
        let ItemKind::Impl {
            self_ty,
            trait_name,
            fns,
        } = &ast.items[0].kind
        else {
            panic!("not an impl");
        };
        assert_eq!(self_ty, "Store");
        assert!(trait_name.is_none());
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "read");
        assert_eq!(fns[0].vis, Vis::Pub);
        assert!(fns[0].ret.contains("Guard"));
        let ItemKind::Impl {
            self_ty,
            trait_name,
            ..
        } = &ast.items[1].kind
        else {
            panic!("not an impl");
        };
        assert_eq!(self_ty, "Store");
        assert_eq!(trait_name.as_deref(), Some("Drop"));
    }

    #[test]
    fn let_bindings_and_nested_blocks() {
        let src = "fn f() {\n    let g = m.lock();\n    let (a, b) = pair();\n    if cond { inner(); } else { other(); }\n    g.push(1);\n}\n";
        let ast = parse_src(src);
        let ItemKind::Fn(fd) = &ast.items[0].kind else {
            panic!()
        };
        let body = fd.body.as_ref().unwrap();
        assert_eq!(body.stmts.len(), 4);
        assert!(matches!(&body.stmts[0].kind, StmtKind::Let(Some(n)) if n == "g"));
        assert!(matches!(&body.stmts[1].kind, StmtKind::Let(None)));
        // The if/else statement carries two nested blocks.
        let blocks = body.stmts[2]
            .parts
            .iter()
            .filter(|p| matches!(p, StmtPart::Block(_)))
            .count();
        assert_eq!(blocks, 2);
        assert!(matches!(&body.stmts[3].kind, StmtKind::Expr));
    }

    #[test]
    fn match_and_struct_literals_become_blocks() {
        let src = "fn f() -> S {\n    match x { A => 1, B => { two() } };\n    S { a: m.lock().len(), b: 2 }\n}\n";
        let ast = parse_src(src);
        let ItemKind::Fn(fd) = &ast.items[0].kind else {
            panic!()
        };
        let body = fd.body.as_ref().unwrap();
        assert_eq!(body.stmts.len(), 2);
        for s in &body.stmts {
            assert!(s.parts.iter().any(|p| matches!(p, StmtPart::Block(_))));
        }
    }

    #[test]
    fn spans_round_trip_to_token_spans() {
        let src = "struct S { a: u32 }\nimpl S { fn f(&self) -> u32 { let x = 1; x } }\n";
        let lexed = lex(src);
        let ast = parse(&lexed);
        assert!(ast.errors.is_empty());
        let mut count = 0usize;
        visit_spans(&ast, &mut |_kind, sp| {
            count += 1;
            assert!(sp.lo < sp.hi, "empty span");
            assert_eq!(sp.byte_lo, lexed.tokens[sp.lo].lo);
            assert_eq!(sp.byte_hi, lexed.tokens[sp.hi - 1].hi);
        });
        assert!(count >= 7, "visited only {count} spans");
    }

    #[test]
    fn params_extracted() {
        let ast = parse_src("fn f(a: u32, m: &Mutex<Vec<u8>>, (x, y): (u8, u8)) {}");
        let ItemKind::Fn(fd) = &ast.items[0].kind else {
            panic!()
        };
        assert_eq!(fd.params[0], ("a".to_string(), "u32".to_string()));
        assert_eq!(fd.params[1].0, "m");
        assert!(fd.params[1].1.contains("Mutex"));
    }

    #[test]
    fn mods_recursive_and_macros_opaque() {
        let src = "mod inner {\n    pub fn f() {}\n}\nmacro_rules! m { ($x:expr) => { $x } }\nthread_local! { static T: u32 = 0; }\n";
        let ast = parse_src(src);
        assert!(ast.errors.is_empty(), "{:?}", ast.errors);
        let ItemKind::Mod {
            items: Some(items), ..
        } = &ast.items[0].kind
        else {
            panic!("not an inline mod");
        };
        assert!(matches!(items[0].kind, ItemKind::Fn(_)));
    }
}
