//! The token-stream project lint rules (G001–G007, G010, and G011; the
//! workspace-wide lock rules G008/G009 live in `lockorder`).
//!
//! Rules are purely lexical: no type information, no macro expansion. That is
//! enough for the project conventions they enforce, and it keeps the driver
//! dependency-free. Each rule can be suppressed at a single site with
//!
//! ```text
//! // graphrep: allow(G001, reason why this site is fine)
//! ```
//!
//! which covers the directive's own line and the following line. A directive
//! with an empty reason is itself reported (rule `G000`).

use crate::lexer::{lex, Comment, Token, TokenKind};
use std::collections::BTreeMap;

/// Where a source file sits in the workspace, which decides rule applicability.
#[derive(Debug, Clone)]
pub struct Scope {
    /// Short crate name: `graph`, `ged`, `metric`, `core`, `baselines`,
    /// `datagen`, `serve`, `cli`, `bench`, `check`, or `root` for the root
    /// package.
    pub crate_name: String,
    /// True for files under `tests/`, `benches/`, or `examples/` — all rules
    /// skip those entirely (inline `#[cfg(test)]` modules are detected
    /// separately, per region).
    pub is_test_file: bool,
}

/// A single rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier (`G001`..`G007`, or `G000` for malformed directives).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line of the offending token.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

/// A violation that an allow-directive suppressed, kept for the report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppressed {
    /// Rule identifier that was suppressed.
    pub rule: &'static str,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line of the suppressed violation.
    pub line: usize,
    /// The justification given in the directive.
    pub reason: String,
}

/// Crates where G001 (no unwrap/expect/panic!/todo!) applies.
const G001_CRATES: &[&str] = &["graph", "ged", "metric", "core", "baselines", "serve"];
/// Crates exempt from G003 (println!/dbg!/eprintln! allowed).
const G003_EXEMPT: &[&str] = &["cli", "bench", "check"];
/// Crates where G005 (doc comments on `pub fn`) applies.
const G005_CRATES: &[&str] = &["core", "ged", "serve"];
/// Crates exempt from G007 (raw sockets and blocking sleeps allowed): the
/// serving layer owns all network I/O and shutdown-poll timing, and the CLI
/// fronts it.
const G007_EXEMPT: &[&str] = &["serve", "cli"];
/// Crates where G010 (JSON stays behind the persistence seam) applies: the
/// index data plane must stay format-agnostic, so `serde_json` may appear
/// only in `persist.rs` (and tests).
const G010_CRATES: &[&str] = &["core", "metric"];
/// Distance-work idents G011 bans from the shard coordinator: the engine
/// and oracle types themselves, plus their verification entry points when
/// invoked as methods.
const G011_TYPES: &[&str] = &["GedEngine", "DistanceOracle"];
const G011_METHODS: &[&str] = &[
    "distance",
    "within",
    "within_verdict",
    "distance_within",
    "distance_profiled",
    "distance_within_profiled",
];
/// Atomic memory orderings that G002 requires a justification comment for.
/// Restricting to these avoids flagging `std::cmp::Ordering::{Less,…}`.
const ATOMIC_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

struct AllowDirective {
    rule: String,
    reason: String,
    /// Directive line; suppression covers `line..=last_covered`.
    line: usize,
    last_covered: usize,
}

/// Lints one file's source text under the given scope.
///
/// Returns surviving findings plus the list of directive-suppressed ones.
pub fn lint_source(file: &str, src: &str, scope: &Scope) -> (Vec<Finding>, Vec<Suppressed>) {
    if scope.is_test_file {
        return (Vec::new(), Vec::new());
    }
    let lexed = lex(src);
    let toks = &lexed.tokens;
    let comments = &lexed.comments;

    let (allows, mut findings) = parse_allow_directives(file, comments);
    let test_regions = test_regions(toks);
    let in_test = |line: usize| test_regions.iter().any(|&(a, b)| a <= line && line <= b);

    if G001_CRATES.iter().any(|c| c == &scope.crate_name) {
        rule_g001(file, toks, &in_test, &mut findings);
    }
    rule_g002(file, toks, comments, &in_test, &mut findings);
    if !G003_EXEMPT.iter().any(|c| c == &scope.crate_name) {
        rule_g003(file, toks, &in_test, &mut findings);
    }
    rule_g004(file, toks, &in_test, &mut findings);
    if G005_CRATES.iter().any(|c| c == &scope.crate_name) {
        rule_g005(file, toks, comments, &in_test, &mut findings);
    }
    rule_g006(file, toks, comments, &in_test, &mut findings);
    if !G007_EXEMPT.iter().any(|c| c == &scope.crate_name) {
        rule_g007(file, toks, &in_test, &mut findings);
    }
    if G010_CRATES.iter().any(|c| c == &scope.crate_name) && !file.ends_with("persist.rs") {
        rule_g010(file, toks, &in_test, &mut findings);
    }
    if scope.crate_name == "shard" && file.ends_with("coordinator.rs") {
        rule_g011(file, toks, &in_test, &mut findings);
    }

    // Apply allow-directives: a finding survives unless a directive with the
    // matching rule id covers its line.
    let mut kept = Vec::new();
    let mut suppressed = Vec::new();
    for f in findings {
        let hit = allows
            .iter()
            .find(|a| a.rule == f.rule && a.line <= f.line && f.line <= a.last_covered);
        match hit {
            Some(a) => suppressed.push(Suppressed {
                rule: f.rule,
                file: f.file,
                line: f.line,
                reason: a.reason.clone(),
            }),
            None => kept.push(f),
        }
    }
    kept.sort_by_key(|f| (f.line, f.rule));
    (kept, suppressed)
}

/// Applies this file's allow directives to findings produced
/// by an out-of-band analysis (the workspace-wide lock rules G008/G009, which
/// run outside [`lint_source`]). Malformed-directive findings are NOT
/// re-reported here — [`lint_source`] already owns those.
pub fn apply_allows(
    file: &str,
    src: &str,
    findings: Vec<Finding>,
) -> (Vec<Finding>, Vec<Suppressed>) {
    let lexed = lex(src);
    let (allows, _g000) = parse_allow_directives(file, &lexed.comments);
    let mut kept = Vec::new();
    let mut suppressed = Vec::new();
    for f in findings {
        let hit = allows
            .iter()
            .find(|a| a.rule == f.rule && a.line <= f.line && f.line <= a.last_covered);
        match hit {
            Some(a) => suppressed.push(Suppressed {
                rule: f.rule,
                file: f.file,
                line: f.line,
                reason: a.reason.clone(),
            }),
            None => kept.push(f),
        }
    }
    kept.sort_by_key(|f| (f.line, f.rule));
    (kept, suppressed)
}

fn parse_allow_directives(file: &str, comments: &[Comment]) -> (Vec<AllowDirective>, Vec<Finding>) {
    let mut allows = Vec::new();
    let mut findings = Vec::new();
    for c in comments {
        let Some(pos) = c.text.find("graphrep: allow(") else {
            continue;
        };
        let rest = &c.text[pos + "graphrep: allow(".len()..];
        let Some(close) = rest.find(')') else {
            findings.push(Finding {
                rule: "G000",
                file: file.to_string(),
                line: c.line,
                message: "malformed allow directive: missing closing parenthesis".into(),
            });
            continue;
        };
        let inner = &rest[..close];
        let (rule, reason) = match inner.split_once(',') {
            Some((r, why)) => (r.trim(), why.trim()),
            None => (inner.trim(), ""),
        };
        if reason.is_empty() || !rule.starts_with('G') {
            findings.push(Finding {
                rule: "G000",
                file: file.to_string(),
                line: c.line,
                message: format!(
                    "allow directive needs a rule id and a non-empty reason: `allow({inner})`"
                ),
            });
            continue;
        }
        allows.push(AllowDirective {
            rule: rule.to_string(),
            reason: reason.to_string(),
            line: c.line,
            last_covered: c.end_line + 1,
        });
    }
    (allows, findings)
}

/// Line spans of items gated behind `#[cfg(test)]`-style attributes.
///
/// Recognised shape: `#` `[` … `cfg` … `test` … `]`, followed by optional
/// further attributes, then an item whose body is the next brace-matched
/// block (or nothing, if a `;` comes first).
pub(crate) fn test_regions(toks: &[Token]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i + 1 < toks.len() {
        if !(is_punct(&toks[i], '#') && is_punct(&toks[i + 1], '[')) {
            i += 1;
            continue;
        }
        // Bracket-match the attribute body.
        let mut depth = 0usize;
        let mut j = i + 1;
        let mut saw_cfg = false;
        let mut test_at = None;
        while j < toks.len() {
            match toks[j].kind {
                TokenKind::Punct('[') => depth += 1,
                TokenKind::Punct(']') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                TokenKind::Ident => {
                    if toks[j].text == "cfg" {
                        saw_cfg = true;
                    }
                    if toks[j].text == "test" && test_at.is_none() {
                        test_at = Some(j);
                    }
                }
                _ => {}
            }
            j += 1;
        }
        let attr_end = j;
        // `#[cfg(not(test))]` gates *non*-test code: reject when the `test`
        // ident is directly wrapped in `not(…)`.
        let negated = test_at
            .is_some_and(|t| t >= 2 && is_punct(&toks[t - 1], '(') && toks[t - 2].text == "not");
        if !(saw_cfg && test_at.is_some() && !negated) {
            i = attr_end + 1;
            continue;
        }
        // Skip any further attributes, then find the gated item's body.
        let mut k = attr_end + 1;
        while k + 1 < toks.len() && is_punct(&toks[k], '#') && is_punct(&toks[k + 1], '[') {
            let mut d = 0usize;
            while k < toks.len() {
                match toks[k].kind {
                    TokenKind::Punct('[') => d += 1,
                    TokenKind::Punct(']') => {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            k += 1;
        }
        // Scan to the item body `{` (or give up at `;`, e.g. `mod tests;`).
        while k < toks.len() && !is_punct(&toks[k], '{') && !is_punct(&toks[k], ';') {
            k += 1;
        }
        if k < toks.len() && is_punct(&toks[k], '{') {
            let start_line = toks[i].line;
            let mut d = 0usize;
            while k < toks.len() {
                match toks[k].kind {
                    TokenKind::Punct('{') => d += 1,
                    TokenKind::Punct('}') => {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            let end_line = toks.get(k).map_or(usize::MAX, |t| t.line);
            regions.push((start_line, end_line));
        }
        i = k + 1;
    }
    regions
}

/// G001: no `.unwrap()` / `.expect(` / `panic!` / `todo!` in library crates.
fn rule_g001(file: &str, toks: &[Token], in_test: &dyn Fn(usize) -> bool, out: &mut Vec<Finding>) {
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident || in_test(t.line) {
            continue;
        }
        let name = t.text.as_str();
        let flagged = match name {
            "unwrap" | "expect" => {
                i > 0
                    && is_punct(&toks[i - 1], '.')
                    && toks.get(i + 1).is_some_and(|n| is_punct(n, '('))
            }
            "panic" | "todo" => toks.get(i + 1).is_some_and(|n| is_punct(n, '!')),
            _ => false,
        };
        if flagged {
            out.push(Finding {
                rule: "G001",
                file: file.to_string(),
                line: t.line,
                message: format!(
                    "`{name}` in a library crate: return a Result or justify with an allow"
                ),
            });
        }
    }
}

/// G002: atomic `Ordering::X` uses need a justification comment — on the same
/// line, on the line directly above, or carried down from the previous line of
/// a contiguous run of atomic accesses.
///
/// The carry rule exists so a batch of related counters reads as one justified
/// block: one real comment above the first access covers the consecutive lines
/// that follow, instead of forcing a filler comment (`// see above`) per line.
/// Any non-atomic line breaks the run, so the justification can never drift
/// far from the accesses it explains.
fn rule_g002(
    file: &str,
    toks: &[Token],
    comments: &[Comment],
    in_test: &dyn Fn(usize) -> bool,
    out: &mut Vec<Finding>,
) {
    // First pass: every line with a qualified `Ordering::X` use, and the
    // ordering name on it (for the message). Requiring the `Ordering::`
    // qualifier keeps bare idents named `Release` etc. out of the rule.
    let mut ordering_lines: BTreeMap<usize, &str> = BTreeMap::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident
            || !ATOMIC_ORDERINGS.contains(&t.text.as_str())
            || in_test(t.line)
        {
            continue;
        }
        let qualified = i >= 3
            && is_punct(&toks[i - 1], ':')
            && is_punct(&toks[i - 2], ':')
            && toks[i - 3].text == "Ordering";
        if qualified {
            ordering_lines.entry(t.line).or_insert(&t.text);
        }
    }
    // Second pass in line order: a line is justified directly by a comment, or
    // transitively when the line immediately above is a justified atomic line.
    let mut prev: Option<(usize, bool)> = None;
    for (&line, &name) in &ordering_lines {
        let direct = comments
            .iter()
            .any(|c| !c.text.trim().is_empty() && (c.line == line || c.end_line + 1 == line));
        let carried = matches!(prev, Some((p, true)) if p + 1 == line);
        let justified = direct || carried;
        prev = Some((line, justified));
        if !justified {
            out.push(Finding {
                rule: "G002",
                file: file.to_string(),
                line,
                message: format!(
                    "`Ordering::{name}` without a justification comment on this line, the line \
                     above, or carried down a contiguous run of atomic accesses"
                ),
            });
        }
    }
}

/// G003: no `println!` / `dbg!` / `eprintln!` outside cli/bench.
fn rule_g003(file: &str, toks: &[Token], in_test: &dyn Fn(usize) -> bool, out: &mut Vec<Finding>) {
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident || in_test(t.line) {
            continue;
        }
        let name = t.text.as_str();
        if matches!(name, "println" | "dbg" | "eprintln")
            && toks.get(i + 1).is_some_and(|n| is_punct(n, '!'))
        {
            out.push(Finding {
                rule: "G003",
                file: file.to_string(),
                line: t.line,
                message: format!("`{name}!` outside cli/bench: route output through the caller"),
            });
        }
    }
}

/// G004: `==` / `!=` with a float-literal operand.
fn rule_g004(file: &str, toks: &[Token], in_test: &dyn Fn(usize) -> bool, out: &mut Vec<Finding>) {
    for i in 0..toks.len().saturating_sub(1) {
        let (a, b) = (&toks[i], &toks[i + 1]);
        let eq = is_punct(a, '=') && is_punct(b, '=');
        let ne = is_punct(a, '!') && is_punct(b, '=');
        if !(eq || ne) || a.line != b.line || in_test(a.line) {
            continue;
        }
        // `<=`, `>=`, `+=`, … all have a punct directly before the `=`; a
        // genuine `==` starts fresh after an operand or opening delimiter.
        if eq && i > 0 {
            if let TokenKind::Punct(p) = toks[i - 1].kind {
                if "<>=!+-*/%&|^".contains(p) {
                    continue;
                }
            }
        }
        let lhs_float = i > 0 && toks[i - 1].kind == TokenKind::Float;
        let rhs = toks.get(i + 2);
        let rhs_float = match rhs.map(|t| &t.kind) {
            Some(TokenKind::Float) => true,
            Some(TokenKind::Punct('-')) => {
                toks.get(i + 3).is_some_and(|t| t.kind == TokenKind::Float)
            }
            _ => false,
        };
        if lhs_float || rhs_float {
            out.push(Finding {
                rule: "G004",
                file: file.to_string(),
                line: a.line,
                message: "float literal compared with ==/!=: use an epsilon or integer guard"
                    .to_string(),
            });
        }
    }
}

/// G005: every plain `pub fn` / `pub struct` / `pub enum` / `pub trait` in
/// the G005 crates carries a doc comment.
fn rule_g005(
    file: &str,
    toks: &[Token],
    comments: &[Comment],
    in_test: &dyn Fn(usize) -> bool,
    out: &mut Vec<Finding>,
) {
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident || t.text != "pub" || in_test(t.line) {
            continue;
        }
        // `pub(crate)` / `pub(super)` are internal API: exempt.
        if toks.get(i + 1).is_some_and(|n| is_punct(n, '(')) {
            continue;
        }
        // Skip qualifiers between `pub` and the item keyword:
        // const/async/unsafe fn, unsafe trait, extern "C" fn.
        let mut j = i + 1;
        while toks.get(j).is_some_and(|n| {
            matches!(n.text.as_str(), "const" | "async" | "unsafe" | "extern")
                || n.kind == TokenKind::Str
        }) {
            j += 1;
        }
        let kind = match toks.get(j).map(|n| n.text.as_str()) {
            Some(k @ ("fn" | "struct" | "enum" | "trait")) => k.to_string(),
            _ => continue,
        };
        let item_name = toks.get(j + 1).map(|n| n.text.clone()).unwrap_or_default();
        // Walk backwards over any attributes to find the last token of the
        // previous item; a doc comment anywhere between that and `pub`
        // (attributes included) satisfies the rule, as does a `#[doc…]` attr.
        let mut k = i;
        let mut has_doc_attr = false;
        while k >= 1 && is_punct(&toks[k - 1], ']') {
            let mut d = 0usize;
            let mut m = k - 1;
            loop {
                match toks[m].kind {
                    TokenKind::Punct(']') => d += 1,
                    TokenKind::Punct('[') => {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    TokenKind::Ident if toks[m].text == "doc" => has_doc_attr = true,
                    _ => {}
                }
                if m == 0 {
                    break;
                }
                m -= 1;
            }
            // Expect the `#` that opens the attribute.
            if m >= 1 && is_punct(&toks[m - 1], '#') {
                k = m - 1;
            } else {
                break;
            }
        }
        let prev_line = if k == 0 { 0 } else { toks[k - 1].line };
        let has_doc = has_doc_attr
            || comments
                .iter()
                .any(|c| c.doc && c.end_line < t.line && c.end_line >= prev_line);
        if !has_doc {
            out.push(Finding {
                rule: "G005",
                file: file.to_string(),
                line: t.line,
                message: format!("`pub {kind} {item_name}` is missing a doc comment"),
            });
        }
    }
}

/// G006: no fresh heap allocation inside functions marked hot-path.
///
/// A `// graphrep: hot-path` comment marks the next `fn` as part of the
/// zero-allocation GED search path: its body must reuse the per-thread
/// scratch buffers, so `Vec::new()` and `.collect(...)` (including
/// turbofish `collect::<...>(...)`) are flagged anywhere inside it.
fn rule_g006(
    file: &str,
    toks: &[Token],
    comments: &[Comment],
    in_test: &dyn Fn(usize) -> bool,
    out: &mut Vec<Finding>,
) {
    for c in comments {
        if !c.text.contains("graphrep: hot-path") || in_test(c.line) {
            continue;
        }
        // The marked function: first `fn` token at or after the marker.
        let Some(fn_idx) = toks
            .iter()
            .position(|t| t.kind == TokenKind::Ident && t.text == "fn" && t.line >= c.end_line)
        else {
            continue;
        };
        // Scan to the body's opening brace; a `;` first means a body-less
        // declaration (trait method, extern) — nothing to check.
        let mut k = fn_idx + 1;
        while k < toks.len() && !is_punct(&toks[k], '{') && !is_punct(&toks[k], ';') {
            k += 1;
        }
        if k >= toks.len() || is_punct(&toks[k], ';') {
            continue;
        }
        let body_start = k;
        let mut depth = 0usize;
        while k < toks.len() {
            match toks[k].kind {
                TokenKind::Punct('{') => depth += 1,
                TokenKind::Punct('}') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        let body = &toks[body_start..k.min(toks.len())];
        for (i, t) in body.iter().enumerate() {
            if t.kind != TokenKind::Ident {
                continue;
            }
            let alloc = match t.text.as_str() {
                // `Vec::new(` — a fresh vector where a scratch buffer belongs.
                "Vec" => {
                    body.get(i + 1).is_some_and(|n| is_punct(n, ':'))
                        && body.get(i + 2).is_some_and(|n| is_punct(n, ':'))
                        && body.get(i + 3).is_some_and(|n| n.text == "new")
                }
                // `.collect(` / `.collect::<…>(` — an allocating adaptor.
                "collect" => i > 0 && is_punct(&body[i - 1], '.'),
                _ => false,
            };
            if alloc {
                out.push(Finding {
                    rule: "G006",
                    file: file.to_string(),
                    line: t.line,
                    message: format!(
                        "`{}` inside a `graphrep: hot-path` function: reuse a scratch buffer",
                        if t.text == "Vec" {
                            "Vec::new"
                        } else {
                            ".collect"
                        }
                    ),
                });
            }
        }
    }
}

/// G007: no `std::net` or `std::thread::sleep` outside serve/cli.
///
/// Network I/O lives in `crates/serve` (fronted by `crates/cli`); blocking
/// sleeps are a serving-layer shutdown-poll idiom. Anywhere else, a socket
/// or a sleep is almost always a test-harness leftover or a latency bug in
/// disguise. Matched token shapes: `std :: net` (imports and fully
/// qualified paths alike) and `thread :: sleep` (which also covers
/// `std::thread::sleep` call sites and `use std::thread::sleep`).
fn rule_g007(file: &str, toks: &[Token], in_test: &dyn Fn(usize) -> bool, out: &mut Vec<Finding>) {
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident || in_test(t.line) {
            continue;
        }
        let path_next = |name: &str| {
            toks.get(i + 1).is_some_and(|n| is_punct(n, ':'))
                && toks.get(i + 2).is_some_and(|n| is_punct(n, ':'))
                && toks.get(i + 3).is_some_and(|n| n.text == name)
        };
        let flagged = match t.text.as_str() {
            "std" => path_next("net").then_some("std::net"),
            "thread" => path_next("sleep").then_some("std::thread::sleep"),
            _ => None,
        };
        if let Some(what) = flagged {
            out.push(Finding {
                rule: "G007",
                file: file.to_string(),
                line: t.line,
                message: format!(
                    "`{what}` outside crates/serve and crates/cli: sockets and blocking \
                     sleeps belong in the serving layer"
                ),
            });
        }
    }
}

/// G010: no `serde_json` outside the persistence seam in core/metric.
///
/// The index data plane (vantage columns, tree, π̂ ladders) is serialized by
/// exactly one module per format — `crates/core/src/persist.rs` — so the
/// rest of `core` and all of `metric` must not name `serde_json`. Anything
/// else couples the hot path to one on-disk representation and silently
/// breaks the binary/JSON byte-identity contract. Matched shape: the bare
/// `serde_json` ident (imports, qualified paths, and `as` aliases alike).
fn rule_g010(file: &str, toks: &[Token], in_test: &dyn Fn(usize) -> bool, out: &mut Vec<Finding>) {
    for t in toks {
        if t.kind == TokenKind::Ident && t.text == "serde_json" && !in_test(t.line) {
            out.push(Finding {
                rule: "G010",
                file: file.to_string(),
                line: t.line,
                message: "`serde_json` outside persist.rs: keep format-specific code behind the \
                          persistence seam"
                    .to_string(),
            });
        }
    }
}

/// G011: the shard coordinator never does distance work itself.
///
/// The scatter-gather design (DESIGN.md §14) keeps every GED computation
/// shard-side, behind `ShardState` methods — that is what makes per-shard
/// pruning measurable and a future remote shard transport possible. So
/// `crates/shard/src/coordinator.rs` must not name the engine or oracle
/// types (`GedEngine`, `DistanceOracle`) nor invoke their verification
/// entry points as methods (`.distance(…)`, `.within(…)`,
/// `.within_verdict(…)`, `.distance_within(…)`, or profiled variants).
/// Wrapper methods with other names (`center_distance`, `home_members`)
/// are the sanctioned surface.
fn rule_g011(file: &str, toks: &[Token], in_test: &dyn Fn(usize) -> bool, out: &mut Vec<Finding>) {
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident || in_test(t.line) {
            continue;
        }
        let flagged = if G011_TYPES.iter().any(|ty| t.text == *ty) {
            Some(format!(
                "`{}` in the shard coordinator: distance state lives shard-side",
                t.text
            ))
        } else if G011_METHODS.iter().any(|m| t.text == *m)
            && i > 0
            && is_punct(&toks[i - 1], '.')
            && toks.get(i + 1).is_some_and(|n| is_punct(n, '('))
        {
            Some(format!(
                "`.{}(…)` in the shard coordinator: route verification through \
                 shard-side methods instead",
                t.text
            ))
        } else {
            None
        };
        if let Some(message) = flagged {
            out.push(Finding {
                rule: "G011",
                file: file.to_string(),
                line: t.line,
                message,
            });
        }
    }
}

fn is_punct(t: &Token, c: char) -> bool {
    t.kind == TokenKind::Punct(c)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core_scope() -> Scope {
        Scope {
            crate_name: "core".into(),
            is_test_file: false,
        }
    }

    fn rules_of(src: &str) -> Vec<&'static str> {
        let (f, _) = lint_source("t.rs", src, &core_scope());
        f.into_iter().map(|f| f.rule).collect()
    }

    #[test]
    fn g001_flags_unwrap_and_panic() {
        assert_eq!(rules_of("fn f() { x.unwrap(); }"), vec!["G001"]);
        assert_eq!(rules_of("fn f() { panic!(\"no\"); }"), vec!["G001"]);
        assert_eq!(rules_of("fn f() { x.unwrap_or(0); }"), Vec::<&str>::new());
    }

    #[test]
    fn g001_exempt_in_cfg_test_module() {
        let src = "#[cfg(test)]\nmod tests {\n fn f() { x.unwrap(); }\n}\n";
        assert_eq!(rules_of(src), Vec::<&str>::new());
    }

    #[test]
    fn g002_requires_comment() {
        assert_eq!(
            rules_of("fn f() { c.load(Ordering::Relaxed); }"),
            vec!["G002"]
        );
        assert_eq!(
            rules_of("fn f() { c.load(Ordering::Relaxed); // counters are independent\n }"),
            Vec::<&str>::new()
        );
        // std::cmp::Ordering variants are not atomic orderings.
        assert_eq!(
            rules_of("fn f() -> Ordering { Ordering::Less }"),
            Vec::<&str>::new()
        );
    }

    #[test]
    fn g002_justification_carries_down_contiguous_runs() {
        // One comment above the first access covers the consecutive lines.
        let run = "fn f() {\n\
                   // counters are independent monotonic tallies\n\
                   a.fetch_add(1, Ordering::Relaxed);\n\
                   b.fetch_add(1, Ordering::Relaxed);\n\
                   c.load(Ordering::Relaxed);\n\
                   }";
        assert_eq!(rules_of(run), Vec::<&str>::new());
        // A non-atomic line breaks the run: the access after the gap needs
        // its own comment again.
        let gap = "fn f() {\n\
                   // counters are independent\n\
                   a.fetch_add(1, Ordering::Relaxed);\n\
                   other_work();\n\
                   b.load(Ordering::Relaxed);\n\
                   }";
        assert_eq!(rules_of(gap), vec!["G002"]);
        // The carry starts at a justified line: an unjustified first access
        // does not launder the ones below it.
        let unjustified = "fn f() {\n\
                           a.fetch_add(1, Ordering::Relaxed);\n\
                           b.load(Ordering::Relaxed);\n\
                           }";
        assert_eq!(rules_of(unjustified), vec!["G002", "G002"]);
        // A comment mid-run covers the tail below it.
        let mid = "fn f() {\n\
                   a.fetch_add(1, Ordering::Relaxed);\n\
                   // publish after init (pairs with the Acquire load)\n\
                   b.store(1, Ordering::Release);\n\
                   c.load(Ordering::Acquire);\n\
                   }";
        assert_eq!(rules_of(mid), vec!["G002"]);
    }

    #[test]
    fn g004_flags_float_literal_compares() {
        assert_eq!(rules_of("fn f() { if x == 0.0 {} }"), vec!["G004"]);
        assert_eq!(rules_of("fn f() { if 1.5 != y {} }"), vec!["G004"]);
        assert_eq!(rules_of("fn f() { if x == -2.0 {} }"), vec!["G004"]);
        assert_eq!(rules_of("fn f() { if x <= 2.0 {} }"), Vec::<&str>::new());
        assert_eq!(rules_of("fn f() { if x == 0 {} }"), Vec::<&str>::new());
    }

    #[test]
    fn g005_requires_doc() {
        assert_eq!(rules_of("pub fn f() {}"), vec!["G005"]);
        assert_eq!(rules_of("/// Docs.\npub fn f() {}"), Vec::<&str>::new());
        assert_eq!(
            rules_of("/// Docs.\n#[inline]\npub fn f() {}"),
            Vec::<&str>::new()
        );
        assert_eq!(rules_of("pub(crate) fn f() {}"), Vec::<&str>::new());
    }

    #[test]
    fn g005_covers_pub_types() {
        assert_eq!(rules_of("pub struct S;"), vec!["G005"]);
        assert_eq!(rules_of("pub enum E { A }"), vec!["G005"]);
        assert_eq!(rules_of("pub trait T {}"), vec!["G005"]);
        assert_eq!(rules_of("pub unsafe trait T {}"), vec!["G005"]);
        assert_eq!(rules_of("/// Docs.\npub struct S;"), Vec::<&str>::new());
        assert_eq!(rules_of("/// Docs.\npub enum E { A }"), Vec::<&str>::new());
        assert_eq!(rules_of("/// Docs.\npub trait T {}"), Vec::<&str>::new());
        assert_eq!(rules_of("pub(crate) struct S;"), Vec::<&str>::new());
        // Private types and `pub use` re-exports are out of scope.
        assert_eq!(rules_of("struct S;"), Vec::<&str>::new());
        assert_eq!(rules_of("pub use other::Thing;"), Vec::<&str>::new());
    }

    #[test]
    fn allow_directive_suppresses_and_records() {
        let src = "fn f() {\n // graphrep: allow(G001, startup contract)\n x.unwrap();\n}\n";
        let (f, s) = lint_source("t.rs", src, &core_scope());
        assert!(f.is_empty());
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].rule, "G001");
        assert_eq!(s[0].reason, "startup contract");
    }

    #[test]
    fn g006_flags_allocation_in_hot_path_fn() {
        // Fixture: violating hot-path function (both alloc shapes).
        let src = "// graphrep: hot-path\nfn f(out: &mut Vec<u32>) {\n let v = Vec::new();\n let w: Vec<u32> = x.iter().collect();\n}\n";
        assert_eq!(rules_of(src), vec!["G006", "G006"]);
        // Turbofish collect is still an allocation.
        let src = "// graphrep: hot-path\nfn f() { let v = it.collect::<Vec<_>>(); }\n";
        assert_eq!(rules_of(src), vec!["G006"]);
    }

    #[test]
    fn g006_clean_hot_path_and_unmarked_fns_pass() {
        // Fixture: clean hot-path function reusing its scratch buffer.
        let src = "// graphrep: hot-path\nfn f(buf: &mut Vec<u32>) { buf.clear(); buf.push(1); }\n";
        assert_eq!(rules_of(src), Vec::<&str>::new());
        // Unmarked functions may allocate freely.
        let src = "fn g() { let v = Vec::new(); let w: Vec<_> = x.iter().collect(); }\n";
        assert_eq!(rules_of(src), Vec::<&str>::new());
        // The marker only covers the *next* fn, not later ones.
        let src = "// graphrep: hot-path\nfn f(b: &mut Vec<u32>) { b.clear(); }\nfn g() { let v = Vec::new(); }\n";
        assert_eq!(rules_of(src), Vec::<&str>::new());
    }

    #[test]
    fn g006_suppressed_by_allow_directive() {
        // Fixture: suppressed violation with a recorded reason.
        let src = "// graphrep: hot-path\nfn f() {\n // graphrep: allow(G006, one-time warm-up allocation before the search loop)\n let v = Vec::new();\n}\n";
        let (f, s) = lint_source("t.rs", src, &core_scope());
        assert!(f.is_empty());
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].rule, "G006");
        assert_eq!(
            s[0].reason,
            "one-time warm-up allocation before the search loop"
        );
    }

    #[test]
    fn g007_flags_sockets_and_sleeps_outside_serving_layer() {
        assert_eq!(
            rules_of("use std::net::TcpStream;\nfn f() {}"),
            vec!["G007"]
        );
        assert_eq!(rules_of("fn f() { std::thread::sleep(d); }"), vec!["G007"]);
        assert_eq!(
            rules_of("use std::thread;\nfn f() { thread::sleep(d); }"),
            vec!["G007"]
        );
        // Non-sleep thread APIs and unrelated std modules stay clean.
        assert_eq!(
            rules_of("fn f() { std::thread::spawn(|| {}); }"),
            Vec::<&str>::new()
        );
        assert_eq!(
            rules_of("use std::time::Duration;\nfn f() {}"),
            Vec::<&str>::new()
        );
    }

    #[test]
    fn g007_exempt_in_serve_and_cli_scopes() {
        let src = "use std::net::TcpListener;\nfn f() { std::thread::sleep(d); }";
        for name in ["serve", "cli"] {
            let scope = Scope {
                crate_name: name.into(),
                is_test_file: false,
            };
            let (f, _) = lint_source("t.rs", src, &scope);
            assert!(f.is_empty(), "{name}: {f:?}");
        }
    }

    #[test]
    fn g007_exempt_in_cfg_test_module() {
        let src = "#[cfg(test)]\nmod tests {\n fn f() { std::thread::sleep(d); }\n}\n";
        assert_eq!(rules_of(src), Vec::<&str>::new());
    }

    #[test]
    fn g010_flags_serde_json_outside_persist() {
        assert_eq!(rules_of("use serde_json::Value;\nfn f() {}"), vec!["G010"]);
        assert_eq!(
            rules_of("fn f() { let v = serde_json::to_string(&x); }"),
            vec!["G010"]
        );
        // The bare `serde` facade and other idents stay clean.
        assert_eq!(
            rules_of("use serde::Serialize;\nfn f() {}"),
            Vec::<&str>::new()
        );
    }

    #[test]
    fn g010_exempt_in_persist_and_tests_and_other_crates() {
        let src = "use serde_json::Value;\nfn f() {}";
        // The persistence seam itself is the one allowed home.
        let (f, _) = lint_source("crates/core/src/persist.rs", src, &core_scope());
        assert!(f.is_empty(), "{f:?}");
        // `#[cfg(test)]` modules may round-trip JSON freely.
        let test_src = "#[cfg(test)]\nmod tests {\n use serde_json::Value;\n}\n";
        assert_eq!(rules_of(test_src), Vec::<&str>::new());
        // Crates outside core/metric (bench, serve, …) are out of scope.
        for name in ["bench", "serve", "cli"] {
            let scope = Scope {
                crate_name: name.into(),
                is_test_file: false,
            };
            let (f, _) = lint_source("t.rs", src, &scope);
            assert!(f.is_empty(), "{name}: {f:?}");
        }
    }

    #[test]
    fn g010_suppressed_by_allow_directive() {
        let src = "// graphrep: allow(G010, one-off debug dump behind a feature gate)\nuse serde_json::Value;\nfn f() {}";
        let (f, s) = lint_source("t.rs", src, &core_scope());
        assert!(f.is_empty());
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].rule, "G010");
    }

    fn shard_coord(src: &str) -> Vec<&'static str> {
        let scope = Scope {
            crate_name: "shard".into(),
            is_test_file: false,
        };
        let (f, _) = lint_source("crates/shard/src/coordinator.rs", src, &scope);
        f.into_iter().map(|f| f.rule).collect()
    }

    #[test]
    fn g011_flags_distance_work_in_coordinator() {
        assert_eq!(
            shard_coord("use graphrep_ged::GedEngine;\nfn f() {}"),
            vec!["G011"]
        );
        assert_eq!(shard_coord("fn f(o: &DistanceOracle) {}"), vec!["G011"]);
        assert_eq!(
            shard_coord("fn f() { let d = oracle.distance(a, b); }"),
            vec!["G011"]
        );
        assert_eq!(
            shard_coord("fn f() { let v = o.within_verdict(a, b, t); }"),
            vec!["G011"]
        );
        assert_eq!(
            shard_coord("fn f() { o.distance_within(a, b, t); }"),
            vec!["G011"]
        );
    }

    #[test]
    fn g011_permits_wrappers_other_files_and_other_crates() {
        // The sanctioned shard-side surface has distinct method names.
        assert_eq!(
            shard_coord("fn f() { let d = snap.center_distance(&g); }"),
            Vec::<&str>::new()
        );
        assert_eq!(
            shard_coord("fn f() { let c = snap.engine_calls(); }"),
            Vec::<&str>::new()
        );
        // A bare `distance` ident that is not a method call is fine.
        assert_eq!(
            shard_coord("fn f() { let distance = 3; }"),
            Vec::<&str>::new()
        );
        // shard.rs is where the distance work belongs.
        let scope = Scope {
            crate_name: "shard".into(),
            is_test_file: false,
        };
        let (f, _) = lint_source(
            "crates/shard/src/shard.rs",
            "use graphrep_ged::GedEngine;\nfn f() {}",
            &scope,
        );
        assert!(f.is_empty(), "{f:?}");
        // A coordinator.rs in another crate is out of scope.
        let scope = Scope {
            crate_name: "serve".into(),
            is_test_file: false,
        };
        let (f, _) = lint_source(
            "crates/serve/src/coordinator.rs",
            "fn f(e: &GedEngine) {}",
            &scope,
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn g011_suppressed_by_allow_directive() {
        let src = "// graphrep: allow(G011, measurement-only probe behind a bench gate)\nfn f() { o.distance(a, b); }";
        let scope = Scope {
            crate_name: "shard".into(),
            is_test_file: false,
        };
        let (f, s) = lint_source("crates/shard/src/coordinator.rs", src, &scope);
        assert!(f.is_empty());
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].rule, "G011");
    }

    #[test]
    fn allow_without_reason_is_g000() {
        let src = "fn f() {\n // graphrep: allow(G001)\n x.unwrap();\n}\n";
        let (f, _) = lint_source("t.rs", src, &core_scope());
        let rules: Vec<_> = f.iter().map(|f| f.rule).collect();
        assert!(rules.contains(&"G000"));
        assert!(rules.contains(&"G001"));
    }
}
