//! `graphrep-check`: workspace-native static analysis for the NB-Index repo.
//!
//! Two subsystems share this crate:
//!
//! 1. A **lint driver** ([`lint_workspace`]) — a handwritten lexer plus seven
//!    lexical rules (G001–G007, see [`rules`]) enforcing project conventions
//!    that clippy cannot express, with an inline per-site allow-directive
//!    escape hatch (syntax in [`rules`]) and a JSON report mode for CI.
//! 2. An **invariant-audit runner** (the `audit` subcommand in the binary)
//!    that shells out to `cargo test --features invariant-audit`, exercising
//!    the paper-derived runtime invariants threaded through `ged` and `core`
//!    via the `audit_invariant!` macro.
//!
//! The crate is deliberately dependency-free so the lint pass works even when
//! the rest of the workspace does not compile, and so the `invariant-audit`
//! feature never leaks into default workspace builds through unification.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod lexer;
pub mod lockgraph;
pub mod parser;
pub mod report;
pub mod rules;

use report::Report;
use rules::{lint_source, Scope};
use std::path::{Path, PathBuf};

/// Directories (workspace-relative prefixes) the walker never descends into.
const SKIP_PREFIXES: &[&str] = &["vendor", "target", ".git", "crates/check/tests/fixtures"];

/// Derives the lint scope for a workspace-relative path.
///
/// Returns `None` for files outside lint jurisdiction (vendored deps, build
/// output, lint fixtures).
pub fn scope_for(rel_path: &str) -> Option<Scope> {
    let norm = rel_path.replace('\\', "/");
    for p in SKIP_PREFIXES {
        if norm == *p || norm.starts_with(&format!("{p}/")) {
            return None;
        }
    }
    let crate_name = match norm.strip_prefix("crates/") {
        Some(rest) => rest.split('/').next().unwrap_or("root").to_string(),
        None => "root".to_string(),
    };
    // `src/**/tests.rs` is cargo's out-of-line unit-test module convention
    // (`#[cfg(test)] mod tests;` in the parent): compiled only under test,
    // so it gets the same full skip as `tests/` directories.
    let is_test_file = norm
        .split('/')
        .any(|seg| matches!(seg, "tests" | "benches" | "examples"))
        || norm.ends_with("/tests.rs");
    Some(Scope {
        crate_name,
        is_test_file,
    })
}

/// Recursively collects every lintable `.rs` file under `root`, sorted.
pub fn collect_sources(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let rel = match path.strip_prefix(root) {
                Ok(r) => r.to_string_lossy().replace('\\', "/"),
                Err(_) => continue,
            };
            if SKIP_PREFIXES
                .iter()
                .any(|p| rel == *p || rel.starts_with(&format!("{p}/")))
            {
                continue;
            }
            if path.is_dir() {
                stack.push(path);
            } else if rel.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Runs the full lint pass over the workspace rooted at `root`: the lexical
/// rules (G001–G007) per file, then the flow-aware lock analysis (G008/G009)
/// across all non-test files, with allow-directives applied to both.
pub fn lint_workspace(root: &Path) -> std::io::Result<Report> {
    lint_workspace_with(root, &lockgraph::SinkConfig::default())
}

/// [`lint_workspace`] with a caller-supplied blocking-sink configuration.
pub fn lint_workspace_with(root: &Path, sinks: &lockgraph::SinkConfig) -> std::io::Result<Report> {
    let mut report = Report::default();
    let mut lock_inputs: Vec<lockgraph::SourceFile> = Vec::new();
    for path in collect_sources(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let Some(scope) = scope_for(&rel) else {
            continue;
        };
        if scope.is_test_file {
            continue;
        }
        let src = std::fs::read_to_string(&path)?;
        let (findings, suppressed) = lint_source(&rel, &src, &scope);
        report.checked_files += 1;
        report.findings.extend(findings);
        report.suppressed.extend(suppressed);
        lock_inputs.push(lockgraph::SourceFile {
            rel,
            crate_name: scope.crate_name,
            src,
        });
    }
    let analysis = lockgraph::analyze(&lock_inputs, sinks);
    // Group the lock findings per file and run them through that file's
    // allow-directives, so G008/G009 use the same escape hatch as G001–G007.
    let mut by_file: std::collections::BTreeMap<String, Vec<rules::Finding>> =
        std::collections::BTreeMap::new();
    for f in analysis.findings {
        by_file.entry(f.file.clone()).or_default().push(f);
    }
    for (file, findings) in by_file {
        let src = lock_inputs
            .iter()
            .find(|s| s.rel == file)
            .map(|s| s.src.clone())
            .unwrap_or_default();
        let (kept, suppressed) = rules::apply_allows(&file, &src, findings);
        report.findings.extend(kept);
        report.suppressed.extend(suppressed);
    }
    report.lock_graph = Some(analysis.graph);
    report.normalize();
    Ok(report)
}

/// The workspace root, resolved from this crate's manifest location.
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_for_library_and_root_paths() {
        let s = scope_for("crates/core/src/session.rs").unwrap();
        assert_eq!(s.crate_name, "core");
        assert!(!s.is_test_file);
        let s = scope_for("src/main.rs").unwrap();
        assert_eq!(s.crate_name, "root");
        let s = scope_for("tests/e2e.rs").unwrap();
        assert!(s.is_test_file);
        let s = scope_for("crates/ged/tests/parallel.rs").unwrap();
        assert!(s.is_test_file);
        // Out-of-line unit-test modules under src/ are test files too…
        let s = scope_for("crates/serve/src/reactor/tests.rs").unwrap();
        assert!(s.is_test_file);
        // …but only the exact `tests.rs` filename qualifies.
        let s = scope_for("crates/serve/src/reactor/conn.rs").unwrap();
        assert!(!s.is_test_file);
    }

    #[test]
    fn scope_for_skips_vendor_and_fixtures() {
        assert!(scope_for("vendor/rand/src/lib.rs").is_none());
        assert!(scope_for("target/debug/build/x.rs").is_none());
        assert!(scope_for("crates/check/tests/fixtures/g001_violating.rs").is_none());
    }
}
