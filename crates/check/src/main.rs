//! CLI entry point: `cargo run -p graphrep-check --release -- lint|audit|all`.

#![deny(unsafe_code)]

use graphrep_check::{lint_workspace, workspace_root};
use std::process::{Command, ExitCode};

const USAGE: &str = "usage: graphrep-check <lint|audit|all> [--json]

  lint    run the G001-G007 lint rules over all workspace sources
  audit   run the invariant-audit test suite (cargo test --features invariant-audit)
  all     lint, then audit
  --json  (lint) emit the machine-readable JSON report instead of text
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let cmd = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str);
    match cmd {
        Some("lint") => run_lint(json),
        Some("audit") => run_audit(),
        Some("all") => {
            let lint = run_lint(json);
            let audit = run_audit();
            if lint == ExitCode::SUCCESS && audit == ExitCode::SUCCESS {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        _ => {
            eprint!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run_lint(json: bool) -> ExitCode {
    let root = workspace_root();
    match lint_workspace(&root) {
        Ok(report) => {
            if json {
                print!("{}", report.to_json());
            } else {
                print!("{}", report.to_text());
            }
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("lint failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_audit() -> ExitCode {
    let root = workspace_root();
    eprintln!("running invariant-audit suite (cargo test --features invariant-audit)...");
    let status = Command::new(env!("CARGO"))
        .args([
            "test",
            "-p",
            "graphrep",
            "--features",
            "invariant-audit",
            "--test",
            "invariant_audit",
            "-q",
        ])
        .current_dir(&root)
        .status();
    match status {
        Ok(s) if s.success() => {
            eprintln!("invariant-audit suite passed");
            ExitCode::SUCCESS
        }
        Ok(s) => {
            eprintln!("invariant-audit suite failed: {s}");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("failed to launch cargo: {e}");
            ExitCode::FAILURE
        }
    }
}
