//! CLI entry point: `cargo run -p graphrep-check --release -- lint|audit|all`.

#![deny(unsafe_code)]

use graphrep_check::lockgraph::SinkConfig;
use graphrep_check::report::Report;
use graphrep_check::{lint_workspace_with, workspace_root};
use std::path::Path;
use std::process::{Command, ExitCode};

const USAGE: &str =
    "usage: graphrep-check <lint|audit|all> [--json] [--sink NAME]... [--budget FILE]

  lint           run the G001-G010 lint rules over all workspace sources
  audit          run the invariant-audit test suite (cargo test --features invariant-audit)
  all            lint, then audit
  --json         (lint) emit the machine-readable JSON report instead of text
  --sink NAME    (lint) treat NAME as an additional G008 blocking sink; repeatable
  --budget FILE  (lint) check the report against a flat JSON budget file with
                 integer keys g008_max, g009_max, g010_max, g011_max, nodes_min,
                 edges_exact
                 (see ci/lock_analysis.json); any breach fails the run
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let mut sinks: Vec<String> = Vec::new();
    let mut budget: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--sink" => match it.next() {
                Some(v) => sinks.push(v.clone()),
                None => {
                    eprintln!("--sink needs a function name");
                    return ExitCode::FAILURE;
                }
            },
            "--budget" => match it.next() {
                Some(v) => budget = Some(v.clone()),
                None => {
                    eprintln!("--budget needs a file path");
                    return ExitCode::FAILURE;
                }
            },
            _ => {}
        }
    }
    let cmd = args
        .iter()
        .enumerate()
        .find(|(i, a)| {
            !a.starts_with("--")
                && !matches!(
                    i.checked_sub(1).map(|p| args[p].as_str()),
                    Some("--sink") | Some("--budget")
                )
        })
        .map(|(_, a)| a.as_str());
    match cmd {
        Some("lint") => run_lint(json, &sinks, budget.as_deref()),
        Some("audit") => run_audit(),
        Some("all") => {
            let lint = run_lint(json, &sinks, budget.as_deref());
            let audit = run_audit();
            if lint == ExitCode::SUCCESS && audit == ExitCode::SUCCESS {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        _ => {
            eprint!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run_lint(json: bool, extra_sinks: &[String], budget: Option<&str>) -> ExitCode {
    let root = workspace_root();
    let mut cfg = SinkConfig::default();
    cfg.any_args.extend(extra_sinks.iter().cloned());
    match lint_workspace_with(&root, &cfg) {
        Ok(report) => {
            if json {
                print!("{}", report.to_json());
            } else {
                print!("{}", report.to_text());
            }
            let budget_ok = match budget {
                Some(path) => check_budget(&report, Path::new(path)),
                None => true,
            };
            if report.is_clean() && budget_ok {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("lint failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Checks the lint report against the pinned lock-analysis budget.
///
/// The budget file is a flat JSON object of integer fields, so the parser
/// below can stay a few lines of string splitting instead of a JSON library:
/// `g008_max` / `g009_max` / `g010_max` / `g011_max` cap the finding counts for those
/// rules,
/// `nodes_min` is the least number of lock sites the workspace sweep must
/// discover (a collapse here means the extractor silently lost coverage),
/// and `edges_exact` pins the acquisition-edge count so any new lock-order
/// edge shows up as an explicit budget update in review.
fn check_budget(report: &Report, path: &Path) -> bool {
    let raw = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("budget: cannot read {}: {e}", path.display());
            return false;
        }
    };
    let fields = match parse_flat_budget(&raw) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("budget: {}: {e}", path.display());
            return false;
        }
    };
    let get = |key: &str| fields.iter().find(|(k, _)| k == key).map(|&(_, v)| v);
    let mut ok = true;
    let count = |rule: &str| report.findings.iter().filter(|f| f.rule == rule).count();
    for (key, rule) in [
        ("g008_max", "G008"),
        ("g009_max", "G009"),
        ("g010_max", "G010"),
        ("g011_max", "G011"),
    ] {
        if let Some(max) = get(key) {
            let n = count(rule);
            if n > max {
                eprintln!("budget: {n} {rule} finding(s), budget allows {max}");
                ok = false;
            }
        }
    }
    let (nodes, edges) = match &report.lock_graph {
        Some(g) => (g.nodes.len(), g.edges.len()),
        None => (0, 0),
    };
    if let Some(min) = get("nodes_min") {
        if nodes < min {
            eprintln!("budget: lock graph has {nodes} site(s), budget requires at least {min}");
            ok = false;
        }
    }
    if let Some(exact) = get("edges_exact") {
        if edges != exact {
            eprintln!(
                "budget: lock graph has {edges} edge(s), budget pins exactly {exact} \
                 (new lock-order edges must be reviewed and the budget updated)"
            );
            ok = false;
        }
    }
    if ok {
        eprintln!(
            "budget: ok ({} site(s), {} edge(s), {} G008, {} G009, {} G010, {} G011)",
            nodes,
            edges,
            count("G008"),
            count("G009"),
            count("G010"),
            count("G011")
        );
    }
    ok
}

/// Parses a flat `{"key": 123, ...}` object into (key, value) pairs.
///
/// Only the shape the budget file uses is accepted — string keys, unsigned
/// integer values, no nesting — anything else is a hard error so a malformed
/// budget cannot silently pass.
fn parse_flat_budget(raw: &str) -> Result<Vec<(String, usize)>, String> {
    let body = raw.trim();
    let body = body
        .strip_prefix('{')
        .and_then(|b| b.strip_suffix('}'))
        .ok_or("expected a single flat JSON object")?;
    let mut out = Vec::new();
    for part in body.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (key, val) = part
            .split_once(':')
            .ok_or_else(|| format!("expected \"key\": value, got `{part}`"))?;
        let key = key
            .trim()
            .strip_prefix('"')
            .and_then(|k| k.strip_suffix('"'))
            .ok_or_else(|| format!("key is not a JSON string: `{part}`"))?;
        let val: usize = val
            .trim()
            .parse()
            .map_err(|_| format!("value for `{key}` is not an unsigned integer"))?;
        out.push((key.to_string(), val));
    }
    Ok(out)
}

fn run_audit() -> ExitCode {
    let root = workspace_root();
    eprintln!("running invariant-audit suite (cargo test --features invariant-audit)...");
    let status = Command::new(env!("CARGO"))
        .args([
            "test",
            "-p",
            "graphrep",
            "--features",
            "invariant-audit",
            "--test",
            "invariant_audit",
            "-q",
        ])
        .current_dir(&root)
        .status();
    match status {
        Ok(s) if s.success() => {
            eprintln!("invariant-audit suite passed");
            ExitCode::SUCCESS
        }
        Ok(s) => {
            eprintln!("invariant-audit suite failed: {s}");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("failed to launch cargo: {e}");
            ExitCode::FAILURE
        }
    }
}
