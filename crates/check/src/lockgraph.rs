//! Flow-aware lock analysis: rules **G008** and **G009**.
//!
//! Built on [`crate::parser`], this module extracts a workspace-wide
//! **lock-acquisition graph** — nodes are named lock sites (struct fields
//! whose type is `Mutex`/`RwLock`/`TrackedMutex`/`TrackedRwLock`), edges are
//! "site B acquired while a guard for site A is live" — and checks two
//! semantic rules on top of it:
//!
//! * **G008** — no lock guard may be live across a *blocking sink*: a GED
//!   engine entry (`distance`, `within`, …), socket I/O (`read_frame`,
//!   `write_all`, …), or `std::thread` spawn/join/sleep. The sink list is
//!   configurable ([`SinkConfig`], extendable via `--sink`).
//! * **G009** — the acquisition graph must be acyclic; each strongly
//!   connected component with two or more sites is reported as a potential
//!   deadlock, with its witness edges.
//!
//! ## Model
//!
//! Guard lifetimes follow Rust 2021 temporary scoping, conservatively:
//! a bound guard (`let g = x.lock();`) lives to the end of its enclosing
//! block or an explicit `drop(g)`; an unbound (temporary) guard lives to the
//! end of its statement *including* attached blocks (so an `if let` scrutinee
//! guard is held over the whole `if let`, and all guards in one struct
//! literal overlap). Calls are resolved interprocedurally via fixpoint
//! summaries (transitive acquisitions and reachable sinks per function), but
//! only when the callee is certain: a `self` method, a receiver with a known
//! field/local type, a globally unique method name, or a free function.
//! Ambiguous method names on unknown receivers are skipped — an unresolved
//! call can only miss edges, never invent a false cycle. Closures passed to
//! `spawn` run on another thread, so blocks following a `spawn(` in the same
//! statement are replayed with an empty held set (their *internal* edges are
//! still recorded). Same-site reentrant acquisition is out of scope (the
//! graph records order between *distinct* sites; self-edges are dropped).
//!
//! Site names are mechanical — `{crate}.{file-stem}.{Struct}.{field}` — and
//! the `lock-audit` runtime wrappers use the same strings, so the dynamic
//! witness's observed edges are directly comparable to this graph.

use crate::lexer::{lex, Lexed, Token, TokenKind};
use crate::parser::{parse, Ast, Block, FnDef, Item, ItemKind, Stmt, StmtKind, StmtPart};
use crate::rules::{test_regions, Finding};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// The blocking-sink configuration for G008.
#[derive(Debug, Clone)]
pub struct SinkConfig {
    /// Function/method names that block regardless of arguments.
    pub any_args: Vec<String>,
    /// Names that only count with an empty argument list (`join()` — keeps
    /// `Path::join("x")` and `Vec::join(", ")` out).
    pub no_args: Vec<String>,
}

impl Default for SinkConfig {
    fn default() -> Self {
        let any = [
            // GED engine entries (oracle and raw engine).
            "distance",
            "within",
            "within_verdict",
            "distance_within",
            "distance_profiled",
            "distance_within_profiled",
            // Socket / stream I/O.
            "connect",
            "accept",
            "read_frame",
            "write_frame",
            "read_exact",
            "write_all",
            // Thread control.
            "spawn",
            "sleep",
        ];
        SinkConfig {
            any_args: any.iter().map(|s| s.to_string()).collect(),
            no_args: vec!["join".to_string()],
        }
    }
}

/// One named lock site (graph node).
#[derive(Debug, Clone)]
pub struct LockNode {
    /// Stable site name: `{crate}.{file-stem}.{Struct}.{field}`.
    pub name: String,
    /// File declaring the field.
    pub file: String,
    /// 1-based line of the field declaration.
    pub line: usize,
}

/// One acquired-while-holding edge (first witness location).
#[derive(Debug, Clone)]
pub struct LockEdge {
    /// Site already held.
    pub from: String,
    /// Site acquired while `from` was held.
    pub to: String,
    /// File of the witnessing acquisition.
    pub file: String,
    /// 1-based line of the witnessing acquisition.
    pub line: usize,
}

/// The extracted workspace lock-acquisition graph.
#[derive(Debug, Clone, Default)]
pub struct LockGraph {
    /// All sites, sorted by name.
    pub nodes: Vec<LockNode>,
    /// All edges, sorted by (from, to).
    pub edges: Vec<LockEdge>,
}

/// Result of the workspace lock analysis.
#[derive(Debug, Default)]
pub struct LockAnalysis {
    /// The acquisition graph.
    pub graph: LockGraph,
    /// G008/G009 findings (allow-directives are applied by the caller).
    pub findings: Vec<Finding>,
}

/// One input file for [`analyze`].
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path.
    pub rel: String,
    /// Short crate name (used as the site-name prefix).
    pub crate_name: String,
    /// Source text.
    pub src: String,
}

/// Type names treated as lock wrappers when they appear in a field type.
const LOCK_TYPES: &[&str] = &["Mutex", "RwLock", "TrackedMutex", "TrackedRwLock"];
/// Wrapper idents excluded from a lock field's *content* type candidates.
const NON_CONTENT: &[&str] = &[
    "Mutex",
    "RwLock",
    "TrackedMutex",
    "TrackedRwLock",
    "Arc",
    "Box",
    "Option",
    "dyn",
    "mut",
];
/// Expression keywords that look like calls (`return (x)`) but are not.
const EXPR_KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "move", "in", "as", "break",
];

struct Site {
    name: String,
    file: String,
    line: usize,
    /// Idents of the guarded content type (for typing bound guards).
    content: Vec<String>,
}

struct FnInfo<'a> {
    file: usize,
    self_ty: Option<String>,
    name: String,
    def: &'a FnDef,
}

#[derive(Default)]
struct Tables<'a> {
    sites: Vec<Site>,
    /// (struct, field) → site index.
    by_struct_field: HashMap<(String, String), usize>,
    /// field → site indices (for the unique-field fallback).
    by_field: HashMap<String, Vec<usize>>,
    /// struct → [(field, type idents)] for receiver-chain typing.
    struct_fields: HashMap<String, Vec<(String, Vec<String>)>>,
    fns: Vec<FnInfo<'a>>,
    /// (self type, method) → fn index.
    method: HashMap<(String, String), usize>,
    /// method name → fn indices (for the unique-name fallback).
    by_name: HashMap<String, Vec<usize>>,
    /// free function name → fn index.
    free: HashMap<String, usize>,
}

#[derive(Default, Clone, PartialEq)]
struct Summary {
    /// Sites acquired in this fn or any resolved transitive callee.
    acquires: BTreeSet<usize>,
    /// Sink names reachable from this fn.
    sinks: BTreeSet<String>,
    /// Site whose guard this fn returns (tail acquisition), if any.
    guard_ret: Option<usize>,
    /// Resolved callees.
    calls: BTreeSet<usize>,
}

/// Runs the full lock analysis over the given files.
///
/// Files belonging to the `lockaudit` crate (the instrumentation layer
/// itself) are excluded — its `inner` fields are the mechanism, not subject
/// code. Items inside `#[cfg(test)]` regions are skipped, mirroring the
/// lexical rules.
pub fn analyze(files: &[SourceFile], cfg: &SinkConfig) -> LockAnalysis {
    let parsed: Vec<(usize, Lexed, Ast)> = files
        .iter()
        .enumerate()
        .filter(|(_, f)| f.crate_name != "lockaudit")
        .map(|(i, f)| {
            let lexed = lex(&f.src);
            let ast = parse(&lexed);
            (i, lexed, ast)
        })
        .collect();

    let mut tables = Tables::default();
    for (pi, (fi, lexed, ast)) in parsed.iter().enumerate() {
        let regions = test_regions(&lexed.tokens);
        let in_test = |line: usize| regions.iter().any(|&(a, b)| a <= line && line <= b);
        let f = &files[*fi];
        let stem = f
            .rel
            .rsplit('/')
            .next()
            .unwrap_or(&f.rel)
            .trim_end_matches(".rs")
            .to_string();
        collect_items(
            &ast.items,
            &lexed.tokens,
            &in_test,
            pi,
            &f.crate_name,
            &stem,
            &f.rel,
            &mut tables,
        );
    }

    // Interprocedural summaries, to fixpoint. Two walk rounds: the second
    // re-resolves receiver chains through guard bindings discovered via
    // `guard_ret` in the first (e.g. `let st = self.read(); st.index.f()`).
    let mut summaries: Vec<Summary> = vec![Summary::default(); tables.fns.len()];
    for _round in 0..2 {
        let mut direct: Vec<Summary> = Vec::with_capacity(tables.fns.len());
        for id in 0..tables.fns.len() {
            let mut scratch = Output::default();
            direct.push(walk_fn(
                id,
                &tables,
                &parsed,
                files,
                &summaries,
                cfg,
                &mut scratch,
            ));
        }
        summaries = fixpoint(direct);
    }

    // Final pass: emit edges and G008 findings with converged summaries.
    let mut out = Output::default();
    for id in 0..tables.fns.len() {
        let _ = walk_fn(id, &tables, &parsed, files, &summaries, cfg, &mut out);
    }

    let mut findings = out.findings;
    findings.extend(detect_cycles(&tables, &out.edges));

    let mut nodes: Vec<LockNode> = tables
        .sites
        .iter()
        .map(|s| LockNode {
            name: s.name.clone(),
            file: s.file.clone(),
            line: s.line,
        })
        .collect();
    nodes.sort_by(|a, b| a.name.cmp(&b.name));
    let mut edges: Vec<LockEdge> = out
        .edges
        .iter()
        .map(|(&(a, b), witness)| LockEdge {
            from: tables.sites[a].name.clone(),
            to: tables.sites[b].name.clone(),
            file: witness.0.clone(),
            line: witness.1,
        })
        .collect();
    edges.sort_by(|a, b| (a.from.as_str(), a.to.as_str()).cmp(&(b.from.as_str(), b.to.as_str())));
    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    findings.dedup_by(|a, b| {
        a.file == b.file && a.line == b.line && a.rule == b.rule && a.message == b.message
    });

    LockAnalysis {
        graph: LockGraph { nodes, edges },
        findings,
    }
}

/// Recursively collects lock sites, struct field tables, and functions.
#[allow(clippy::too_many_arguments)]
fn collect_items<'a>(
    items: &'a [Item],
    toks: &[Token],
    in_test: &dyn Fn(usize) -> bool,
    file_idx: usize,
    crate_name: &str,
    stem: &str,
    rel: &str,
    tables: &mut Tables<'a>,
) {
    for item in items {
        let line = toks.get(item.span.lo).map_or(0, |t| t.line);
        if in_test(line) {
            continue;
        }
        match &item.kind {
            ItemKind::Struct { name, fields } => {
                let mut field_tys = Vec::new();
                for fd in fields {
                    let idents: Vec<String> = fd
                        .ty
                        .split_whitespace()
                        .filter(|w| {
                            w.chars()
                                .next()
                                .is_some_and(|c| c.is_alphabetic() || c == '_')
                        })
                        .map(str::to_string)
                        .collect();
                    let is_lock = idents.iter().any(|w| LOCK_TYPES.contains(&w.as_str()));
                    if is_lock {
                        let content: Vec<String> = idents
                            .iter()
                            .filter(|w| !NON_CONTENT.contains(&w.as_str()))
                            .cloned()
                            .collect();
                        let fline = toks.get(fd.span.lo).map_or(line, |t| t.line);
                        let id = tables.sites.len();
                        tables
                            .by_struct_field
                            .insert((name.clone(), fd.name.clone()), id);
                        tables.by_field.entry(fd.name.clone()).or_default().push(id);
                        tables.sites.push(Site {
                            name: format!("{crate_name}.{stem}.{name}.{}", fd.name),
                            file: rel.to_string(),
                            line: fline,
                            content,
                        });
                    }
                    field_tys.push((fd.name.clone(), idents));
                }
                tables.struct_fields.insert(name.clone(), field_tys);
            }
            ItemKind::Impl { self_ty, fns, .. } => {
                for fd in fns {
                    let fline = toks.get(fd.span.lo).map_or(line, |t| t.line);
                    if in_test(fline) || fd.body.is_none() {
                        continue;
                    }
                    let id = tables.fns.len();
                    tables.fns.push(FnInfo {
                        file: file_idx,
                        self_ty: Some(self_ty.clone()),
                        name: fd.name.clone(),
                        def: fd,
                    });
                    tables.method.insert((self_ty.clone(), fd.name.clone()), id);
                    tables.by_name.entry(fd.name.clone()).or_default().push(id);
                }
            }
            ItemKind::Fn(fd) if fd.body.is_some() => {
                let id = tables.fns.len();
                tables.fns.push(FnInfo {
                    file: file_idx,
                    self_ty: None,
                    name: fd.name.clone(),
                    def: fd,
                });
                tables.free.insert(fd.name.clone(), id);
                tables.by_name.entry(fd.name.clone()).or_default().push(id);
            }
            ItemKind::Mod {
                items: Some(sub), ..
            } => {
                collect_items(sub, toks, in_test, file_idx, crate_name, stem, rel, tables);
            }
            _ => {}
        }
    }
}

fn fixpoint(direct: Vec<Summary>) -> Vec<Summary> {
    let mut s = direct;
    loop {
        let mut changed = false;
        for i in 0..s.len() {
            let callees: Vec<usize> = s[i].calls.iter().copied().collect();
            let mut acq = s[i].acquires.clone();
            let mut sinks = s[i].sinks.clone();
            for &c in &callees {
                acq.extend(s[c].acquires.iter().copied());
                sinks.extend(s[c].sinks.iter().cloned());
            }
            if acq != s[i].acquires || sinks != s[i].sinks {
                s[i].acquires = acq;
                s[i].sinks = sinks;
                changed = true;
            }
        }
        if !changed {
            return s;
        }
    }
}

#[derive(Default)]
struct Output {
    /// (from, to) → first witness (file, line).
    edges: BTreeMap<(usize, usize), (String, usize)>,
    findings: Vec<Finding>,
}

/// One scanned event inside a token run.
enum Ev {
    /// Acquisition of a site; `close` = token index just past the `()`.
    Acquire {
        site: usize,
        line: usize,
        close: usize,
    },
    /// A call: possibly resolved, possibly a named sink, possibly both.
    Call {
        f: Option<usize>,
        sink: Option<String>,
        name: String,
        line: usize,
        close: usize,
    },
    /// `drop(g)` / `mem::drop(g)` on a bound guard.
    DropG { name: String },
    /// A bare `spawn` ident — later blocks in this statement are new threads.
    Spawn,
}

/// Per-function walk: collects summary facts and (on every pass) emits edges
/// and G008 findings into `out`; summary rounds simply discard their output.
fn walk_fn(
    id: usize,
    tables: &Tables<'_>,
    parsed: &[(usize, Lexed, Ast)],
    files: &[SourceFile],
    summaries: &[Summary],
    cfg: &SinkConfig,
    out: &mut Output,
) -> Summary {
    let info = &tables.fns[id];
    let (file_idx, lexed, _) = &parsed[info.file];
    let rel = &files[*file_idx].rel;
    let toks = &lexed.tokens;
    let Some(body) = info.def.body.as_ref() else {
        return Summary::default();
    };

    let mut env: HashMap<String, Vec<String>> = HashMap::new();
    for (pname, pty) in &info.def.params {
        if pname == "self" || pname.is_empty() {
            continue;
        }
        let idents: Vec<String> = pty
            .split_whitespace()
            .filter(|w| {
                w.chars()
                    .next()
                    .is_some_and(|c| c.is_alphabetic() || c == '_')
            })
            .filter(|w| *w != "mut" && *w != "dyn" && *w != "impl")
            .map(str::to_string)
            .collect();
        env.insert(pname.clone(), idents);
    }

    let mut ctx = Ctx {
        tables,
        toks,
        rel,
        self_ty: info.self_ty.clone(),
        summaries,
        cfg,
        facts: Summary::default(),
        held: Vec::new(),
        fn_name: info.name.clone(),
    };
    let tail = walk_block(body, &mut ctx, &mut env, out);
    // Guard-returning fn: the body's tail event is a terminal acquisition or
    // a call to a guard-returning fn.
    ctx.facts.guard_ret = tail;
    ctx.facts
}

struct Ctx<'t, 'a> {
    tables: &'t Tables<'a>,
    toks: &'t [Token],
    rel: &'t str,
    self_ty: Option<String>,
    summaries: &'t [Summary],
    cfg: &'t SinkConfig,
    facts: Summary,
    /// Live guards: (site, Some(binding name) for bound, None for temp).
    held: Vec<(usize, Option<String>)>,
    fn_name: String,
}

/// Walks a block; returns the site whose guard the block's tail expression
/// yields, if any (used for guard-returning functions).
fn walk_block(
    block: &Block,
    ctx: &mut Ctx<'_, '_>,
    env: &mut HashMap<String, Vec<String>>,
    out: &mut Output,
) -> Option<usize> {
    let held_base = ctx.held.len();
    let saved_env = env.clone();
    let mut tail: Option<usize> = None;
    for (si, stmt) in block.stmts.iter().enumerate() {
        tail = walk_stmt(stmt, ctx, env, out);
        if si + 1 != block.stmts.len() {
            tail = None;
        }
    }
    // Bound guards die at block end; env entries from this block go away.
    ctx.held.truncate(held_base);
    *env = saved_env;
    tail
}

/// Walks one statement; returns the guard site its terminal event yields.
fn walk_stmt(
    stmt: &Stmt,
    ctx: &mut Ctx<'_, '_>,
    env: &mut HashMap<String, Vec<String>>,
    out: &mut Output,
) -> Option<usize> {
    if let StmtKind::Item(_) = stmt.kind {
        return None; // Nested items are analyzed as their own functions.
    }
    let temp_base = ctx.held.len();
    let mut spawned = false;
    // The statement's last acquire/call event: (token past its `()`, what it
    // yields — Ok(site) for a direct acquisition, Err(fn) for a call).
    let mut last_ev: Option<(usize, Result<usize, usize>)> = None;
    let mut last_run_end = stmt.span.lo;

    for part in &stmt.parts {
        match part {
            StmtPart::Tokens(lo, hi) => {
                last_run_end = *hi;
                for ev in scan_run(*lo, *hi, ctx, env) {
                    match ev {
                        Ev::Acquire { site, line, close } => {
                            record_acquire(site, line, ctx, out);
                            ctx.held.push((site, None));
                            last_ev = Some((close, Ok(site)));
                        }
                        Ev::Call {
                            f,
                            sink,
                            name,
                            line,
                            close,
                        } => {
                            if name == "spawn" {
                                spawned = true;
                            }
                            if let Some(sname) = &sink {
                                if !ctx.held.is_empty() {
                                    g008(ctx, out, line, sname, None);
                                }
                                ctx.facts.sinks.insert(sname.clone());
                            }
                            if let Some(fid) = f {
                                ctx.facts.calls.insert(fid);
                                let (acq, has_sinks): (Vec<usize>, bool) = {
                                    let sum = &ctx.summaries[fid];
                                    (
                                        sum.acquires.iter().copied().collect(),
                                        !sum.sinks.is_empty(),
                                    )
                                };
                                for s in acq {
                                    record_callee_acquire(s, line, ctx, out);
                                }
                                if sink.is_none() && has_sinks && !ctx.held.is_empty() {
                                    let via: Vec<String> =
                                        ctx.summaries[fid].sinks.iter().cloned().collect();
                                    let callee = ctx.tables.fns[fid].name.clone();
                                    g008(ctx, out, line, &via.join(", "), Some(&callee));
                                }
                                last_ev = Some((close, Err(fid)));
                            } else if sink.is_some() {
                                // A sink with no resolution still ends any
                                // pending "terminal acquisition" claim.
                                last_ev = None;
                            }
                        }
                        Ev::DropG { name } => {
                            if let Some(pos) = ctx
                                .held
                                .iter()
                                .rposition(|(_, n)| n.as_deref() == Some(name.as_str()))
                            {
                                ctx.held.remove(pos);
                            }
                        }
                        Ev::Spawn => spawned = true,
                    }
                }
            }
            StmtPart::Block(b) => {
                if spawned {
                    // New thread: replay with an empty held set, but still
                    // record the closure's internal edges and acquisitions.
                    let held = std::mem::take(&mut ctx.held);
                    let mut benv = env.clone();
                    walk_block(b, ctx, &mut benv, out);
                    ctx.held = held;
                } else {
                    walk_block(b, ctx, env, out);
                }
            }
        }
    }

    // Terminal-event check: the statement's last acquire/call event is
    // terminal when only `;`/`?` follow it in the final token run.
    let tail_site = match last_ev {
        Some((close, yielded)) => {
            let mut i = close;
            let mut terminal = true;
            while i < last_run_end {
                match &ctx.toks[i].kind {
                    TokenKind::Punct(';') | TokenKind::Punct('?') => i += 1,
                    _ => {
                        terminal = false;
                        break;
                    }
                }
            }
            if terminal {
                match yielded {
                    Ok(site) => Some(site),
                    Err(fid) => ctx.summaries[fid].guard_ret,
                }
            } else {
                None
            }
        }
        None => None,
    };

    // Release this statement's temporaries; promote the terminal one to a
    // bound guard when the statement is a `let g = …` binding.
    let bound_name = match &stmt.kind {
        StmtKind::Let(Some(n)) => Some(n.clone()),
        _ => None,
    };
    ctx.held.truncate(temp_base);
    match (&bound_name, tail_site) {
        (Some(name), Some(site)) => {
            ctx.held.push((site, Some(name.clone())));
            env.insert(name.clone(), ctx.tables.sites[site].content.clone());
        }
        (Some(name), None) => {
            // Non-guard let: record the binding's type idents for chains.
            if let Some(tys) = let_rhs_types(stmt, ctx, env, last_ev) {
                env.insert(name.clone(), tys);
            }
        }
        _ => {}
    }
    tail_site
}

/// Types for a `let` binding that is not a guard: the return type of a
/// terminal resolved call, or the type of a plain field-chain RHS.
fn let_rhs_types(
    stmt: &Stmt,
    ctx: &Ctx<'_, '_>,
    env: &HashMap<String, Vec<String>>,
    last_ev: Option<(usize, Result<usize, usize>)>,
) -> Option<Vec<String>> {
    if let Some((_, Err(fid))) = last_ev {
        let ret = &ctx.tables.fns[fid].def.ret;
        let mut idents: Vec<String> = ret
            .split_whitespace()
            .filter(|w| {
                w.chars()
                    .next()
                    .is_some_and(|c| c.is_alphabetic() || c == '_')
            })
            .filter(|w| !NON_CONTENT.contains(w) && *w != "impl" && *w != "Self")
            .map(str::to_string)
            .collect();
        if ret.split_whitespace().any(|w| w == "Self") {
            if let Some(st) = &ctx.tables.fns[fid].self_ty {
                idents.push(st.clone());
            }
        }
        return if idents.is_empty() {
            None
        } else {
            Some(idents)
        };
    }
    // Plain chain RHS: `let x = &self.f[i];` — type via the field table.
    let StmtPart::Tokens(lo, hi) = stmt.parts.first()? else {
        return None;
    };
    let mut i = *lo;
    while i < *hi && !matches!(ctx.toks[i].kind, TokenKind::Punct('=')) {
        i += 1;
    }
    i += 1;
    let mut chain = Vec::new();
    while i < *hi {
        match &ctx.toks[i].kind {
            TokenKind::Punct('&') | TokenKind::Punct('*') | TokenKind::Punct('.') => i += 1,
            TokenKind::Punct('[') => {
                let mut d = 0usize;
                while i < *hi {
                    match ctx.toks[i].kind {
                        TokenKind::Punct('[') => d += 1,
                        TokenKind::Punct(']') => {
                            d -= 1;
                            if d == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
                i += 1;
            }
            TokenKind::Ident if ctx.toks[i].text != "mut" => {
                chain.push(ctx.toks[i].text.clone());
                i += 1;
            }
            TokenKind::Punct(';') => break,
            _ => return None, // Not a plain chain.
        }
    }
    if chain.is_empty() {
        return None;
    }
    resolve_chain_types(&chain, ctx, env)
}

/// Resolves a member chain (`["self", "shards"]`) to the final element's
/// type idents via the struct-field tables.
fn resolve_chain_types(
    chain: &[String],
    ctx: &Ctx<'_, '_>,
    env: &HashMap<String, Vec<String>>,
) -> Option<Vec<String>> {
    let head = chain.first()?;
    let mut cands: Vec<String> = if head == "self" || head == "Self" {
        ctx.self_ty.clone().into_iter().collect()
    } else {
        env.get(head)?.clone()
    };
    for step in &chain[1..] {
        let mut next = Vec::new();
        for t in &cands {
            if let Some(fields) = ctx.tables.struct_fields.get(t) {
                if let Some((_, tys)) = fields.iter().find(|(f, _)| f == step) {
                    next.extend(tys.iter().cloned());
                }
            }
        }
        if next.is_empty() {
            return None;
        }
        cands = next;
    }
    Some(cands)
}

/// Records an acquisition: edges from everything held, plus summary facts.
fn record_acquire(site: usize, line: usize, ctx: &mut Ctx<'_, '_>, out: &mut Output) {
    ctx.facts.acquires.insert(site);
    for &(h, _) in &ctx.held {
        if h != site {
            out.edges
                .entry((h, site))
                .or_insert_with(|| (ctx.rel.to_string(), line));
        }
    }
}

/// Edges for a resolved call's transitive acquisitions (the callee acquires
/// `site` while everything currently held stays held).
fn record_callee_acquire(site: usize, line: usize, ctx: &mut Ctx<'_, '_>, out: &mut Output) {
    for &(h, _) in &ctx.held {
        if h != site {
            out.edges
                .entry((h, site))
                .or_insert_with(|| (ctx.rel.to_string(), line));
        }
    }
}

fn g008(ctx: &Ctx<'_, '_>, out: &mut Output, line: usize, sink: &str, via: Option<&str>) {
    let held: Vec<&str> = ctx
        .held
        .iter()
        .map(|(s, _)| ctx.tables.sites[*s].name.as_str())
        .collect();
    let msg = match via {
        Some(callee) => format!(
            "lock guard(s) [{}] held across call to `{}`, which reaches blocking call(s) `{}` (in `{}`)",
            held.join(", "),
            callee,
            sink,
            ctx.fn_name
        ),
        None => format!(
            "lock guard(s) [{}] held across blocking call `{}` (in `{}`)",
            held.join(", "),
            sink,
            ctx.fn_name
        ),
    };
    out.findings.push(Finding {
        rule: "G008",
        file: ctx.rel.to_string(),
        line,
        message: msg,
    });
}

/// Scans one flat token run for acquisition, call, drop, and spawn events.
fn scan_run(
    lo: usize,
    hi: usize,
    ctx: &Ctx<'_, '_>,
    env: &HashMap<String, Vec<String>>,
) -> Vec<Ev> {
    let toks = ctx.toks;
    let mut evs = Vec::new();
    let mut i = lo;
    while i < hi {
        let t = &toks[i];
        if t.kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        let name = t.text.as_str();
        let open = i + 1 < hi && matches!(toks[i + 1].kind, TokenKind::Punct('('));
        if !open {
            if name == "spawn" {
                evs.push(Ev::Spawn);
            }
            i += 1;
            continue;
        }
        if EXPR_KEYWORDS.contains(&name) {
            i += 1;
            continue;
        }
        let no_args = i + 2 < hi && matches!(toks[i + 2].kind, TokenKind::Punct(')'));
        let close = close_of(toks, i + 1, hi);
        let preceded_dot = i > lo && matches!(toks[i - 1].kind, TokenKind::Punct('.'));
        let preceded_path = i > lo + 1
            && matches!(toks[i - 1].kind, TokenKind::Punct(':'))
            && matches!(toks[i - 2].kind, TokenKind::Punct(':'));

        // drop(g) — releases a bound guard.
        if name == "drop"
            && i + 3 < hi
            && toks[i + 2].kind == TokenKind::Ident
            && matches!(toks[i + 3].kind, TokenKind::Punct(')'))
        {
            evs.push(Ev::DropG {
                name: toks[i + 2].text.clone(),
            });
            i = close;
            continue;
        }

        // Acquisition: `<chain>.lock()/.read()/.write()` with no args. When
        // the chain does not name a lock field (e.g. `self.read()` on the
        // registry), fall through to call resolution below.
        if preceded_dot && no_args && matches!(name, "lock" | "read" | "write") {
            if let Some(chain) = chain_before(toks, i, lo) {
                if let Some(site) = resolve_site(&chain, ctx, env) {
                    evs.push(Ev::Acquire {
                        site,
                        line: t.line,
                        close,
                    });
                    i = close;
                    continue;
                }
            }
        }

        // Sink check (any call shape).
        let is_sink = ctx.cfg.any_args.iter().any(|s| s == name)
            || (no_args && ctx.cfg.no_args.iter().any(|s| s == name));

        // Call resolution.
        let fid = if preceded_dot {
            match chain_before(toks, i, lo) {
                Some(chain) => resolve_method(&chain, name, ctx, env),
                None => unique_method(name, ctx),
            }
        } else if preceded_path {
            if i >= lo + 3 && toks[i - 3].kind == TokenKind::Ident {
                let ty = toks[i - 3].text.clone();
                let ty = if ty == "Self" {
                    ctx.self_ty.clone().unwrap_or(ty)
                } else {
                    ty
                };
                ctx.tables.method.get(&(ty, name.to_string())).copied()
            } else {
                None
            }
        } else {
            ctx.tables.free.get(name).copied()
        };

        if fid.is_some() || is_sink {
            evs.push(Ev::Call {
                f: fid,
                sink: if is_sink {
                    Some(name.to_string())
                } else {
                    None
                },
                name: name.to_string(),
                line: t.line,
                close,
            });
        }
        i += 1;
    }
    evs
}

/// Token index just past the `)` matching the `(` at `open` (clamped to hi).
fn close_of(toks: &[Token], open: usize, hi: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < hi {
        match toks[i].kind {
            TokenKind::Punct('(') => depth += 1,
            TokenKind::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    hi
}

/// Walks backwards from the method ident at `i` to extract the receiver
/// member chain: `self.shards[k].exact.read()` → `["self", "shards",
/// "exact"]`. Index expressions are skipped. Returns `None` when the chain
/// head is not a plain ident (e.g. `(expr).lock()` or `f().lock()`).
fn chain_before(toks: &[Token], i: usize, lo: usize) -> Option<Vec<String>> {
    let mut chain = Vec::new();
    let mut j = i.checked_sub(2)?; // Before the `.`.
    loop {
        // Skip a `[…]` index backwards.
        if matches!(toks[j].kind, TokenKind::Punct(']')) {
            let mut d = 0usize;
            loop {
                match toks[j].kind {
                    TokenKind::Punct(']') => d += 1,
                    TokenKind::Punct('[') => d -= 1,
                    _ => {}
                }
                if d == 0 {
                    break;
                }
                if j == lo {
                    return None;
                }
                j -= 1;
            }
            if j == lo {
                return None;
            }
            j -= 1;
        }
        if toks[j].kind != TokenKind::Ident {
            return None;
        }
        chain.push(toks[j].text.clone());
        if j < lo + 2 || !matches!(toks[j - 1].kind, TokenKind::Punct('.')) {
            break;
        }
        j -= 2;
        // A call-result receiver like `f().g.lock()` is not a member chain.
        if matches!(toks[j].kind, TokenKind::Punct(')')) {
            return None;
        }
        if toks[j].kind != TokenKind::Ident && !matches!(toks[j].kind, TokenKind::Punct(']')) {
            return None;
        }
    }
    chain.reverse();
    Some(chain)
}

/// Resolves an acquisition chain to a lock site.
fn resolve_site(
    chain: &[String],
    ctx: &Ctx<'_, '_>,
    env: &HashMap<String, Vec<String>>,
) -> Option<usize> {
    if chain.len() == 1 {
        // `x.lock()` on a local/param that *is* the lock: unique-field
        // fallback (e.g. the `conns` parameter threaded into accept_loop).
        let ids = ctx.tables.by_field.get(&chain[0])?;
        return if ids.len() == 1 { Some(ids[0]) } else { None };
    }
    let field = chain.last()?;
    let owner_chain = &chain[..chain.len() - 1];
    if let Some(tys) = resolve_chain_types(owner_chain, ctx, env) {
        let mut hits: Vec<usize> = tys
            .iter()
            .filter_map(|t| {
                ctx.tables
                    .by_struct_field
                    .get(&(t.clone(), field.clone()))
                    .copied()
            })
            .collect();
        hits.sort_unstable();
        hits.dedup();
        if hits.len() == 1 {
            return Some(hits[0]);
        }
    }
    let ids = ctx.tables.by_field.get(field)?;
    if ids.len() == 1 {
        Some(ids[0])
    } else {
        None
    }
}

/// Resolves a method call through the receiver chain, with the globally
/// unique-name fallback.
fn resolve_method(
    chain: &[String],
    name: &str,
    ctx: &Ctx<'_, '_>,
    env: &HashMap<String, Vec<String>>,
) -> Option<usize> {
    if let Some(tys) = resolve_chain_types(chain, ctx, env) {
        let mut hits: Vec<usize> = tys
            .iter()
            .filter_map(|t| {
                ctx.tables
                    .method
                    .get(&(t.clone(), name.to_string()))
                    .copied()
            })
            .collect();
        hits.sort_unstable();
        hits.dedup();
        if hits.len() == 1 {
            return Some(hits[0]);
        }
        if !hits.is_empty() {
            return None; // Genuinely ambiguous across candidate types.
        }
    }
    unique_method(name, ctx)
}

fn unique_method(name: &str, ctx: &Ctx<'_, '_>) -> Option<usize> {
    let ids = ctx.tables.by_name.get(name)?;
    if ids.len() == 1 {
        Some(ids[0])
    } else {
        None
    }
}

/// Kosaraju SCC over the site graph; every SCC with ≥ 2 sites is a G009
/// finding listing the cycle's sites and witness edges.
fn detect_cycles(
    tables: &Tables<'_>,
    edges: &BTreeMap<(usize, usize), (String, usize)>,
) -> Vec<Finding> {
    let n = tables.sites.len();
    let mut adj = vec![Vec::new(); n];
    let mut radj = vec![Vec::new(); n];
    for &(a, b) in edges.keys() {
        adj[a].push(b);
        radj[b].push(a);
    }
    // Pass 1: finish order.
    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    for start in 0..n {
        if seen[start] {
            continue;
        }
        let mut stack = vec![(start, 0usize)];
        seen[start] = true;
        while let Some(&mut (v, ref mut ei)) = stack.last_mut() {
            if *ei < adj[v].len() {
                let w = adj[v][*ei];
                *ei += 1;
                if !seen[w] {
                    seen[w] = true;
                    stack.push((w, 0));
                }
            } else {
                order.push(v);
                stack.pop();
            }
        }
    }
    // Pass 2: components on the transpose, reverse finish order.
    let mut comp = vec![usize::MAX; n];
    let mut ncomp = 0usize;
    for &start in order.iter().rev() {
        if comp[start] != usize::MAX {
            continue;
        }
        let mut stack = vec![start];
        comp[start] = ncomp;
        while let Some(v) = stack.pop() {
            for &w in &radj[v] {
                if comp[w] == usize::MAX {
                    comp[w] = ncomp;
                    stack.push(w);
                }
            }
        }
        ncomp += 1;
    }
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); ncomp];
    for v in 0..n {
        if comp[v] != usize::MAX {
            members[comp[v]].push(v);
        }
    }
    let mut findings = Vec::new();
    for m in members.iter().filter(|m| m.len() >= 2) {
        let names: Vec<&str> = m.iter().map(|&v| tables.sites[v].name.as_str()).collect();
        let mut witness: Vec<String> = Vec::new();
        let mut anchor: Option<(String, usize)> = None;
        for (&(a, b), (file, line)) in edges {
            if m.contains(&a) && m.contains(&b) {
                witness.push(format!(
                    "{} -> {} ({file}:{line})",
                    tables.sites[a].name, tables.sites[b].name
                ));
                if anchor.is_none() {
                    anchor = Some((file.clone(), *line));
                }
            }
        }
        let (file, line) = anchor.unwrap_or_else(|| {
            let s = &tables.sites[m[0]];
            (s.file.clone(), s.line)
        });
        findings.push(Finding {
            rule: "G009",
            file,
            line,
            message: format!(
                "potential deadlock: lock-order cycle among [{}]; edges: {}",
                names.join(", "),
                witness.join("; ")
            ),
        });
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> LockAnalysis {
        let files = vec![SourceFile {
            rel: "crates/demo/src/demo.rs".into(),
            crate_name: "demo".into(),
            src: src.into(),
        }];
        analyze(&files, &SinkConfig::default())
    }

    #[test]
    fn discovers_sites_and_edges() {
        let src = r#"
use std::sync::Mutex;
struct S { a: Mutex<u32>, b: Mutex<u32> }
impl S {
    fn ab(&self) {
        let ga = self.a.lock();
        let gb = self.b.lock();
        drop(gb);
        drop(ga);
    }
}
"#;
        let r = run(src);
        assert_eq!(r.graph.nodes.len(), 2);
        assert_eq!(r.graph.edges.len(), 1, "{:?}", r.graph.edges);
        assert_eq!(r.graph.edges[0].from, "demo.demo.S.a");
        assert_eq!(r.graph.edges[0].to, "demo.demo.S.b");
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn cycle_is_a_g009_finding() {
        let src = r#"
use std::sync::Mutex;
struct S { a: Mutex<u32>, b: Mutex<u32> }
impl S {
    fn ab(&self) { let ga = self.a.lock(); let _gb = self.b.lock(); }
    fn ba(&self) { let gb = self.b.lock(); let _ga = self.a.lock(); }
}
"#;
        let r = run(src);
        assert_eq!(r.graph.edges.len(), 2, "{:?}", r.graph.edges);
        let g009: Vec<_> = r.findings.iter().filter(|f| f.rule == "G009").collect();
        assert_eq!(g009.len(), 1, "{:?}", r.findings);
        assert!(g009[0].message.contains("demo.demo.S.a"));
        assert!(g009[0].message.contains("demo.demo.S.b"));
    }

    #[test]
    fn guard_across_sink_is_g008() {
        let src = r#"
use std::sync::Mutex;
struct S { a: Mutex<u32> }
impl S {
    fn bad(&self, x: &Engine) {
        let g = self.a.lock();
        x.distance(1, 2);
    }
    fn ok(&self, x: &Engine) {
        { let g = self.a.lock(); }
        x.distance(1, 2);
    }
}
"#;
        let r = run(src);
        let g008: Vec<_> = r.findings.iter().filter(|f| f.rule == "G008").collect();
        assert_eq!(g008.len(), 1, "{:?}", r.findings);
        assert!(g008[0].message.contains("demo.demo.S.a"));
        assert!(g008[0].message.contains("distance"));
    }

    #[test]
    fn interprocedural_sink_reaches_caller() {
        let src = r#"
use std::sync::Mutex;
struct S { a: Mutex<u32> }
fn engine_entry() { helper(); }
fn helper() { let e = Engine; e.distance(0, 1); }
impl S {
    fn bad(&self) {
        let g = self.a.lock();
        engine_entry();
    }
}
"#;
        let r = run(src);
        let g008: Vec<_> = r.findings.iter().filter(|f| f.rule == "G008").collect();
        assert_eq!(g008.len(), 1, "{:?}", r.findings);
        assert!(
            g008[0].message.contains("engine_entry"),
            "{}",
            g008[0].message
        );
    }

    #[test]
    fn temp_guard_dies_at_statement_end() {
        let src = r#"
use std::sync::Mutex;
struct S { a: Mutex<Vec<u32>>, b: Mutex<u32> }
impl S {
    fn ok(&self) {
        let n = self.a.lock().len();
        let g = self.b.lock();
    }
}
"#;
        let r = run(src);
        assert!(r.graph.edges.is_empty(), "{:?}", r.graph.edges);
    }

    #[test]
    fn if_let_scrutinee_guard_held_over_block() {
        let src = r#"
use std::sync::Mutex;
struct S { a: Mutex<u32>, b: Mutex<u32> }
impl S {
    fn e(&self) {
        if let Some(v) = self.a.lock().checked_add(1) {
            let g = self.b.lock();
        }
        let h = self.b.lock();
    }
}
"#;
        let r = run(src);
        assert_eq!(r.graph.edges.len(), 1, "{:?}", r.graph.edges);
        assert_eq!(r.graph.edges[0].from, "demo.demo.S.a");
        assert_eq!(r.graph.edges[0].to, "demo.demo.S.b");
    }

    #[test]
    fn guard_returning_fn_binds_at_caller() {
        let src = r#"
use std::sync::RwLock;
struct S { state: RwLock<Inner>, b: RwLock<u32> }
struct Inner { n: u32 }
impl S {
    fn read(&self) -> Guard<'_> { self.state.read() }
    fn uses(&self) {
        let st = self.read();
        let g = self.b.read();
    }
}
"#;
        let r = run(src);
        assert_eq!(r.graph.edges.len(), 1, "{:?}", r.graph.edges);
        assert_eq!(r.graph.edges[0].from, "demo.demo.S.state");
        assert_eq!(r.graph.edges[0].to, "demo.demo.S.b");
    }

    #[test]
    fn spawn_closure_runs_on_fresh_thread() {
        let src = r#"
use std::sync::Mutex;
struct S { a: Mutex<u32>, b: Mutex<u32> }
impl S {
    fn f(&self, s: Arc<S>) {
        let g = self.a.lock();
        thread::spawn(move || {
            let h = s.b.lock();
        });
    }
}
"#;
        let r = run(src);
        // Holding a across spawn is G008, but no a->b edge (other thread).
        assert!(r.graph.edges.is_empty(), "{:?}", r.graph.edges);
        assert_eq!(
            r.findings.iter().filter(|f| f.rule == "G008").count(),
            1,
            "{:?}",
            r.findings
        );
    }

    #[test]
    fn ambiguous_methods_are_skipped() {
        let src = r#"
use std::sync::Mutex;
struct A { a: Mutex<u32> }
struct B { b: Mutex<u32> }
impl A { fn get(&self) { let g = self.a.lock(); } }
impl B { fn get(&self) { let g = self.b.lock(); } }
fn caller(x: &Unknown) {
    x.get();
}
"#;
        let r = run(src);
        assert!(r.graph.edges.is_empty(), "{:?}", r.graph.edges);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn join_needs_empty_args() {
        let src = r#"
use std::sync::Mutex;
struct S { a: Mutex<u32> }
impl S {
    fn ok(&self, p: &Path) { let g = self.a.lock(); let q = p.join("x"); }
    fn bad(&self, h: Handle) { let g = self.a.lock(); let r = h.join(); }
}
"#;
        let r = run(src);
        let g008: Vec<_> = r.findings.iter().filter(|f| f.rule == "G008").collect();
        assert_eq!(g008.len(), 1, "{:?}", r.findings);
    }

    #[test]
    fn test_modules_are_skipped() {
        let src = r#"
use std::sync::Mutex;
struct S { a: Mutex<u32>, b: Mutex<u32> }
#[cfg(test)]
mod tests {
    fn f(s: &super::S) { let g = s.a.lock(); let h = s.b.lock(); }
}
"#;
        let r = run(src);
        assert!(r.graph.edges.is_empty(), "{:?}", r.graph.edges);
    }

    #[test]
    fn struct_literal_overlaps_all_guards() {
        let src = r#"
use std::sync::RwLock;
struct Shard { x: RwLock<u32>, y: RwLock<u32> }
impl Shard {
    fn transplanted(&self) -> Shard {
        Shard {
            x: RwLock::new(self.x.read().clone()),
            y: RwLock::new(self.y.read().clone()),
        }
    }
}
"#;
        let r = run(src);
        assert_eq!(r.graph.edges.len(), 1, "{:?}", r.graph.edges);
        assert_eq!(r.graph.edges[0].from, "demo.demo.Shard.x");
        assert_eq!(r.graph.edges[0].to, "demo.demo.Shard.y");
    }
}
