//! Subcommand implementations. Each returns its textual output so the
//! integration tests can assert on it.

use crate::args::Command;
use crate::CliError;
use graphrep_baselines::traditional_topk;
use graphrep_core::{GraphDatabase, NbIndex, NbIndexConfig, NbTreeConfig, RelevanceQuery, Scorer};
use graphrep_datagen::{store, Dataset, DatasetSpec};
use graphrep_ged::{DistanceOracle, GedConfig, GedMode};
use graphrep_graph::stats::DatasetStats;
use std::fmt::Write as _;
use std::path::Path;
use std::sync::Arc;

/// Dispatches a parsed command, returning its output.
pub fn run(cmd: &Command) -> Result<String, CliError> {
    configure_threads(cmd)?;
    match cmd.name.as_str() {
        "generate" => generate(cmd),
        "stats" => stats(cmd),
        "index" => index(cmd),
        "query" => query(cmd),
        "refine" => refine(cmd),
        "topk" => topk(cmd),
        "compare" => compare(cmd),
        "serve" => serve(cmd),
        "load" => load(cmd),
        "mutate" => mutate_cmd(cmd),
        "shard-build" => shard_build(cmd),
        "help" | "--help" | "-h" => Ok(HELP.to_owned()),
        other => Err(CliError(format!(
            "unknown subcommand `{other}`; try `graphrep help`"
        ))),
    }
}

/// Usage text.
pub const HELP: &str = "\
graphrep — top-k representative queries on graph databases (SIGMOD'14)

subcommands:
  generate --kind dud|dblp|amazon --size N [--seed S] --out DIR
  stats    --data DIR
  index    --data DIR [--vps N] [--branching B] [--ladder a,b,c] [--out FILE]
           [--format bin|json]
  query    --data DIR --theta T --k K [--index FILE] [--quantile Q] [--hybrid MAXN]
           [--shards S]
  refine   --data DIR --theta T --k K --steps t1,t2,... [--index FILE]
  topk     --data DIR --k K
  compare  --data DIR --theta T --k K     (REP vs DIV vs DisC vs top-k)
  serve    --data DIR [--name NAME] [--addr HOST:PORT] [--workers N]
           [--io blocking|async] [--write-queue-cap BYTES]
           [--max-queue N] [--deadline-ms MS] [--idle-secs S]
           [--cache-capacity N] [--cache-ttl SECS]
           [--shards S [--shard-seed SEED]]
  load     --addr HOST:PORT [--name NAME] [--connections N] [--requests M]
           [--theta t1,t2,...] [--k k1,k2,...] [--quantile Q] [--seed S]
           [--skew S] [--stream true | --pipeline DEPTH]
           [--verify-data DIR] [--shutdown true]
  mutate   --data DIR [--insert N] [--remove id1,id2,...] [--seed S]
           [--addr HOST:PORT [--name NAME]] [--shards S [--shard-seed SEED]]
  shard-build --data DIR [--shards S] [--seed S] [--ladder a,b,c]

`query`/`refine` reuse `<DIR>/index.bin` (or the legacy `<DIR>/index.json`)
automatically when present, and persist the index after building — in the
succinct binary format by default, or JSON with `--format json` (an `--out`
path ending in .json also selects JSON). `--index FILE` accepts either
format; the file's own magic bytes decide how it is read.

`serve` keeps a materialized θ-neighborhood view store and a cross-session
answer cache per dataset (epoch-keyed, invalidated on mutation).
--cache-capacity 0 disables both; --cache-ttl 0 (default) means no age
expiry. `load --skew S` draws (θ, k) pairs Zipf-like with exponent S
instead of uniformly (0 = the historical uniform schedule).

`serve --io async` swaps the thread-per-connection accept path for the
epoll reactor (Linux only): thousands of idle connections per core, v2
protocol negotiation (pipelined tagged requests), and streamed runs whose
picks go out frame-by-frame. `load --stream true` issues `run_stream`
requests one at a time; `load --pipeline DEPTH` keeps DEPTH streamed runs
in flight per connection (requires an async server). Both verify every
stream against its terminal summary and report time-to-first-pick.

`shard-build` partitions the dataset into S metric-space shards
(farthest-point centers) and persists one NB-Index per shard plus the
shard manifest under `<DIR>/shards/`. `query --shards S`,
`serve --shards S` and `mutate --shards S` then run scatter-gather
distributed greedy over that layout (rebuilding it if absent, torn, or
built for a different S): answers are byte-identical to the single-index
path, and mutations route to the owning shard, bumping only its epoch.

`mutate` inserts N randomly perturbed copies of existing graphs and/or
tombstones the listed ids. Without --addr it mutates the dataset directory
in place (index + epoch sidecar re-persisted); with --addr the same ops go
over the wire to a running server, which re-persists its own directory.

every subcommand accepts --threads N to set the worker count for the
parallel GED phases (0 or omitted = one worker per core); answers are
identical at any thread count.
";

/// Applies the global `--threads N` flag (0 = auto). Parallel phases use the
/// configured rayon worker count; results are thread-count-independent.
fn configure_threads(cmd: &Command) -> Result<(), CliError> {
    let threads: usize = cmd.parsed_or("threads", 0)?;
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build_global()
        .map_err(|e| CliError(format!("--threads: {e}")))
}

fn load_dataset(cmd: &Command) -> Result<Dataset, CliError> {
    let dir = cmd.req("data")?;
    store::load(Path::new(dir)).map_err(|e| CliError(format!("loading {dir}: {e}")))
}

fn make_oracle(cmd: &Command, db: &GraphDatabase) -> Result<Arc<DistanceOracle>, CliError> {
    let mut config = GedConfig::default();
    if let Some(maxn) = cmd.opt("hybrid") {
        let exact_max_nodes = maxn
            .parse()
            .map_err(|_| CliError(format!("--hybrid: bad node count `{maxn}`")))?;
        config.mode = GedMode::Hybrid { exact_max_nodes };
    }
    Ok(db.oracle(config))
}

/// Loads an index file in whichever format it is, sniffing the binary magic.
fn load_index_bytes(bytes: &[u8], oracle: Arc<DistanceOracle>) -> Result<NbIndex, String> {
    if graphrep_core::is_binary_index(bytes) {
        NbIndex::load_bin(bytes, oracle).map_err(|e| e.to_string())
    } else {
        let json = std::str::from_utf8(bytes).map_err(|e| e.to_string())?;
        NbIndex::load_json(json, oracle).map_err(|e| e.to_string())
    }
}

/// Resolves the `--format bin|json` flag. When absent, a `.json` output path
/// keeps the legacy format; everything else defaults to the binary format.
fn index_format(cmd: &Command, out_path: Option<&str>) -> Result<&'static str, CliError> {
    match cmd.opt("format") {
        Some("bin") => Ok("bin"),
        Some("json") => Ok("json"),
        Some(other) => Err(CliError(format!(
            "--format must be bin or json, got `{other}`"
        ))),
        None => Ok(match out_path {
            Some(p) if p.ends_with(".json") => "json",
            _ => "bin",
        }),
    }
}

/// Writes `index` to `path` in `format` ("bin" or "json").
fn write_index(index: &NbIndex, path: &Path, format: &str) -> std::io::Result<()> {
    if format == "json" {
        std::fs::write(path, index.save_json())
    } else {
        std::fs::write(path, index.save_bin())
    }
}

/// Loads or builds the index, returning it with a provenance line for the
/// command output. Resolution order: an explicit `--index FILE` (either
/// format, sniffed by magic), then the dataset-local `<data>/index.bin` /
/// `<data>/index.json` written by an earlier build (the warm path that makes
/// one-shot `query` skip the whole NP-hard build phase), then a fresh build
/// — which is persisted next to the dataset (per `--format`, default the
/// binary format) so the *next* invocation starts warm.
fn build_or_load_index(
    cmd: &Command,
    data: &Dataset,
    oracle: Arc<DistanceOracle>,
) -> Result<(NbIndex, String), CliError> {
    let data_dir = Path::new(cmd.req("data")?).to_path_buf();
    index_format(cmd, None)?; // reject a bad --format before any load path
    if let Some(path) = cmd.opt("index") {
        if Path::new(path).exists() {
            let bytes =
                std::fs::read(path).map_err(|e| CliError(format!("reading {path}: {e}")))?;
            let index = load_index_bytes(&bytes, oracle)
                .map_err(|e| CliError(format!("loading index {path}: {e}")))?;
            return Ok((index, format!("index: loaded {path} (0 build distances)\n")));
        }
    } else {
        // A stale persisted index (version bump, regenerated dataset) is not
        // fatal on the implicit path: fall through and rebuild.
        for name in ["index.bin", "index.json"] {
            let implicit = data_dir.join(name);
            if let Ok(bytes) = std::fs::read(&implicit) {
                if let Ok(index) = load_index_bytes(&bytes, Arc::clone(&oracle)) {
                    return Ok((
                        index,
                        format!("index: loaded {} (0 build distances)\n", implicit.display()),
                    ));
                }
            }
        }
    }
    let index = NbIndex::build(
        oracle,
        NbIndexConfig {
            num_vps: cmd.parsed_or("vps", 16usize)?,
            tree: NbTreeConfig {
                branching: cmd.parsed_or("branching", 8usize)?,
                ..NbTreeConfig::default()
            },
            ladder: cmd
                .float_list("ladder")?
                .unwrap_or_else(|| data.default_ladder.clone()),
            seed: cmd.parsed_or("seed", 0x5eedu64)?,
        },
    );
    if cmd.opt("index").is_none() {
        // Best effort: a read-only dataset directory must not fail the query.
        let format = index_format(cmd, None)?;
        let _ = write_index(&index, &data_dir.join(format!("index.{format}")), format);
    }
    let b = index.build_stats();
    Ok((
        index,
        format!(
            "index: built ({} edit distances, {:.2?})\n",
            b.distance_calls, b.wall
        ),
    ))
}

fn default_query(cmd: &Command, data: &Dataset) -> Result<RelevanceQuery, CliError> {
    let q: f64 = cmd.parsed_or("quantile", 0.75)?;
    let scorer = Scorer::MeanOfDims((0..data.db.dims().max(1)).collect());
    Ok(RelevanceQuery::top_quantile(&data.db, scorer, q))
}

fn generate(cmd: &Command) -> Result<String, CliError> {
    let kind = store::kind_from_str(cmd.req("kind")?)
        .ok_or_else(|| CliError("--kind must be dud, dblp or amazon".into()))?;
    let size: usize = cmd.parsed("size")?;
    let seed: u64 = cmd.parsed_or("seed", 42u64)?;
    let out = cmd.req("out")?;
    let data = DatasetSpec::new(kind, size, seed).generate();
    store::save(&data, Path::new(out)).map_err(|e| CliError(format!("writing {out}: {e}")))?;
    Ok(format!(
        "wrote {} graphs ({}) to {out} — default θ = {}\n",
        data.db.len(),
        kind.name(),
        data.default_theta
    ))
}

fn stats(cmd: &Command) -> Result<String, CliError> {
    let data = load_dataset(cmd)?;
    let s = DatasetStats::compute(data.db.graphs());
    let mut out = String::new();
    let _ = writeln!(
        out,
        "dataset: {} ({})",
        cmd.req("data")?,
        data.spec.kind.name()
    );
    let _ = writeln!(out, "{s}");
    let _ = writeln!(out, "feature dims: {}", data.db.dims());
    let _ = writeln!(out, "default θ: {}", data.default_theta);
    let _ = writeln!(out, "default ladder: {:?}", data.default_ladder);
    Ok(out)
}

fn index(cmd: &Command) -> Result<String, CliError> {
    let data = load_dataset(cmd)?;
    let oracle = make_oracle(cmd, &data.db)?;
    let (index, provenance) = build_or_load_index(cmd, &data, oracle)?;
    let b = index.build_stats();
    let mut out = provenance;
    let _ = writeln!(
        out,
        "index built in {:.2?}: {} edit distances, {} tree nodes, {} VPs, {} bytes",
        b.wall,
        b.distance_calls,
        index.tree().nodes().len(),
        index.vantage().num_vps(),
        index.memory_bytes(),
    );
    if let Some(path) = cmd.opt("out") {
        let format = index_format(cmd, Some(path))?;
        write_index(&index, Path::new(path), format)
            .map_err(|e| CliError(format!("writing {path}: {e}")))?;
        let _ = writeln!(out, "saved to {path} ({format})");
    }
    Ok(out)
}

fn query(cmd: &Command) -> Result<String, CliError> {
    if cmd.opt("shards").is_some() {
        return query_sharded(cmd);
    }
    let data = load_dataset(cmd)?;
    let theta: f64 = cmd.parsed("theta")?;
    let k: usize = cmd.parsed("k")?;
    let oracle = make_oracle(cmd, &data.db)?;
    let (index, provenance) = build_or_load_index(cmd, &data, oracle)?;
    let rq = default_query(cmd, &data)?;
    let relevant = rq.relevant_set(&data.db);
    let (answer, stats) = index.query(relevant.clone(), theta, k);
    let mut out = provenance;
    let _ = writeln!(
        out,
        "|L_q| = {}, θ = {theta}, k = {k} → {} answers in {:.2?} ({} edit distances)",
        relevant.len(),
        answer.len(),
        stats.wall,
        stats.distance_calls
    );
    for (i, &g) in answer.ids.iter().enumerate() {
        let graph = data.db.graph(g);
        let _ = writeln!(
            out,
            "  {:>2}. graph {g:>5}  {} nodes / {} edges  score {:.3}  π so far {:.3}",
            i + 1,
            graph.node_count(),
            graph.edge_count(),
            rq.score(&data.db, g),
            answer.pi_trajectory[i]
        );
    }
    let _ = writeln!(
        out,
        "π(A) = {:.3}, compression ratio = {:.1}",
        answer.pi(),
        answer.compression_ratio()
    );
    Ok(out)
}

/// Opens (or rebuilds) the shard layout under `<data>/shards/` for the
/// requested shard count, mirroring the serve layer's fallback discipline:
/// absent/torn manifests and a persisted layout built for a different `S`
/// both trigger a rebuild that is re-persisted.
fn open_shard_layout(
    cmd: &Command,
    data: &Dataset,
    shards: usize,
    seed: u64,
) -> Result<(graphrep_shard::Coordinator, String), CliError> {
    use graphrep_shard::{CoordConfig, Coordinator, RestoreSource};
    let shard_dir = Path::new(cmd.req("data")?).join("shards");
    let cfg = CoordConfig {
        shards,
        seed,
        ladder: cmd
            .float_list("ladder")?
            .unwrap_or_else(|| data.default_ladder.clone()),
    };
    let (mut coord, source) =
        Coordinator::open_or_rebuild(&shard_dir, &data.db, GedConfig::default(), &cfg)
            .map_err(|e| CliError(format!("shard layout {}: {e}", shard_dir.display())))?;
    let mut provenance = match source {
        RestoreSource::Loaded => "loaded".to_owned(),
        RestoreSource::Rebuilt(reason) => format!("rebuilt ({reason})"),
    };
    let want = shards.clamp(1, data.db.len().max(1));
    if coord.shard_count() != want {
        coord = Coordinator::build(&data.db, GedConfig::default(), &cfg);
        coord
            .save(&shard_dir)
            .map_err(|e| CliError(format!("writing {}: {e}", shard_dir.display())))?;
        provenance = "rebuilt (shard count changed)".to_owned();
    }
    Ok((
        coord,
        format!(
            "shards: {provenance} {} ({} shards)\n",
            shard_dir.display(),
            want
        ),
    ))
}

/// `query --shards S`: the same one-shot query answered by scatter-gather
/// distributed greedy over the persisted shard layout. Byte-identical
/// answers to the single-index path, plus per-pick shard-pruning stats.
fn query_sharded(cmd: &Command) -> Result<String, CliError> {
    let data = load_dataset(cmd)?;
    let theta: f64 = cmd.parsed("theta")?;
    let k: usize = cmd.parsed("k")?;
    let shards: usize = cmd.parsed("shards")?;
    let seed: u64 = cmd.parsed_or("seed", 0x5eedu64)?;
    let (coord, provenance) = open_shard_layout(cmd, &data, shards, seed)?;
    let rq = default_query(cmd, &data)?;
    let relevant = rq.relevant_set(&data.db);
    let session = coord.session(relevant.clone());
    let (answer, stats) = session.run(theta, k);
    let mut out = provenance;
    let _ = writeln!(
        out,
        "|L_q| = {}, θ = {theta}, k = {k} → {} answers in {:.2?} ({} engine entries)",
        relevant.len(),
        answer.len(),
        stats.wall,
        stats.engine_entries.iter().sum::<u64>(),
    );
    for (i, &g) in answer.ids.iter().enumerate() {
        let graph = data.db.graph(g);
        let _ = writeln!(
            out,
            "  {:>2}. graph {g:>5}  {} nodes / {} edges  score {:.3}  π so far {:.3}",
            i + 1,
            graph.node_count(),
            graph.edge_count(),
            rq.score(&data.db, g),
            answer.pi_trajectory[i]
        );
    }
    let _ = writeln!(
        out,
        "π(A) = {:.3}, compression ratio = {:.1}",
        answer.pi(),
        answer.compression_ratio()
    );
    let _ = writeln!(
        out,
        "scatter-gather: {} picks over {} shards, {:.1}% of shard-pick pairs pruned",
        stats.picks,
        stats.shard_count,
        100.0 * stats.prune_rate()
    );
    Ok(out)
}

/// `shard-build`: partition the dataset into metric-space shards and
/// persist per-shard NB-Indexes plus the manifest under `<DIR>/shards/`.
fn shard_build(cmd: &Command) -> Result<String, CliError> {
    use graphrep_shard::{CoordConfig, Coordinator};
    let dir = cmd.req("data")?;
    let data = load_dataset(cmd)?;
    let cfg = CoordConfig {
        shards: cmd.parsed_or("shards", 4usize)?,
        seed: cmd.parsed_or("seed", 0x5eedu64)?,
        ladder: cmd
            .float_list("ladder")?
            .unwrap_or_else(|| data.default_ladder.clone()),
    };
    let start = std::time::Instant::now();
    let coord = Coordinator::build(&data.db, GedConfig::default(), &cfg);
    let shard_dir = Path::new(dir).join("shards");
    coord
        .save(&shard_dir)
        .map_err(|e| CliError(format!("writing {}: {e}", shard_dir.display())))?;
    let mut out = format!(
        "built {} shards over {} graphs in {:.2?} → {}\n",
        coord.shard_count(),
        data.db.len(),
        start.elapsed(),
        shard_dir.display()
    );
    for s in coord.overview() {
        let _ = writeln!(
            out,
            "  shard {:>2}: {:>5} live graphs, radius {:>6.2}, epoch {}, {} index bytes",
            s.shard, s.live, s.radius, s.epoch, s.index_memory_bytes
        );
    }
    Ok(out)
}

fn refine(cmd: &Command) -> Result<String, CliError> {
    let data = load_dataset(cmd)?;
    let theta: f64 = cmd.parsed("theta")?;
    let k: usize = cmd.parsed("k")?;
    let steps = cmd
        .float_list("steps")?
        .ok_or_else(|| CliError("--steps is required (comma-separated θ values)".into()))?;
    let oracle = make_oracle(cmd, &data.db)?;
    let (index, provenance) = build_or_load_index(cmd, &data, oracle)?;
    let rq = default_query(cmd, &data)?;
    let relevant = rq.relevant_set(&data.db);
    let session = index.start_session(relevant);
    let mut out = provenance;
    let _ = writeln!(out, "initialization: {:.2?}", session.init_wall());
    for t in std::iter::once(theta).chain(steps) {
        let (answer, stats) = session.run(t, k);
        let _ = writeln!(
            out,
            "θ = {t:>6.2}: π = {:.3}, CR = {:>6.1}, {} edit distances, {:.2?}",
            answer.pi(),
            answer.compression_ratio(),
            stats.distance_calls,
            stats.wall
        );
    }
    Ok(out)
}

fn topk(cmd: &Command) -> Result<String, CliError> {
    let data = load_dataset(cmd)?;
    let k: usize = cmd.parsed("k")?;
    let rq = default_query(cmd, &data)?;
    let ids = traditional_topk(&data.db, &rq, k);
    let mut out = format!("traditional top-{k} by score:\n");
    for &g in &ids {
        let _ = writeln!(out, "  graph {g:>5}  score {:.3}", rq.score(&data.db, g));
    }
    Ok(out)
}

fn compare(cmd: &Command) -> Result<String, CliError> {
    use graphrep_baselines::{div_topk, greedy_disc, DivVariant};
    use graphrep_core::{
        baseline_greedy, evaluate_answer, BruteForceProvider, NeighborhoodProvider,
    };
    let data = load_dataset(cmd)?;
    let theta: f64 = cmd.parsed("theta")?;
    let k: usize = cmd.parsed("k")?;
    let oracle = make_oracle(cmd, &data.db)?;
    let rq = default_query(cmd, &data)?;
    let relevant = rq.relevant_set(&data.db);
    let provider = BruteForceProvider::new(&oracle, &relevant);

    let rep = baseline_greedy(&provider, &relevant, theta, k);
    let divt = div_topk(&provider, &relevant, theta, k, DivVariant::Theta);
    let div2 = div_topk(&provider, &relevant, theta, k, DivVariant::TwoTheta);
    let disc = greedy_disc(&provider, &relevant, theta, None);
    let trad = traditional_topk(&data.db, &rq, k);

    let eval = |ids: &[u32]| evaluate_answer(ids, &relevant, |g| provider.neighborhood(g, theta));
    let mut out = format!(
        "|L_q| = {}, θ = {theta}, k = {k}\n{:<14} {:>6} {:>8} {:>8}\n",
        relevant.len(),
        "model",
        "|A|",
        "π(A)",
        "CR"
    );
    let mut line = |name: &str, ids: &[u32]| {
        let e = eval(ids);
        let _ = writeln!(
            out,
            "{name:<14} {:>6} {:>8.3} {:>8.1}",
            ids.len(),
            e.pi(),
            e.compression_ratio()
        );
    };
    let typ = graphrep_baselines::topk_typicality(&oracle, &relevant, theta, k);
    line("REP (greedy)", &rep.ids);
    line("DIV(theta)", &divt.ids);
    line("DIV(2theta)", &div2.ids);
    line("DisC (full)", &disc.ids);
    line("typicality", &typ.ids);
    line("top-k", &trad);
    Ok(out)
}

/// Starts the TCP query server on one dataset directory and blocks until a
/// wire `Shutdown` request arrives. The bound address is printed (and
/// flushed) before blocking so scripts can scrape the chosen port.
fn serve(cmd: &Command) -> Result<String, CliError> {
    use graphrep_core::CacheConfig;
    use graphrep_serve::{DatasetRegistry, IoMode, ServeConfig};
    let dir = cmd.req("data")?;
    let name = cmd.opt("name").unwrap_or("default").to_owned();
    // No `--io` flag falls back to `ServeConfig::default()`, which honors
    // `GRAPHREP_SERVE_IO` — CI flips whole smoke jobs between I/O modes
    // through the environment without touching each invocation.
    let io: IoMode = match cmd.opt("io") {
        Some(s) => s.parse().map_err(|e| CliError(format!("--io: {e}")))?,
        None => ServeConfig::default().io,
    };
    let cfg = ServeConfig {
        addr: cmd.opt("addr").unwrap_or("127.0.0.1:0").to_owned(),
        workers: cmd.parsed_or("workers", 4usize)?,
        io,
        write_queue_cap: cmd
            .parsed_or("write-queue-cap", ServeConfig::default().write_queue_cap)?,
        max_queue: cmd.parsed_or("max-queue", 64usize)?,
        default_deadline_ms: match cmd.opt("deadline-ms") {
            Some(ms) => Some(
                ms.parse()
                    .map_err(|_| CliError(format!("--deadline-ms: bad value `{ms}`")))?,
            ),
            None => None,
        },
        idle_session_ttl: std::time::Duration::from_secs(cmd.parsed_or("idle-secs", 900u64)?),
        ..ServeConfig::default()
    };
    // `--cache-capacity 0` disables the caching layer; `--cache-ttl 0`
    // (the default) means entries never expire by age.
    let cache_ttl_secs: u64 = cmd.parsed_or("cache-ttl", 0u64)?;
    let cache = CacheConfig {
        capacity: cmd.parsed_or("cache-capacity", CacheConfig::default().capacity)?,
        ttl: (cache_ttl_secs > 0).then(|| std::time::Duration::from_secs(cache_ttl_secs)),
        ..CacheConfig::default()
    };
    let mut registry = DatasetRegistry::new();
    let shards: usize = cmd.parsed_or("shards", 0usize)?;
    let shard_note = if shards > 0 {
        let seed: u64 = cmd.parsed_or("shard-seed", 0x5eedu64)?;
        registry
            .load_dir_sharded(&name, Path::new(dir), shards, seed)
            .map_err(|e| CliError(e.to_string()))?;
        format!(", {shards} shards")
    } else {
        registry
            .load_dir_with(&name, Path::new(dir), true, cache)
            .map_err(|e| CliError(e.to_string()))?;
        String::new()
    };
    let handle = graphrep_serve::start(cfg, registry).map_err(|e| CliError(e.to_string()))?;
    let addr = handle.addr();
    println!(
        "graphrep-serve listening on {addr} (dataset `{name}`{shard_note}, io {})",
        io.name()
    );
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    handle.wait();
    Ok(format!("server on {addr} shut down cleanly\n"))
}

/// Drives a deterministic load profile against a running server and, with
/// `--verify-data DIR`, proves the served answers byte-identical to offline
/// `QuerySession::run` on the same dataset.
fn load(cmd: &Command) -> Result<String, CliError> {
    use graphrep_serve::{
        offline_reference_from_dir, run_load, verify_against_offline, Client, LoadMode, LoadSpec,
    };
    let addr = cmd.req("addr")?;
    let verify_dir = cmd.opt("verify-data");
    let thetas = match cmd.float_list("theta")? {
        Some(t) => t,
        None => {
            let dir = verify_dir.ok_or_else(|| {
                CliError("--theta t1,t2,... is required unless --verify-data is given".into())
            })?;
            let data =
                store::load(Path::new(dir)).map_err(|e| CliError(format!("loading {dir}: {e}")))?;
            vec![
                data.default_theta * 0.8,
                data.default_theta,
                data.default_theta * 1.2,
            ]
        }
    };
    let ks: Vec<usize> = match cmd.opt("k") {
        Some(s) => s
            .split(',')
            .map(|p| {
                p.trim()
                    .parse()
                    .map_err(|_| CliError(format!("--k: bad value `{p}`")))
            })
            .collect::<Result<_, _>>()?,
        None => vec![3, 5],
    };
    let mode = match (cmd.opt("stream"), cmd.opt("pipeline")) {
        (None, None) => LoadMode::Blocking,
        (Some("true"), None) => LoadMode::Streamed,
        (None, Some(depth)) => LoadMode::Pipelined {
            depth: depth
                .parse()
                .map_err(|_| CliError(format!("--pipeline: bad depth `{depth}`")))?,
        },
        (Some(_), Some(_)) => {
            return Err(CliError(
                "--stream and --pipeline are mutually exclusive".into(),
            ))
        }
        (Some(other), None) => {
            return Err(CliError(format!(
                "--stream: expected `true`, got `{other}`"
            )))
        }
    };
    let spec = LoadSpec {
        dataset: cmd.opt("name").unwrap_or("default").to_owned(),
        connections: cmd.parsed_or("connections", 4usize)?,
        requests_per_conn: cmd.parsed_or("requests", 25usize)?,
        thetas,
        ks,
        quantile: cmd.parsed_or("quantile", 0.75f64)?,
        seed: cmd.parsed_or("seed", 42u64)?,
        skew: cmd.parsed_or("skew", 0.0f64)?,
        mode,
    };
    let report = run_load(addr, &spec).map_err(|e| CliError(e.to_string()))?;
    let mut out = format!(
        "load: {} connections x {} requests against {addr}\n",
        spec.connections, spec.requests_per_conn
    );
    let _ = writeln!(
        out,
        "completed: {}, errors: {}",
        report.completed(),
        report.errors.len()
    );
    let _ = writeln!(
        out,
        "wall: {:.2?}, throughput: {:.1} req/s, p50 {:.2} ms, p99 {:.2} ms",
        report.wall,
        report.throughput_rps(),
        report.latency_quantile_ms(0.50),
        report.latency_quantile_ms(0.99),
    );
    if !report.ttfp_ms.is_empty() {
        let _ = writeln!(
            out,
            "time-to-first-pick: p50 {:.2} ms, p99 {:.2} ms ({} streamed runs)",
            report.ttfp_quantile_ms(0.50),
            report.ttfp_quantile_ms(0.99),
            report.ttfp_ms.len(),
        );
    }
    let verification = match verify_dir {
        Some(dir) => {
            let reference = offline_reference_from_dir(Path::new(dir), &spec)
                .map_err(|e| CliError(e.to_string()))?;
            Some(verify_against_offline(&report, &reference))
        }
        None => None,
    };
    if let Some(Ok(n)) = &verification {
        let _ = writeln!(
            out,
            "verified: {n} answers byte-identical to offline QuerySession::run"
        );
    }
    // Cache summary from the server's stats endpoint, for operators and the
    // CI smoke job (which greps these lines for a nonzero hit count).
    if let Ok(mut client) = Client::connect(addr) {
        if let Ok(stats) = client.stats() {
            for ds in stats
                .datasets
                .iter()
                .filter(|d| d.name == spec.dataset && d.cache_enabled)
            {
                let pct = |hits: u64, lookups: u64| {
                    if lookups == 0 {
                        0.0
                    } else {
                        100.0 * hits as f64 / lookups as f64
                    }
                };
                let a = &ds.answer_cache;
                let v = &ds.view_store;
                let _ = writeln!(
                    out,
                    "answer cache: {}/{} hits ({:.1}%), {} entries, {} bytes",
                    a.hits,
                    a.lookups,
                    pct(a.hits, a.lookups),
                    a.entries,
                    a.memory_bytes
                );
                let _ = writeln!(
                    out,
                    "view store: {}/{} hits ({:.1}%), {} entries, {} bytes",
                    v.hits,
                    v.lookups,
                    pct(v.hits, v.lookups),
                    v.entries,
                    v.memory_bytes
                );
            }
        }
    }
    if cmd.opt("shutdown") == Some("true") {
        let mut client = Client::connect(addr).map_err(|e| CliError(e.to_string()))?;
        client.shutdown().map_err(|e| CliError(e.to_string()))?;
        let _ = writeln!(out, "shutdown requested");
    }
    if !report.errors.is_empty() {
        return Err(CliError(format!(
            "{} load errors; first: {}",
            report.errors.len(),
            report.errors[0]
        )));
    }
    if let Some(Err(e)) = verification {
        return Err(CliError(format!("verification failed: {e}")));
    }
    let expected = spec.connections * spec.requests_per_conn;
    if report.completed() != expected {
        return Err(CliError(format!(
            "expected {expected} answers, got {}",
            report.completed()
        )));
    }
    Ok(out)
}

/// One human-readable receipt line shared by both mutate transports.
fn receipt_line(
    op: &str,
    id: u32,
    epoch: u64,
    live: usize,
    tombstones: usize,
    rebuilt: bool,
) -> String {
    format!(
        "{op} → graph {id} (epoch {epoch}, live {live}, tombstones {tombstones}{})",
        if rebuilt { ", rebuilt" } else { "" }
    )
}

/// The label alphabets actually present in the database, for generating
/// insert candidates that stay inside the dataset's vocabulary.
fn alphabets(db: &GraphDatabase) -> (Vec<u32>, Vec<u32>) {
    let mut nodes = std::collections::BTreeSet::new();
    let mut edges = std::collections::BTreeSet::new();
    for g in db.graphs() {
        nodes.extend(g.node_labels().iter().copied());
        edges.extend(g.edges().iter().map(|e| e.label));
    }
    if nodes.is_empty() {
        nodes.insert(0);
    }
    if edges.is_empty() {
        edges.insert(0);
    }
    (nodes.into_iter().collect(), edges.into_iter().collect())
}

/// Online mutation driver (DESIGN.md §10): plans deterministic inserts
/// (randomly perturbed copies of existing graphs, features copied from the
/// source) and tombstone removes, then applies them either directly to the
/// dataset directory or over the wire to a running server.
fn mutate_cmd(cmd: &Command) -> Result<String, CliError> {
    use graphrep_serve::registry::LoadedDataset;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let dir = cmd.req("data")?;
    let data = load_dataset(cmd)?;
    let n_insert: usize = cmd.parsed_or("insert", 0usize)?;
    let removes: Vec<u32> = match cmd.opt("remove") {
        Some(s) => s
            .split(',')
            .map(|p| {
                p.trim()
                    .parse()
                    .map_err(|_| CliError(format!("--remove: bad id `{p}`")))
            })
            .collect::<Result<_, _>>()?,
        None => Vec::new(),
    };
    if n_insert == 0 && removes.is_empty() {
        return Err(CliError(
            "nothing to do: pass --insert N and/or --remove id1,id2,...".into(),
        ));
    }
    let seed: u64 = cmd.parsed_or("seed", 0xc0ffeeu64)?;
    let mut rng = SmallRng::seed_from_u64(seed);
    let (node_alpha, edge_alpha) = alphabets(&data.db);
    let inserts: Vec<(graphrep_graph::Graph, Vec<f64>)> = (0..n_insert)
        .map(|_| {
            let src = rng.gen_range(0..data.db.len()) as u32;
            let edits = 1 + rng.gen_range(0..3);
            let g = graphrep_graph::generate::mutate(
                &mut rng,
                data.db.graph(src),
                edits,
                &node_alpha,
                &edge_alpha,
            );
            (g, data.db.features(src).to_vec())
        })
        .collect();

    let mut out = String::new();
    match cmd.opt("addr") {
        Some(addr) => {
            use graphrep_serve::Client;
            let name = cmd.opt("name").unwrap_or("default");
            let mut client = Client::connect(addr).map_err(|e| CliError(e.to_string()))?;
            for (g, f) in inserts {
                let nodes = g.node_labels().to_vec();
                let edges = g.edges().iter().map(|e| (e.u, e.v, e.label)).collect();
                let r = client
                    .insert(name, nodes, edges, f)
                    .map_err(|e| CliError(e.to_string()))?;
                let _ = writeln!(
                    out,
                    "{}",
                    receipt_line("insert", r.id, r.epoch, r.live, r.tombstones, r.rebuilt)
                );
            }
            for id in removes {
                let r = client
                    .remove(name, id)
                    .map_err(|e| CliError(e.to_string()))?;
                let _ = writeln!(
                    out,
                    "{}",
                    receipt_line("remove", r.id, r.epoch, r.live, r.tombstones, r.rebuilt)
                );
            }
        }
        None if cmd.opt("shards").is_some() => {
            // Sharded local path: mutations route to the owning shard and
            // bump only that shard's epoch; the receipt carries the full
            // epoch vector.
            use graphrep_serve::ShardedDataset;
            let shards: usize = cmd.parsed("shards")?;
            let shard_seed: u64 = cmd.parsed_or("shard-seed", 0x5eedu64)?;
            let ds = ShardedDataset::open("local", Path::new(dir), shards, shard_seed)
                .map_err(|e| CliError(e.to_string()))?;
            for (g, f) in inserts {
                let r = ds.insert_graph(g, f).map_err(|e| CliError(e.to_string()))?;
                let _ = writeln!(
                    out,
                    "{} [shard {}, epochs {:?}]",
                    receipt_line("insert", r.id, r.epoch, r.live, r.tombstones, r.rebuilt),
                    r.shard,
                    r.epochs
                );
            }
            for id in removes {
                let r = ds.remove_graph(id).map_err(|e| CliError(e.to_string()))?;
                let _ = writeln!(
                    out,
                    "{} [shard {}, epochs {:?}]",
                    receipt_line("remove", r.id, r.epoch, r.live, r.tombstones, r.rebuilt),
                    r.shard,
                    r.epochs
                );
            }
            let coord = ds.coordinator();
            let _ = writeln!(
                out,
                "dataset {dir} now at epochs {:?}: {} live / {} total graphs",
                coord.epochs(),
                coord.live_len(),
                coord.len()
            );
        }
        None => {
            let ds = LoadedDataset::open("local", Path::new(dir), true)
                .map_err(|e| CliError(e.to_string()))?;
            for (g, f) in inserts {
                let r = ds.insert_graph(g, f).map_err(|e| CliError(e.to_string()))?;
                let _ = writeln!(
                    out,
                    "{}",
                    receipt_line("insert", r.id, r.epoch, r.live, r.tombstones, r.rebuilt)
                );
            }
            for id in removes {
                let r = ds.remove_graph(id).map_err(|e| CliError(e.to_string()))?;
                let _ = writeln!(
                    out,
                    "{}",
                    receipt_line("remove", r.id, r.epoch, r.live, r.tombstones, r.rebuilt)
                );
            }
            let index = ds.index_arc();
            let _ = writeln!(
                out,
                "dataset {dir} now at epoch {}: {} live / {} total graphs",
                index.epoch(),
                index.tree().live_len(),
                index.tree().len()
            );
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn run_args(parts: &[&str]) -> Result<String, CliError> {
        let argv: Vec<String> = parts.iter().map(|s| s.to_string()).collect();
        run(&parse(&argv).unwrap())
    }

    fn tmp(name: &str) -> String {
        std::env::temp_dir()
            .join(format!("graphrep-cli-{name}-{}", std::process::id()))
            .to_string_lossy()
            .into_owned()
    }

    #[test]
    fn full_cli_workflow() {
        let dir = tmp("flow");
        let out = run_args(&[
            "generate", "--kind", "dud", "--size", "60", "--seed", "3", "--out", &dir,
        ])
        .unwrap();
        assert!(out.contains("wrote 60 graphs"));

        let out = run_args(&["stats", "--data", &dir]).unwrap();
        assert!(out.contains("60 graphs"));

        let idx = format!("{dir}/index.json");
        let out = run_args(&["index", "--data", &dir, "--vps", "4", "--out", &idx]).unwrap();
        assert!(out.contains("index built"));
        assert!(std::path::Path::new(&idx).exists());

        let out = run_args(&[
            "query", "--data", &dir, "--index", &idx, "--theta", "4", "--k", "5",
        ])
        .unwrap();
        assert!(out.contains("π(A)"), "{out}");

        let out = run_args(&[
            "refine", "--data", &dir, "--index", &idx, "--theta", "4", "--k", "5", "--steps",
            "3.6,4.4",
        ])
        .unwrap();
        assert!(out.matches("θ =").count() == 3, "{out}");

        let out = run_args(&["topk", "--data", &dir, "--k", "3"]).unwrap();
        assert!(out.contains("traditional top-3"));

        let out = run_args(&["compare", "--data", &dir, "--theta", "4", "--k", "5"]).unwrap();
        assert!(out.contains("REP (greedy)"), "{out}");
        assert!(out.contains("DisC (full)"));

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn threads_flag_accepted_and_answers_thread_independent() {
        let dir = tmp("threads");
        run_args(&[
            "generate", "--kind", "dud", "--size", "60", "--seed", "3", "--out", &dir,
        ])
        .unwrap();
        // Keep only the timing-free answer lines.
        let answers = |out: String| -> Vec<String> {
            out.lines()
                .filter(|l| l.contains(". graph") || l.contains("π(A)"))
                .map(str::to_owned)
                .collect()
        };
        let one = run_args(&[
            "query",
            "--data",
            &dir,
            "--theta",
            "4",
            "--k",
            "5",
            "--threads",
            "1",
        ])
        .unwrap();
        let four = run_args(&[
            "query",
            "--data",
            &dir,
            "--theta",
            "4",
            "--k",
            "5",
            "--threads",
            "4",
        ])
        .unwrap();
        assert_eq!(answers(one), answers(four));
        assert!(run_args(&[
            "query",
            "--data",
            &dir,
            "--theta",
            "4",
            "--k",
            "5",
            "--threads",
            "x"
        ])
        .is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Cold-start satellite: the first one-shot `query` builds (and
    /// persists) the index; the second invocation must take the
    /// persisted-index path and report a zero-cost build phase.
    #[test]
    fn second_query_invocation_skips_the_build() {
        let dir = tmp("warm");
        let _ = std::fs::remove_dir_all(&dir);
        run_args(&[
            "generate", "--kind", "dud", "--size", "40", "--seed", "7", "--out", &dir,
        ])
        .unwrap();
        let answers = |out: &str| -> Vec<String> {
            out.lines()
                .filter(|l| l.contains(". graph") || l.contains("π(A)"))
                .map(str::to_owned)
                .collect()
        };
        let first = run_args(&["query", "--data", &dir, "--theta", "4", "--k", "3"]).unwrap();
        assert!(first.contains("index: built"), "{first}");
        assert!(
            std::path::Path::new(&format!("{dir}/index.bin")).exists(),
            "query must persist the built index (binary format) next to the dataset"
        );
        let second = run_args(&["query", "--data", &dir, "--theta", "4", "--k", "3"]).unwrap();
        assert!(second.contains("index: loaded"), "{second}");
        assert!(second.contains("0 build distances"), "{second}");
        assert_eq!(answers(&first), answers(&second));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The two persisted formats are interchangeable: the same query answers
    /// come back whether the warm path reads `index.bin` or a `--format
    /// json` index, and an explicit `--index` of either format is sniffed by
    /// its magic bytes.
    #[test]
    fn binary_and_json_indexes_answer_identically() {
        let dir = tmp("fmteq");
        let _ = std::fs::remove_dir_all(&dir);
        run_args(&[
            "generate", "--kind", "dud", "--size", "40", "--seed", "21", "--out", &dir,
        ])
        .unwrap();
        let answers = |out: &str| -> Vec<String> {
            out.lines()
                .filter(|l| l.contains(". graph") || l.contains("π(A)"))
                .map(str::to_owned)
                .collect()
        };
        let bin_idx = format!("{dir}/alt.bin");
        let json_idx = format!("{dir}/alt.json");
        run_args(&[
            "index", "--data", &dir, "--vps", "4", "--out", &bin_idx, "--format", "bin",
        ])
        .unwrap();
        let out = run_args(&[
            "index", "--data", &dir, "--vps", "4", "--out", &json_idx, "--format", "json",
        ])
        .unwrap();
        assert!(out.contains("(json)"), "{out}");
        let bin_bytes = std::fs::read(&bin_idx).unwrap();
        let json_bytes = std::fs::read(&json_idx).unwrap();
        assert!(
            bin_bytes.len() * 3 < json_bytes.len(),
            "binary should be much smaller"
        );

        let via_bin = run_args(&[
            "query", "--data", &dir, "--index", &bin_idx, "--theta", "4", "--k", "5",
        ])
        .unwrap();
        let via_json = run_args(&[
            "query", "--data", &dir, "--index", &json_idx, "--theta", "4", "--k", "5",
        ])
        .unwrap();
        assert!(via_bin.contains("index: loaded"), "{via_bin}");
        assert_eq!(answers(&via_bin), answers(&via_json));
        assert!(run_args(&["index", "--data", &dir, "--format", "xml"]).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// End-to-end `load` against an in-process server, including offline
    /// verification and wire-initiated shutdown.
    #[test]
    fn load_command_verifies_against_offline_run() {
        let dir = tmp("serveload");
        let _ = std::fs::remove_dir_all(&dir);
        run_args(&[
            "generate", "--kind", "dud", "--size", "50", "--seed", "11", "--out", &dir,
        ])
        .unwrap();
        let mut registry = graphrep_serve::DatasetRegistry::new();
        registry
            .load_dir("default", std::path::Path::new(&dir), true)
            .unwrap();
        let handle = graphrep_serve::start(
            graphrep_serve::ServeConfig {
                workers: 2,
                ..Default::default()
            },
            registry,
        )
        .unwrap();
        let addr = handle.addr().to_string();
        let out = run_args(&[
            "load",
            "--addr",
            &addr,
            "--connections",
            "3",
            "--requests",
            "4",
            "--verify-data",
            &dir,
            "--shutdown",
            "true",
        ])
        .unwrap();
        assert!(out.contains("errors: 0"), "{out}");
        assert!(out.contains("verified: 12 answers"), "{out}");
        assert!(out.contains("shutdown requested"), "{out}");
        handle.wait();
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Offline `mutate` round-trip: the dataset directory absorbs the ops,
    /// and a later warm `query` serves the mutated state.
    #[test]
    fn mutate_command_updates_the_dataset_in_place() {
        let dir = tmp("mutate");
        let _ = std::fs::remove_dir_all(&dir);
        run_args(&[
            "generate", "--kind", "dud", "--size", "40", "--seed", "9", "--out", &dir,
        ])
        .unwrap();
        let out = run_args(&[
            "mutate", "--data", &dir, "--insert", "2", "--remove", "5", "--seed", "1",
        ])
        .unwrap();
        assert!(out.contains("insert → graph 40"), "{out}");
        assert!(out.contains("insert → graph 41"), "{out}");
        assert!(out.contains("remove → graph 5"), "{out}");
        assert!(out.contains("now at epoch 3: 41 live / 42 total"), "{out}");
        let epoch = std::fs::read_to_string(format!("{dir}/epoch.txt")).unwrap();
        assert_eq!(epoch.trim(), "3");

        // The warm query path picks the mutated index up and never returns
        // the tombstoned graph.
        let out = run_args(&["query", "--data", &dir, "--theta", "4", "--k", "5"]).unwrap();
        assert!(out.contains("index: loaded"), "{out}");
        assert!(!out.contains("graph     5 "), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Wire-mode `mutate` against an in-process server.
    #[test]
    fn mutate_command_over_the_wire() {
        let dir = tmp("mutwire");
        let _ = std::fs::remove_dir_all(&dir);
        run_args(&[
            "generate", "--kind", "dud", "--size", "30", "--seed", "13", "--out", &dir,
        ])
        .unwrap();
        let mut registry = graphrep_serve::DatasetRegistry::new();
        registry
            .load_dir("default", std::path::Path::new(&dir), true)
            .unwrap();
        let handle = graphrep_serve::start(
            graphrep_serve::ServeConfig {
                workers: 2,
                ..Default::default()
            },
            registry,
        )
        .unwrap();
        let addr = handle.addr().to_string();
        let out = run_args(&[
            "mutate", "--data", &dir, "--addr", &addr, "--insert", "1", "--remove", "2,7",
        ])
        .unwrap();
        assert!(out.contains("insert → graph 30"), "{out}");
        assert!(out.contains("(epoch 3"), "{out}");
        // The server re-persisted its directory: offline verification against
        // the same dir must agree with the post-mutation server state.
        let out = run_args(&[
            "load",
            "--addr",
            &addr,
            "--connections",
            "2",
            "--requests",
            "3",
            "--verify-data",
            &dir,
            "--shutdown",
            "true",
        ])
        .unwrap();
        assert!(out.contains("verified: 6 answers"), "{out}");
        handle.wait();
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// `shard-build` persists the layout; `query --shards S` loads it and
    /// answers byte-identically to the single-index path.
    #[test]
    fn sharded_query_matches_single_index_answers() {
        let dir = tmp("shardq");
        let _ = std::fs::remove_dir_all(&dir);
        run_args(&[
            "generate", "--kind", "dud", "--size", "50", "--seed", "17", "--out", &dir,
        ])
        .unwrap();
        let out = run_args(&["shard-build", "--data", &dir, "--shards", "4"]).unwrap();
        assert!(out.contains("built 4 shards over 50 graphs"), "{out}");
        assert!(
            std::path::Path::new(&format!("{dir}/shards/manifest.json")).exists()
                || std::path::Path::new(&format!("{dir}/shards")).exists(),
            "shard-build must persist the layout"
        );
        let answers = |out: &str| -> Vec<String> {
            out.lines()
                .filter(|l| l.contains(". graph") || l.contains("π(A)"))
                .map(str::to_owned)
                .collect()
        };
        let sharded = run_args(&[
            "query", "--data", &dir, "--theta", "4", "--k", "5", "--shards", "4",
        ])
        .unwrap();
        assert!(sharded.contains("shards: loaded"), "{sharded}");
        assert!(sharded.contains("scatter-gather:"), "{sharded}");
        let single = run_args(&["query", "--data", &dir, "--theta", "4", "--k", "5"]).unwrap();
        assert_eq!(answers(&sharded), answers(&single));
        // A different S rebuilds the layout rather than serving a stale one.
        let resharded = run_args(&[
            "query", "--data", &dir, "--theta", "4", "--k", "5", "--shards", "2",
        ])
        .unwrap();
        assert!(
            resharded.contains("rebuilt (shard count changed)"),
            "{resharded}"
        );
        assert_eq!(answers(&resharded), answers(&single));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Sharded local `mutate`: receipts carry the owning shard and the full
    /// epoch vector, and only the owning shard's epoch moves per op.
    #[test]
    fn sharded_mutate_routes_to_owning_shard() {
        let dir = tmp("shardmut");
        let _ = std::fs::remove_dir_all(&dir);
        run_args(&[
            "generate", "--kind", "dud", "--size", "30", "--seed", "5", "--out", &dir,
        ])
        .unwrap();
        let out = run_args(&[
            "mutate", "--data", &dir, "--shards", "2", "--insert", "1", "--remove", "3", "--seed",
            "1",
        ])
        .unwrap();
        assert!(out.contains("insert → graph 30"), "{out}");
        assert!(out.contains("[shard "), "{out}");
        assert!(out.contains("epochs ["), "{out}");
        assert!(out.contains("now at epochs"), "{out}");
        assert!(out.contains("30 live / 31 total"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Wire-level proof of sharded/single equivalence: `load --verify-data`
    /// checks a *sharded* server's answers byte-for-byte against the offline
    /// single-index `QuerySession::run` reference.
    #[test]
    fn load_verifies_sharded_server_against_single_index_reference() {
        let dir = tmp("shardserve");
        let _ = std::fs::remove_dir_all(&dir);
        run_args(&[
            "generate", "--kind", "dud", "--size", "40", "--seed", "23", "--out", &dir,
        ])
        .unwrap();
        let mut registry = graphrep_serve::DatasetRegistry::new();
        registry
            .load_dir_sharded("default", std::path::Path::new(&dir), 3, 0x5eed)
            .unwrap();
        let handle = graphrep_serve::start(
            graphrep_serve::ServeConfig {
                workers: 2,
                ..Default::default()
            },
            registry,
        )
        .unwrap();
        let addr = handle.addr().to_string();
        let out = run_args(&[
            "load",
            "--addr",
            &addr,
            "--connections",
            "2",
            "--requests",
            "4",
            "--verify-data",
            &dir,
        ])
        .unwrap();
        assert!(out.contains("errors: 0"), "{out}");
        assert!(out.contains("verified: 8 answers"), "{out}");

        // A wire mutation routes through the sharded backend and persists;
        // the replayed load must verify against the *mutated* state (the
        // offline reference replays the shard layout's tombstones).
        let out = run_args(&[
            "mutate", "--data", &dir, "--addr", &addr, "--insert", "1", "--remove", "2",
        ])
        .unwrap();
        assert!(out.contains("insert → graph 40"), "{out}");
        assert!(out.contains("remove → graph 2"), "{out}");
        let out = run_args(&[
            "load",
            "--addr",
            &addr,
            "--connections",
            "2",
            "--requests",
            "4",
            "--verify-data",
            &dir,
            "--shutdown",
            "true",
        ])
        .unwrap();
        assert!(out.contains("errors: 0"), "{out}");
        assert!(out.contains("verified: 8 answers"), "{out}");
        handle.wait();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_subcommand_errors() {
        assert!(run_args(&["frobnicate"]).is_err());
    }

    #[test]
    fn help_prints_usage() {
        let out = run_args(&["help"]).unwrap();
        assert!(out.contains("generate"));
        assert!(out.contains("refine"));
    }

    #[test]
    fn generate_rejects_bad_kind() {
        let err = run_args(&[
            "generate", "--kind", "zzz", "--size", "5", "--out", "/tmp/x",
        ])
        .unwrap_err();
        assert!(err.0.contains("dud"));
    }

    #[test]
    fn query_missing_data_errors() {
        assert!(run_args(&["query", "--theta", "4", "--k", "3"]).is_err());
    }
}
