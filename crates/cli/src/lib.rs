#![warn(missing_docs)]

//! Command-line workflows for `graphrep`.
//!
//! The `graphrep` binary wraps the library for a shell-first workflow:
//!
//! ```sh
//! graphrep generate --kind dud --size 1000 --seed 7 --out data/dud
//! graphrep stats    --data data/dud
//! graphrep index    --data data/dud --vps 16 --out data/dud/index.json
//! graphrep query    --data data/dud --index data/dud/index.json --theta 4 --k 10
//! graphrep refine   --data data/dud --index data/dud/index.json \
//!                   --theta 4 --k 10 --steps 3.6,4.4,4.0
//! graphrep topk     --data data/dud --k 10
//! ```
//!
//! Commands are implemented as functions returning their textual output, so
//! integration tests drive them directly.

pub mod args;
pub mod commands;

pub use args::{parse, Command};
pub use commands::run;

/// CLI-level errors with user-facing messages.
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

impl From<String> for CliError {
    fn from(s: String) -> Self {
        CliError(s)
    }
}

impl From<&str> for CliError {
    fn from(s: &str) -> Self {
        CliError(s.to_owned())
    }
}
