//! The `graphrep` command-line tool.

use graphrep_cli::{parse, run};

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match parse(&argv) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", graphrep_cli::commands::HELP);
            std::process::exit(2);
        }
    };
    match run(&cmd) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
