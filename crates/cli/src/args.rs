//! Flag parsing: a deliberately small `--key value` parser (no external
//! argument-parsing crate; the dependency set is fixed by DESIGN.md).

use crate::CliError;
use std::collections::HashMap;

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct Command {
    /// The subcommand name (`generate`, `index`, `query`, …).
    pub name: String,
    /// `--key value` flags.
    pub flags: HashMap<String, String>,
}

/// Parses `argv` (without the program name) into a [`Command`].
pub fn parse(argv: &[String]) -> Result<Command, CliError> {
    let mut it = argv.iter();
    let name = it
        .next()
        .ok_or_else(|| CliError::from("missing subcommand; try `graphrep help`"))?
        .clone();
    let mut flags = HashMap::new();
    while let Some(a) = it.next() {
        let key = a
            .strip_prefix("--")
            .ok_or_else(|| CliError(format!("expected --flag, got `{a}`")))?;
        let value = it
            .next()
            .ok_or_else(|| CliError(format!("--{key} needs a value")))?;
        if flags.insert(key.to_owned(), value.clone()).is_some() {
            return Err(CliError(format!("--{key} given twice")));
        }
    }
    Ok(Command { name, flags })
}

impl Command {
    /// A required string flag.
    pub fn req(&self, key: &str) -> Result<&str, CliError> {
        self.flags
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| CliError(format!("missing required --{key}")))
    }

    /// An optional string flag.
    pub fn opt(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// A parsed flag with a default.
    pub fn parsed_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, CliError> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError(format!("--{key}: cannot parse `{v}`"))),
        }
    }

    /// A required parsed flag.
    pub fn parsed<T: std::str::FromStr>(&self, key: &str) -> Result<T, CliError> {
        let v = self.req(key)?;
        v.parse()
            .map_err(|_| CliError(format!("--{key}: cannot parse `{v}`")))
    }

    /// A comma-separated list of floats.
    pub fn float_list(&self, key: &str) -> Result<Option<Vec<f64>>, CliError> {
        match self.flags.get(key) {
            None => Ok(None),
            Some(v) => v
                .split(',')
                .map(|p| {
                    p.trim()
                        .parse::<f64>()
                        .map_err(|_| CliError(format!("--{key}: bad number `{p}`")))
                })
                .collect::<Result<Vec<_>, _>>()
                .map(Some),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_subcommand_and_flags() {
        let c = parse(&argv(&["query", "--theta", "4.5", "--k", "10"])).unwrap();
        assert_eq!(c.name, "query");
        assert_eq!(c.req("theta").unwrap(), "4.5");
        assert_eq!(c.parsed::<usize>("k").unwrap(), 10);
    }

    #[test]
    fn missing_subcommand_errors() {
        assert!(parse(&[]).is_err());
    }

    #[test]
    fn flag_without_value_errors() {
        assert!(parse(&argv(&["query", "--theta"])).is_err());
    }

    #[test]
    fn positional_after_subcommand_errors() {
        assert!(parse(&argv(&["query", "oops"])).is_err());
    }

    #[test]
    fn duplicate_flag_errors() {
        assert!(parse(&argv(&["q", "--a", "1", "--a", "2"])).is_err());
    }

    #[test]
    fn defaults_and_lists() {
        let c = parse(&argv(&["x", "--steps", "1, 2.5,3"])).unwrap();
        assert_eq!(c.parsed_or("k", 7usize).unwrap(), 7);
        assert_eq!(c.float_list("steps").unwrap().unwrap(), vec![1.0, 2.5, 3.0]);
        assert_eq!(c.float_list("nope").unwrap(), None);
        assert!(c.opt("steps").is_some());
    }

    #[test]
    fn bad_number_in_list_errors() {
        let c = parse(&argv(&["x", "--steps", "1,zzz"])).unwrap();
        assert!(c.float_list("steps").is_err());
    }
}
