//! Experiment runner: regenerates every table and figure of the paper.
//!
//! ```sh
//! cargo run --release -p graphrep-bench --bin experiments -- all
//! cargo run --release -p graphrep-bench --bin experiments -- table4 fig5time
//! cargo run --release -p graphrep-bench --bin experiments -- --size 1200 fig6scale
//! ```
//!
//! Results are printed as CSV and mirrored under `results/`.

use graphrep_bench::experiments;
use graphrep_bench::harness::Ctx;

fn main() {
    let mut ctx = Ctx::default();
    let mut ids: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--size" => {
                ctx.base_size = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--size needs a number"));
            }
            "--seed" => {
                ctx.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed needs a number"));
            }
            "--out" => {
                ctx.out_dir = args
                    .next()
                    .unwrap_or_else(|| die("--out needs a path"))
                    .into();
            }
            "--threads" => {
                let n: usize = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--threads needs a number (0 = auto)"));
                let _ = rayon::ThreadPoolBuilder::new()
                    .num_threads(n)
                    .build_global();
            }
            "--help" | "-h" => {
                usage();
                return;
            }
            id => ids.push(id.to_string()),
        }
    }
    if ids.is_empty() {
        usage();
        std::process::exit(2);
    }
    for id in &ids {
        if !experiments::run(&ctx, id) {
            eprintln!("unknown experiment id: {id}");
            usage();
            std::process::exit(2);
        }
    }
}

fn usage() {
    eprintln!("usage: experiments [--size N] [--seed S] [--out DIR] [--threads N] <id>...");
    eprintln!("ids: all {}", experiments::ALL.join(" "));
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}
