//! Thread-scaling experiment for the parallel GED execution layer.
//!
//! Builds the NB-Index and answers one representative query at 1, 2, 4, …
//! rayon workers over the same dataset and seed. Reports wall-clock speedup
//! for the build and the query phases and checks that the answer set — ids,
//! coverage, and the full π trajectory — is byte-identical to the
//! single-threaded run, which is the determinism contract of every parallel
//! phase (index build, candidate verification, π̂ batch updates).

use crate::harness::{f, timed, Ctx, Row};
use graphrep_core::{RelevanceQuery, Scorer};
use graphrep_datagen::{DatasetKind, DatasetSpec};

/// Minimum dataset size for the scaling run: small databases finish before
/// the workers amortize their startup.
const MIN_SIZE: usize = 500;

/// Wall-clock speedup at 1..=max_threads workers, identical answers required.
pub fn thread_scaling(ctx: &Ctx) {
    let size = ctx.base_size.max(MIN_SIZE);
    let data = DatasetSpec::new(DatasetKind::DudLike, size, ctx.seed).generate();
    let scorer = Scorer::MeanOfDims((0..data.db.dims().max(1)).collect());
    let rq = RelevanceQuery::top_quantile(&data.db, scorer, 0.5);
    let relevant = rq.relevant_set(&data.db);
    let theta = data.default_theta;
    let k = 10;

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let counts: Vec<usize> = [1usize, 2, 4, 8]
        .into_iter()
        .filter(|&t| t == 1 || t <= cores.max(4))
        .collect();

    let mut rows: Vec<Row> = Vec::new();
    let mut base: Option<(f64, f64, String)> = None;
    for &t in &counts {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(t)
            .build()
            .unwrap();
        let oracle = ctx.oracle(&data.db);
        let (index, build_wall) = timed(|| pool.install(|| ctx.nb_index(&data, oracle.clone())));
        oracle.clear();
        let ((answer, _), query_wall) =
            timed(|| pool.install(|| index.query(relevant.clone(), theta, k)));
        // The full answer — selection order, coverage, π trajectory — must
        // not depend on the worker count.
        let fingerprint = format!("{answer:?}");
        let (b0, q0, fp0) = base.get_or_insert((build_wall, query_wall, fingerprint.clone()));
        let identical = fingerprint == *fp0;
        assert!(identical, "answers diverged at {t} threads");
        rows.push(vec![
            t.to_string(),
            f(build_wall),
            f(query_wall),
            f(*b0 / build_wall),
            f(*q0 / query_wall),
            identical.to_string(),
        ]);
    }
    ctx.emit(
        "threads",
        &[
            "threads",
            "build_s",
            "query_s",
            "build_speedup",
            "query_speedup",
            "answers_identical",
        ],
        &rows,
    );
}
