//! Table 3 (dataset statistics), Table 4 (compression ratio and π across
//! models), and Fig 7 (qualitative traditional-vs-representative compare).

use super::standard_specs;
use crate::harness::{f, Ctx, Row};
use graphrep_baselines::{div_topk, greedy_disc, traditional_topk, DivVariant};
use graphrep_core::{evaluate_answer, BruteForceProvider, NeighborhoodProvider};
use graphrep_graph::stats::DatasetStats;

/// Table 3: structural statistics of the three datasets.
pub fn table3(ctx: &Ctx) {
    let mut rows: Vec<Row> = Vec::new();
    for spec in standard_specs(ctx.base_size, ctx.seed) {
        let data = spec.generate();
        let s = DatasetStats::compute(data.db.graphs());
        rows.push(vec![
            spec.kind.name().into(),
            f(s.avg_nodes),
            f(s.avg_edges),
            s.graphs.to_string(),
            s.node_label_count.to_string(),
            s.edge_label_count.to_string(),
        ]);
    }
    ctx.emit(
        "table3",
        &[
            "dataset",
            "avg_nodes",
            "avg_edges",
            "graphs",
            "node_labels",
            "edge_labels",
        ],
        &rows,
    );
}

/// Table 4: CR and π(A) for REP vs DIV(θ) vs DIV(2θ) at k ∈ {10,25,50,100},
/// plus the DisC row (full-coverage answer).
pub fn table4(ctx: &Ctx) {
    let mut rows: Vec<Row> = Vec::new();
    for spec in standard_specs(ctx.base_size, ctx.seed) {
        let data = spec.generate();
        let oracle = ctx.oracle(&data.db);
        let theta = data.default_theta;
        let query = data.default_query();
        let relevant = query.relevant_set(&data.db);
        let provider = BruteForceProvider::new(&oracle, &relevant);
        let index = ctx.nb_index(&data, oracle.clone());

        for k in [10usize, 25, 50, 100] {
            if k > relevant.len() {
                continue;
            }
            let (rep, _) = index.query(relevant.clone(), theta, k);
            let divt = div_topk(&provider, &relevant, theta, k, DivVariant::Theta);
            let div2 = div_topk(&provider, &relevant, theta, k, DivVariant::TwoTheta);
            let eval =
                |ids: &[u32]| evaluate_answer(ids, &relevant, |g| provider.neighborhood(g, theta));
            let (dte, d2e) = (eval(&divt.ids), eval(&div2.ids));
            rows.push(vec![
                spec.kind.name().into(),
                k.to_string(),
                f(rep.compression_ratio()),
                f(rep.pi()),
                f(dte.compression_ratio()),
                f(dte.pi()),
                f(d2e.compression_ratio()),
                f(d2e.pi()),
            ]);
        }
        // DisC row: full covering answer.
        let disc = greedy_disc(&provider, &relevant, theta, None);
        rows.push(vec![
            spec.kind.name().into(),
            "disc-full".into(),
            f(disc.covered as f64 / disc.ids.len().max(1) as f64),
            "1.0000".into(),
            String::new(),
            String::new(),
            disc.ids.len().to_string(),
            String::new(),
        ]);
    }
    ctx.emit(
        "table4",
        &[
            "dataset",
            "k",
            "rep_cr",
            "rep_pi",
            "div_theta_cr",
            "div_theta_pi",
            "div_2theta_cr",
            "div_2theta_pi",
        ],
        &rows,
    );
}

/// Fig 7: traditional top-5 vs representative top-5, with scaffold-family
/// ground truth and intra-answer structural distances.
pub fn fig7(ctx: &Ctx) {
    let spec = standard_specs(ctx.base_size, ctx.seed)[0];
    let data = spec.generate();
    let oracle = ctx.oracle(&data.db);
    let theta = data.default_theta;
    let query = data.default_query();
    let relevant = query.relevant_set(&data.db);
    let k = 5;

    let trad = traditional_topk(&data.db, &query, k);
    let index = ctx.nb_index(&data, oracle.clone());
    let (rep, _) = index.query(relevant.clone(), theta, k);

    let provider = BruteForceProvider::new(&oracle, &relevant);
    let avg_pairwise = |ids: &[u32]| {
        let mut tot = 0.0;
        let mut cnt = 0usize;
        for (i, &a) in ids.iter().enumerate() {
            for &b in &ids[i + 1..] {
                tot += oracle.distance(a, b);
                cnt += 1;
            }
        }
        if cnt == 0 {
            0.0
        } else {
            tot / cnt as f64
        }
    };
    let fams = |ids: &[u32]| {
        let mut v: Vec<u32> = ids.iter().map(|&g| data.family[g as usize]).collect();
        v.sort_unstable();
        v.dedup();
        v.len()
    };
    let mut rows: Vec<Row> = Vec::new();
    for (name, ids) in [("traditional", &trad), ("representative", &rep.ids)] {
        let e = evaluate_answer(ids, &relevant, |g| provider.neighborhood(g, theta));
        rows.push(vec![
            name.into(),
            format!("{ids:?}").replace(',', ";"),
            fams(ids).to_string(),
            f(avg_pairwise(ids)),
            f(e.pi()),
            f(e.compression_ratio()),
        ]);
    }
    ctx.emit(
        "fig7",
        &[
            "answer_set",
            "ids",
            "distinct_families",
            "avg_pairwise_ged",
            "pi",
            "cr",
        ],
        &rows,
    );
}
