//! Post-processing: digest the results CSVs into the headline numbers
//! EXPERIMENTS.md reports (speedup ranges, call reductions, shape checks).

use crate::harness::{f, Ctx, Row};
use std::collections::BTreeMap;
use std::fs;

/// A loaded CSV: header plus rows.
pub struct Csv {
    /// Column names.
    pub header: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Csv {
    /// Loads `results/<name>.csv` if present.
    pub fn load(ctx: &Ctx, name: &str) -> Option<Csv> {
        let text = fs::read_to_string(ctx.out_dir.join(format!("{name}.csv"))).ok()?;
        let mut lines = text.lines();
        let header = lines.next()?.split(',').map(str::to_owned).collect();
        let rows = lines
            .filter(|l| !l.trim().is_empty())
            .map(|l| l.split(',').map(str::to_owned).collect())
            .collect();
        Some(Csv { header, rows })
    }

    /// Column index by name.
    pub fn col(&self, name: &str) -> Option<usize> {
        self.header.iter().position(|h| h == name)
    }

    /// Parses cell `(row, col-name)` as f64.
    pub fn num(&self, row: &[String], name: &str) -> Option<f64> {
        let c = self.col(name)?;
        row.get(c)?.parse().ok()
    }
}

/// Min/max speedup of NB over the best competing technique per dataset.
fn speedups(csv: &Csv, group_col: &str, nb_col: &str, others: &[&str]) -> Vec<(String, f64, f64)> {
    let mut by_group: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    let Some(gc) = csv.col(group_col) else {
        return vec![];
    };
    for row in &csv.rows {
        let Some(nb) = csv.num(row, nb_col) else {
            continue;
        };
        if nb <= 0.0 {
            continue;
        }
        let best_other = others
            .iter()
            .filter_map(|o| csv.num(row, o))
            .fold(f64::INFINITY, f64::min);
        if best_other.is_finite() {
            by_group
                .entry(row[gc].clone())
                .or_default()
                .push(best_other / nb);
        }
    }
    by_group
        .into_iter()
        .filter(|(_, v)| !v.is_empty())
        .map(|(g, v)| {
            let lo = v.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = v.iter().copied().fold(0.0f64, f64::max);
            (g, lo, hi)
        })
        .collect()
}

/// Emits the summary table.
pub fn summary(ctx: &Ctx) {
    let mut rows: Vec<Row> = Vec::new();
    let sources = [
        ("fig5ik_time_vs_theta", "dataset"),
        ("fig6bd_scale", "dataset"),
        ("fig6eg_k", "dataset"),
    ];
    for (name, group) in sources {
        let Some(csv) = Csv::load(ctx, name) else {
            eprintln!("summary: {name}.csv missing — run the experiment first");
            continue;
        };
        for (dataset, lo, hi) in speedups(&csv, group, "nb_s", &["disc_s", "ctree_s", "div_s"]) {
            rows.push(vec![
                name.into(),
                dataset.clone(),
                "wall".into(),
                f(lo),
                f(hi),
            ]);
        }
        for (dataset, lo, hi) in speedups(
            &csv,
            group,
            "nb_calls",
            &["disc_calls", "ctree_calls", "div_calls"],
        ) {
            rows.push(vec![
                name.into(),
                dataset,
                "edit-distances".into(),
                f(lo),
                f(hi),
            ]);
        }
    }
    ctx.emit(
        "summary_speedups",
        &[
            "experiment",
            "dataset",
            "metric",
            "nb_speedup_min",
            "nb_speedup_max",
        ],
        &rows,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_with(name: &str, content: &str) -> Ctx {
        let dir = std::env::temp_dir().join(format!("graphrep-summary-{}", std::process::id()));
        let _ = fs::create_dir_all(&dir);
        fs::write(dir.join(format!("{name}.csv")), content).unwrap();
        Ctx {
            out_dir: dir,
            ..Default::default()
        }
    }

    #[test]
    fn csv_load_and_lookup() {
        let ctx = ctx_with("unit_src", "a,b\n1,2\n3,4\n");
        let csv = Csv::load(&ctx, "unit_src").unwrap();
        assert_eq!(csv.header, vec!["a", "b"]);
        assert_eq!(csv.rows.len(), 2);
        assert_eq!(csv.num(&csv.rows[1], "b"), Some(4.0));
        assert_eq!(csv.col("missing"), None);
    }

    #[test]
    fn speedups_compute_ratio_ranges() {
        let ctx = ctx_with(
            "unit_sp",
            "dataset,nb_s,disc_s,ctree_s,div_s\nD,1.0,10.0,5.0,8.0\nD,2.0,4.0,40.0,40.0\n",
        );
        let csv = Csv::load(&ctx, "unit_sp").unwrap();
        let s = speedups(&csv, "dataset", "nb_s", &["disc_s", "ctree_s", "div_s"]);
        assert_eq!(s.len(), 1);
        let (g, lo, hi) = &s[0];
        assert_eq!(g, "D");
        assert!((lo - 2.0).abs() < 1e-9, "{lo}"); // min(4/2, 5/1) = 2
        assert!((hi - 5.0).abs() < 1e-9, "{hi}");
    }

    #[test]
    fn missing_file_is_none() {
        let ctx = Ctx {
            out_dir: std::path::PathBuf::from("/nonexistent-summary-dir"),
            ..Default::default()
        };
        assert!(Csv::load(&ctx, "nope").is_none());
    }
}
