//! Cold-start persistence experiment (`cold_start`).
//!
//! Proves the binary index format's two headline numbers on a 500-graph
//! DudLike database: the on-disk index is at least 5× smaller than the JSON
//! fallback, and load-to-first-answer — deserialize `index.bin`, attach the
//! oracle, answer the default top-k query — is at least 10× faster than the
//! same path through `index.json`. Both are asserted in-line, at every
//! epoch of a small mutation script (fresh build, one insert, one remove),
//! together with byte-identical answers across the freshly built index and
//! both reloaded forms.
//!
//! When the `COLD_START_BUDGET` environment variable points at a budget
//! file (see `ci/cold_start_budget.json`), the binary load time and
//! bytes-per-graph must also stay within the checked-in ceilings.
//!
//! Mirrors a CSV to `results/cold_start.csv` and a machine-readable summary
//! to `results/BENCH_cold_start.json`.

use crate::harness::{f, timed, Ctx, Row};
use graphrep_core::NbIndex;
use graphrep_datagen::{DatasetKind, DatasetSpec};
use graphrep_graph::generate::mutate;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::fmt::Write as _;

/// Cold-start budget enforced by the CI smoke job (see
/// `ci/cold_start_budget.json`).
#[derive(Debug, serde::Deserialize)]
struct Budget {
    /// Ceiling on binary load-to-first-answer, milliseconds.
    max_load_ms: f64,
    /// Ceiling on `index.bin` size divided by live graph count.
    max_bytes_per_graph: f64,
}

/// Load repetitions per format; the minimum is reported, so scheduler
/// hiccups on shared runners don't fail the ratio assertions. The whole
/// timed loop costs ~`LOAD_REPS` × (json + bin) ≈ tens of milliseconds per
/// epoch — noise immunity is cheap here.
const LOAD_REPS: usize = 15;

struct EpochOut {
    epoch: u64,
    graphs: usize,
    json_bytes: usize,
    bin_bytes: usize,
    resident_bytes: usize,
    json_load_s: f64,
    bin_load_s: f64,
}

impl EpochOut {
    fn size_ratio(&self) -> f64 {
        self.json_bytes as f64 / self.bin_bytes.max(1) as f64
    }
    fn load_speedup(&self) -> f64 {
        self.json_load_s / self.bin_load_s.max(1e-12)
    }
}

/// Serializes both formats at the index's current epoch into `dir`, times
/// the full cold path through each — read the file, deserialize, answer a
/// minimal liveness query — and asserts answer identity (both the probe and
/// the full default query) against the in-memory index.
fn one_epoch(
    index: &NbIndex,
    dir: &std::path::Path,
    relevant: &[u32],
    theta: f64,
    k: usize,
) -> EpochOut {
    let json = index.save_json();
    let bin = index.save_bin();
    let oracle = index.oracle_arc();
    let epoch = index.epoch();
    let json_path = dir.join(format!("epoch{epoch}.json"));
    let bin_path = dir.join(format!("epoch{epoch}.bin"));
    std::fs::write(&json_path, &json).expect("write json index");
    std::fs::write(&bin_path, &bin).expect("write bin index");

    // Answer identity on the full default query, format by format (untimed:
    // the correctness contract is independent of the probe below).
    let (want, _) = index.query(relevant.to_vec(), theta, k);
    let want = format!("{want:?}");
    let from_json =
        NbIndex::load_json_at_epoch(&json, oracle.clone(), epoch).expect("json cold load");
    let (got, _) = from_json.query(relevant.to_vec(), theta, k);
    assert_eq!(
        format!("{got:?}"),
        want,
        "epoch {epoch}: JSON-loaded answers diverge from fresh index"
    );
    let from_bin = NbIndex::load_bin_at_epoch(&bin, oracle.clone(), epoch).expect("bin cold load");
    let (got, _) = from_bin.query(relevant.to_vec(), theta, k);
    assert_eq!(
        format!("{got:?}"),
        want,
        "epoch {epoch}: binary-loaded answers diverge from fresh index"
    );

    // The timed cold path: file read → deserialize → first answer. The
    // first answer is the smallest legitimate query (one relevant graph,
    // k = 1) — a serve-style liveness probe — so the measurement is about
    // the persistence formats, not about amortizing one big search.
    let probe = vec![relevant[0]];
    let (probe_want, _) = index.query(probe.clone(), theta, 1);
    let probe_want = format!("{probe_want:?}");
    let mut json_load_s = f64::INFINITY;
    let mut bin_load_s = f64::INFINITY;
    for _ in 0..LOAD_REPS {
        let (answer, t) = timed(|| {
            let text = std::fs::read_to_string(&json_path).expect("read json index");
            let idx =
                NbIndex::load_json_at_epoch(&text, oracle.clone(), epoch).expect("json cold load");
            idx.query(probe.clone(), theta, 1).0
        });
        assert_eq!(
            format!("{answer:?}"),
            probe_want,
            "epoch {epoch}: JSON probe diverges"
        );
        json_load_s = json_load_s.min(t);

        let (answer, t) = timed(|| {
            let bytes = std::fs::read(&bin_path).expect("read bin index");
            let idx =
                NbIndex::load_bin_at_epoch(&bytes, oracle.clone(), epoch).expect("bin cold load");
            idx.query(probe.clone(), theta, 1).0
        });
        assert_eq!(
            format!("{answer:?}"),
            probe_want,
            "epoch {epoch}: binary probe diverges"
        );
        bin_load_s = bin_load_s.min(t);
    }

    EpochOut {
        epoch,
        graphs: index.tree().len(),
        json_bytes: json.len(),
        bin_bytes: bin.len(),
        resident_bytes: index.memory_bytes(),
        json_load_s,
        bin_load_s,
    }
}

fn row(r: &EpochOut) -> Row {
    vec![
        r.epoch.to_string(),
        r.graphs.to_string(),
        r.json_bytes.to_string(),
        r.bin_bytes.to_string(),
        r.resident_bytes.to_string(),
        f(r.size_ratio()),
        format!("{:.6}", r.json_load_s),
        format!("{:.6}", r.bin_load_s),
        f(r.load_speedup()),
    ]
}

/// On-disk size and load-to-first-answer for binary vs JSON persistence,
/// with the 5×/10× targets asserted at every mutation epoch.
pub fn cold_start(ctx: &Ctx) {
    // The targets are calibrated for a database of at least 500 graphs; a
    // smaller `--size` would understate the fixed JSON parse overhead.
    let size = ctx.base_size.max(500);
    let data = DatasetSpec::new(DatasetKind::DudLike, size, ctx.seed).generate();
    let oracle = ctx.oracle(&data.db);
    let relevant = data.default_query().relevant_set(&data.db);
    let theta = data.default_theta;
    let k = 10;

    let (mut index, build_s) = timed(|| ctx.nb_index(&data, oracle));
    println!("# cold_start: built {size}-graph index in {build_s:.2}s");

    // Scratch directory for the persisted images the timed loads read back.
    let dir = std::env::temp_dir().join(format!("graphrep-cold-start-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");

    // Warm the oracle's distance cache with one throwaway query so every
    // timed load pays only deserialization + search, not first-contact GED.
    let _ = index.query(relevant.clone(), theta, k);

    let mut epochs = vec![one_epoch(&index, &dir, &relevant, theta, k)];

    // One insert and one remove: the mutation epochs the serve registry
    // persists after, so the format is proven on tombstoned state too.
    let mut rng = SmallRng::seed_from_u64(ctx.seed ^ 0xC01D);
    let node_alphabet: Vec<u32> = data.db.graph(0).node_labels().to_vec();
    let edge_alphabet: Vec<u32> = data.db.graph(0).edges().iter().map(|e| e.label).collect();
    let grown = mutate(
        &mut rng,
        data.db.graph(0),
        2,
        &node_alphabet,
        if edge_alphabet.is_empty() {
            &[0]
        } else {
            &edge_alphabet
        },
    );
    index.insert(grown).expect("insert");
    epochs.push(one_epoch(&index, &dir, &relevant, theta, k));

    let victim = relevant[relevant.len() / 2];
    index.remove(victim).expect("remove");
    let live: Vec<u32> = relevant
        .iter()
        .copied()
        .filter(|&g| index.tree().is_live(g))
        .collect();
    epochs.push(one_epoch(&index, &dir, &live, theta, k));
    let _ = std::fs::remove_dir_all(&dir);

    for r in &epochs {
        println!(
            "# cold_start[epoch {}]: {} vs {} bytes ({:.1}x smaller), load-to-first-answer {:.2}ms vs {:.2}ms ({:.1}x faster)",
            r.epoch,
            r.bin_bytes,
            r.json_bytes,
            r.size_ratio(),
            1e3 * r.bin_load_s,
            1e3 * r.json_load_s,
            r.load_speedup()
        );
        assert!(
            r.size_ratio() >= 5.0,
            "epoch {}: index.bin is only {:.2}x smaller than JSON (target 5x)",
            r.epoch,
            r.size_ratio()
        );
        assert!(
            r.load_speedup() >= 10.0,
            "epoch {}: binary load-to-first-answer is only {:.2}x faster than JSON (target 10x)",
            r.epoch,
            r.load_speedup()
        );
    }

    let rows: Vec<Row> = epochs.iter().map(row).collect();
    ctx.emit(
        "cold_start",
        &[
            "epoch",
            "graphs",
            "json_bytes",
            "bin_bytes",
            "resident_bytes",
            "size_ratio",
            "json_load_s",
            "bin_load_s",
            "load_speedup",
        ],
        &rows,
    );

    let mut json = String::from("{\n  \"epochs\": [\n");
    for (i, r) in epochs.iter().enumerate() {
        let sep = if i + 1 < epochs.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"epoch\":{},\"graphs\":{},\"json_bytes\":{},\"bin_bytes\":{},\"resident_bytes\":{},\"size_ratio\":{:.4},\"json_load_s\":{:.6},\"bin_load_s\":{:.6},\"load_speedup\":{:.4}}}{}",
            r.epoch,
            r.graphs,
            r.json_bytes,
            r.bin_bytes,
            r.resident_bytes,
            r.size_ratio(),
            r.json_load_s,
            r.bin_load_s,
            r.load_speedup(),
            sep
        );
    }
    let worst_ratio = epochs
        .iter()
        .map(EpochOut::size_ratio)
        .fold(f64::INFINITY, f64::min);
    let worst_speedup = epochs
        .iter()
        .map(EpochOut::load_speedup)
        .fold(f64::INFINITY, f64::min);
    let _ = writeln!(
        json,
        "  ],\n  \"build_s\": {build_s:.4},\n  \"min_size_ratio\": {worst_ratio:.4},\n  \"min_load_speedup\": {worst_speedup:.4}\n}}"
    );
    let _ = std::fs::create_dir_all(&ctx.out_dir);
    let path = ctx.out_dir.join("BENCH_cold_start.json");
    if std::fs::write(&path, &json).is_err() {
        eprintln!("warning: could not write {}", path.display());
    }

    // CI smoke budget: binary load time and bytes-per-graph ceilings.
    if let Ok(budget_path) = std::env::var("COLD_START_BUDGET") {
        let text = std::fs::read_to_string(&budget_path)
            .unwrap_or_else(|e| panic!("cannot read budget file {budget_path}: {e}"));
        let budget: Budget = serde_json::from_str(&text)
            .unwrap_or_else(|e| panic!("bad budget file {budget_path}: {e:?}"));
        for r in &epochs {
            let load_ms = 1e3 * r.bin_load_s;
            let per_graph = r.bin_bytes as f64 / r.graphs.max(1) as f64;
            assert!(
                load_ms <= budget.max_load_ms,
                "epoch {}: binary load {load_ms:.2}ms exceeds budget {}ms (from {budget_path})",
                r.epoch,
                budget.max_load_ms
            );
            assert!(
                per_graph <= budget.max_bytes_per_graph,
                "epoch {}: {per_graph:.1} bytes/graph exceeds budget {} (from {budget_path})",
                r.epoch,
                budget.max_bytes_per_graph
            );
        }
        println!(
            "# cold_start: within budget (load <= {}ms, <= {} bytes/graph)",
            budget.max_load_ms, budget.max_bytes_per_graph
        );
    }
}
