//! Tiered GED filter pipeline experiment (`ged_tiers`).
//!
//! Runs the full index-build → queries → baseline-greedy workload (one
//! offline build amortized over the default top-quartile query plus a
//! broader top-half query, the paper's online scenario) with the oracle's
//! filter tiers on and off, reporting per-tier hit rates, engine
//! invocations, exact searches, and wall-clock. Asserts the PR's two
//! non-negotiables in-line: the answer fingerprint is byte-identical at
//! 1/4/8 worker threads *and* with tiers on/off, and (when the
//! `GED_TIERS_BUDGET` environment variable points at a budget file) the
//! tiered engine-invocation count stays within the checked-in budget.
//!
//! Mirrors a CSV to `results/ged_tiers.csv` and a machine-readable summary
//! to `results/BENCH_ged_tiers.json`.

use crate::harness::{f, timed, Ctx, Row};
use graphrep_core::{baseline_greedy, BruteForceProvider, RelevanceQuery, Scorer};
use graphrep_datagen::{Dataset, DatasetKind, DatasetSpec};
use graphrep_ged::TierStats;
use std::fmt::Write as _;

/// Engine-invocation budget enforced by the CI smoke job (see
/// `ci/ged_tiers_budget.json`): the tiered DudLike run at one thread must
/// not enter the engine more often than this.
#[derive(Debug, serde::Deserialize)]
struct Budget {
    max_engine_entered: u64,
}

struct RunOut {
    dataset: &'static str,
    threads: usize,
    tiers: bool,
    /// Paper cost unit: oracle computations + rejections.
    engine_calls: u64,
    /// Engine calls that actually entered the engine (tier rejects excluded).
    engine_entered: u64,
    ub_accepts: u64,
    exact_searches: u64,
    bp_calls: u64,
    tier: TierStats,
    build_s: f64,
    query_s: f64,
    query2_s: f64,
    greedy_s: f64,
    /// Wall-clock of the isolated Thm-5 band-scan sweep (`BAND_SCAN_REPS`
    /// passes of `candidates_into` over the relevant set) — the SoA vantage
    /// hot loop with no GED or tree work in the way.
    band_scan_s: f64,
    fingerprint: u64,
}

/// Sweep repetitions for the band-scan microbench: enough passes that the
/// per-candidate cost dominates timer noise even on small CI datasets.
const BAND_SCAN_REPS: usize = 200;

/// FNV-1a over the debug rendering of the answers: a compact fingerprint
/// whose equality across runs is the determinism check.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn one_run(ctx: &Ctx, name: &'static str, data: &Dataset, threads: usize, tiers: bool) -> RunOut {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .unwrap();
    // A budget large enough that no pair falls back to the bipartite bound:
    // both the hint tier (gated on a fully exact engine) and the tiers-on ==
    // tiers-off determinism assertion require every engine verdict to be
    // about the true distance. The handful of hard pairs this admits cost a
    // few extra seconds per run (measured), not minutes.
    let cfg = graphrep_ged::GedConfig {
        budget: 4_000_000,
        ..graphrep_ged::GedConfig::default()
    };
    let oracle = data.db.oracle(cfg);
    oracle.set_tiers_enabled(tiers);
    let relevant = data.default_query().relevant_set(&data.db);
    let theta = data.default_theta;
    let k = 10;
    let (index, build_s) = timed(|| pool.install(|| ctx.nb_index(data, oracle.clone())));
    let ((answer, _), query_s) = timed(|| pool.install(|| index.query(relevant.clone(), theta, k)));
    // A second, broader query against the same index — the paper's workload
    // is one offline build amortized over many online queries, and the
    // verification phase is where the filter tiers act. Top half instead of
    // top quartile (same natural scorer shape as `default_query`) and a
    // zoomed-out θ, the interactive-refinement move of Sec 7: every pair the
    // first query rejected at θ must be re-verified at the looser radius, so
    // the untiered oracle re-enters the engine while the tiers re-reject
    // from the cached profiles.
    let broad = RelevanceQuery::top_quantile(
        &data.db,
        Scorer::MeanOfDims((0..data.db.dims()).collect()),
        0.5,
    )
    .relevant_set(&data.db);
    let theta2 = theta * 1.25;
    let ((answer2, _), query2_s) = timed(|| pool.install(|| index.query(broad, theta2, k)));
    let provider = BruteForceProvider::new(index.oracle(), &relevant);
    let (greedy, greedy_s) =
        timed(|| pool.install(|| baseline_greedy(&provider, &relevant, theta, k)));
    // Band-scan microbench: the candidate sweep (binary searches over the
    // sorted per-VP slabs + the all-bands verify) isolated from every other
    // index tier, so the CSV exposes the vantage-table scan cost directly.
    let vantage = index.vantage();
    let (scanned, band_scan_s) = timed(|| {
        let mut buf = Vec::new();
        let mut total = 0usize;
        for _ in 0..BAND_SCAN_REPS {
            for &g in &relevant {
                vantage.candidates_into(g, theta, &mut buf);
                total += buf.len();
            }
        }
        total
    });
    std::hint::black_box(scanned);
    let stats = oracle.stats();
    let tier = oracle.tier_stats();
    let snap = oracle.engine().counters().snapshot();
    let tier_rejects =
        tier.size_rejects + tier.label_rejects + tier.degree_rejects + tier.vantage_lb_rejects;
    let engine_calls = stats.distance_computations + stats.within_rejections;
    RunOut {
        dataset: name,
        threads,
        tiers,
        engine_calls,
        engine_entered: engine_calls.saturating_sub(tier_rejects),
        ub_accepts: stats.ub_accepts,
        exact_searches: snap.exact_searches,
        bp_calls: snap.bp_calls,
        tier,
        build_s,
        query_s,
        query2_s,
        greedy_s,
        band_scan_s,
        fingerprint: fnv1a(&format!("{answer:?}|{answer2:?}|{greedy:?}")),
    }
}

fn row(r: &RunOut) -> Row {
    vec![
        r.dataset.to_string(),
        r.threads.to_string(),
        r.tiers.to_string(),
        r.engine_calls.to_string(),
        r.engine_entered.to_string(),
        r.exact_searches.to_string(),
        r.bp_calls.to_string(),
        r.tier.size_rejects.to_string(),
        r.tier.label_rejects.to_string(),
        r.tier.degree_rejects.to_string(),
        r.tier.vantage_lb_rejects.to_string(),
        r.ub_accepts.to_string(),
        f(r.build_s),
        f(r.query_s),
        f(r.query2_s),
        f(r.greedy_s),
        f(r.band_scan_s),
        format!("{:016x}", r.fingerprint),
    ]
}

fn json_run(r: &RunOut) -> String {
    format!(
        concat!(
            "{{\"dataset\":\"{}\",\"threads\":{},\"tiers\":{},",
            "\"engine_calls\":{},\"engine_entered\":{},\"exact_searches\":{},",
            "\"bp_calls\":{},\"size_rejects\":{},\"label_rejects\":{},",
            "\"degree_rejects\":{},\"vantage_lb_rejects\":{},\"ub_accepts\":{},",
            "\"build_s\":{:.4},\"query_s\":{:.4},\"query2_s\":{:.4},",
            "\"greedy_s\":{:.4},\"band_scan_s\":{:.6},\"fingerprint\":\"{:016x}\"}}"
        ),
        r.dataset,
        r.threads,
        r.tiers,
        r.engine_calls,
        r.engine_entered,
        r.exact_searches,
        r.bp_calls,
        r.tier.size_rejects,
        r.tier.label_rejects,
        r.tier.degree_rejects,
        r.tier.vantage_lb_rejects,
        r.ub_accepts,
        r.build_s,
        r.query_s,
        r.query2_s,
        r.greedy_s,
        r.band_scan_s,
        r.fingerprint
    )
}

/// Per-tier hit rates, engine calls, and wall-clock with tiers on/off,
/// plus the determinism and budget assertions.
pub fn ged_tiers(ctx: &Ctx) {
    let size = ctx.base_size;
    let mut runs: Vec<RunOut> = Vec::new();

    // DudLike across thread counts × tiers: the determinism matrix.
    let dud = DatasetSpec::new(DatasetKind::DudLike, size, ctx.seed).generate();
    for threads in [1usize, 4, 8] {
        for tiers in [true, false] {
            runs.push(one_run(ctx, "dud", &dud, threads, tiers));
        }
    }
    let dud_fp = runs[0].fingerprint;
    for r in &runs {
        assert_eq!(
            r.fingerprint, dud_fp,
            "answers diverged at {} threads, tiers={}",
            r.threads, r.tiers
        );
    }

    // The other standard datasets: tiers on/off at one thread.
    for (name, kind, seed) in [
        ("dblp", DatasetKind::DblpLike, ctx.seed + 1),
        ("amazon", DatasetKind::AmazonLike, ctx.seed + 2),
    ] {
        let data = DatasetSpec::new(kind, size, seed).generate();
        let on = one_run(ctx, name, &data, 1, true);
        let off = one_run(ctx, name, &data, 1, false);
        assert_eq!(
            on.fingerprint, off.fingerprint,
            "{name}: tiered answers diverge from untiered"
        );
        runs.push(on);
        runs.push(off);
    }

    let rows: Vec<Row> = runs.iter().map(row).collect();
    ctx.emit(
        "ged_tiers",
        &[
            "dataset",
            "threads",
            "tiers",
            "engine_calls",
            "engine_entered",
            "exact_searches",
            "bp_calls",
            "size_rejects",
            "label_rejects",
            "degree_rejects",
            "vantage_lb_rejects",
            "ub_accepts",
            "build_s",
            "query_s",
            "query2_s",
            "greedy_s",
            "band_scan_s",
            "fingerprint",
        ],
        &rows,
    );

    // Headline reductions: tiered vs untiered engine entries per dataset and
    // aggregated over the whole single-thread standard-dataset workload
    // (build + two-query verification + greedy, the paper's cost unit).
    let one_thread = |tiers: bool| -> Vec<&RunOut> {
        runs.iter()
            .filter(|r| r.threads == 1 && r.tiers == tiers)
            .collect()
    };
    let reduction_of = |on: u64, off: u64| 1.0 - on as f64 / off.max(1) as f64;
    let mut per_dataset = String::new();
    for (on, off) in one_thread(true).iter().zip(one_thread(false).iter()) {
        let red = reduction_of(on.engine_entered, off.engine_entered);
        println!(
            "# ged_tiers[{}]: engine entries {} -> {} ({:.1}% fewer), exact searches {} -> {}",
            on.dataset,
            off.engine_entered,
            on.engine_entered,
            100.0 * red,
            off.exact_searches,
            on.exact_searches
        );
        let _ = writeln!(
            per_dataset,
            "  \"{}_engine_entered_reduction\": {red:.4},",
            on.dataset
        );
    }
    let on_total: u64 = one_thread(true).iter().map(|r| r.engine_entered).sum();
    let off_total: u64 = one_thread(false).iter().map(|r| r.engine_entered).sum();
    let on_exact: u64 = one_thread(true).iter().map(|r| r.exact_searches).sum();
    let off_exact: u64 = one_thread(false).iter().map(|r| r.exact_searches).sum();
    let reduction = reduction_of(on_total, off_total);
    let exact_reduction = reduction_of(on_exact, off_exact);
    println!(
        "# ged_tiers: engine entries {off_total} -> {on_total} ({:.1}% fewer), exact searches {off_exact} -> {on_exact} ({:.1}% fewer)",
        100.0 * reduction,
        100.0 * exact_reduction
    );

    let mut json = String::from("{\n  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        let sep = if i + 1 < runs.len() { "," } else { "" };
        let _ = writeln!(json, "    {}{}", json_run(r), sep);
    }
    let _ = writeln!(
        json,
        "  ],\n{per_dataset}  \"engine_entered_reduction\": {reduction:.4},\n  \"exact_search_reduction\": {exact_reduction:.4}\n}}"
    );
    let _ = std::fs::create_dir_all(&ctx.out_dir);
    let path = ctx.out_dir.join("BENCH_ged_tiers.json");
    if std::fs::write(&path, &json).is_err() {
        eprintln!("warning: could not write {}", path.display());
    }

    // CI smoke budget: the tiered single-thread DudLike run must not exceed
    // the checked-in engine-entry budget.
    if let Ok(budget_path) = std::env::var("GED_TIERS_BUDGET") {
        let dud_on = runs
            .iter()
            .find(|r| r.dataset == "dud" && r.threads == 1 && r.tiers)
            .unwrap();
        let text = std::fs::read_to_string(&budget_path)
            .unwrap_or_else(|e| panic!("cannot read budget file {budget_path}: {e}"));
        let budget: Budget = serde_json::from_str(&text)
            .unwrap_or_else(|e| panic!("bad budget file {budget_path}: {e:?}"));
        assert!(
            dud_on.engine_entered <= budget.max_engine_entered,
            "engine entries {} exceed budget {} (from {budget_path})",
            dud_on.engine_entered,
            budget.max_engine_entered
        );
        println!(
            "# ged_tiers: within budget ({} <= {})",
            dud_on.engine_entered, budget.max_engine_entered
        );
    }
}
