//! One module per group of paper experiments; `run` dispatches by id.
//!
//! Every function prints CSV to stdout and mirrors it under `results/`.
//! DESIGN.md §5 maps experiment ids to paper tables/figures.

pub mod ablation;
pub mod build;
pub mod cold_start;
pub mod distances;
pub mod hybrid;
pub mod motivation;
pub mod mutate;
pub mod quality;
pub mod refinement;
pub mod scalability;
pub mod serve_cache;
pub mod serve_load;
pub mod shard_scale;
pub mod summary;
pub mod threads;
pub mod tiers;

use crate::harness::Ctx;

/// All experiment ids, in suggested execution order.
pub const ALL: &[&str] = &[
    "table3",
    "fig2a",
    "fig2b",
    "fig5dist",
    "fig5fpr",
    "table4",
    "fig7",
    "fig5time",
    "fig6a",
    "fig6scale",
    "fig6k",
    "fig6h",
    "fig6i",
    "fig6j",
    "fig6build",
    "ablation-vp",
    "ablation-b",
    "ablation-bounds",
    "hybrid",
    "threads",
    "ged_tiers",
    "cold_start",
    "serve_load",
    "serve_cache",
    "mutate_churn",
    "shard_scale",
    "summary",
];

/// Runs the experiment `id`; returns false if unknown.
pub fn run(ctx: &Ctx, id: &str) -> bool {
    match id {
        "table3" => quality::table3(ctx),
        "table4" => quality::table4(ctx),
        "fig7" => quality::fig7(ctx),
        "fig2a" => motivation::fig2a(ctx),
        "fig2b" => motivation::fig2b(ctx),
        "fig5dist" => distances::fig5dist(ctx),
        "fig5fpr" => distances::fig5fpr(ctx),
        "fig5time" => scalability::fig5time(ctx),
        "fig6a" => scalability::fig6a(ctx),
        "fig6scale" => scalability::fig6scale(ctx),
        "fig6k" => scalability::fig6k(ctx),
        "fig6h" => scalability::fig6h(ctx),
        "fig6i" => refinement::fig6i(ctx),
        "fig6j" => refinement::fig6j(ctx),
        "fig6build" => build::fig6build(ctx),
        "ablation-vp" => ablation::vp_sweep(ctx),
        "ablation-b" => ablation::branching_sweep(ctx),
        "ablation-bounds" => ablation::bounds_ablation(ctx),
        "hybrid" => hybrid::hybrid_scale(ctx),
        "threads" => threads::thread_scaling(ctx),
        "ged_tiers" => tiers::ged_tiers(ctx),
        "cold_start" => cold_start::cold_start(ctx),
        "serve_load" => serve_load::serve_load(ctx),
        "serve_cache" => serve_cache::serve_cache(ctx),
        "mutate_churn" => mutate::mutate_churn(ctx),
        "shard_scale" => shard_scale::shard_scale(ctx),
        "summary" => summary::summary(ctx),
        "all" => {
            for id in ALL {
                eprintln!("== running {id} ==");
                run(ctx, id);
            }
        }
        _ => return false,
    }
    true
}

/// The three paper-dataset stand-ins at a given size.
pub fn standard_specs(size: usize, seed: u64) -> Vec<graphrep_datagen::DatasetSpec> {
    use graphrep_datagen::{DatasetKind, DatasetSpec};
    vec![
        DatasetSpec::new(DatasetKind::DudLike, size, seed),
        DatasetSpec::new(DatasetKind::DblpLike, size, seed + 1),
        DatasetSpec::new(DatasetKind::AmazonLike, size, seed + 2),
    ]
}
