//! Fig 5(i)–(k) (query time vs θ), Fig 6(a) (ladder-miss penalty),
//! Fig 6(b)–(d) (vs dataset size), Fig 6(e)–(g) (vs k), Fig 6(h) (vs dims).
//!
//! Indexes are built **once** per (dataset, technique) and reused across
//! sweep points — index construction is offline in the paper's methodology.
//! Before every measured query the distance cache is cleared, so each
//! measurement reflects a fresh query's wall time and engine calls.

use super::standard_specs;
use crate::harness::{f, timed, Ctx, Row};
use graphrep_baselines::providers::{relevant_mask, CTreeProvider, MTreeProvider, MatrixProvider};
use graphrep_baselines::{div_topk, greedy_disc, CTree, DivVariant, MTree, MatrixIndex};
use graphrep_core::{baseline_greedy, NbIndex, NbIndexConfig, RelevanceQuery, Scorer};
use graphrep_datagen::{Dataset, DatasetSpec};
use graphrep_ged::DistanceOracle;
use graphrep_graph::GraphId;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;

/// One technique's measurement at a single configuration.
pub struct Measure {
    /// Query wall time (seconds).
    pub wall: f64,
    /// Edit-distance engine calls during the query.
    pub calls: u64,
}

/// Pre-built per-dataset benchmark state: every technique's index over its
/// own oracle.
pub struct TechBench {
    nb_oracle: Arc<DistanceOracle>,
    nb: NbIndex,
    ct_oracle: Arc<DistanceOracle>,
    ctree: CTree,
    mt_oracle: Arc<DistanceOracle>,
    mtree: MTree,
    matrix: Option<MatrixIndex>,
}

impl TechBench {
    /// Builds all indexes for `data`. The matrix comparator is opt-in — its
    /// build is quadratic in exact edit distances.
    pub fn build(ctx: &Ctx, data: &Dataset, with_matrix: bool) -> Self {
        let nb_oracle = ctx.oracle(&data.db);
        let nb = ctx.nb_index(data, nb_oracle.clone());
        let ct_oracle = ctx.oracle(&data.db);
        let mut rng = SmallRng::seed_from_u64(ctx.seed);
        let ctree = CTree::build(&ct_oracle, &mut rng);
        let mt_oracle = ctx.oracle(&data.db);
        let mtree = MTree::build(&mt_oracle, &mut rng);
        let matrix = with_matrix.then(|| MatrixIndex::build(&ctx.oracle(&data.db)));
        Self {
            nb_oracle,
            nb,
            ct_oracle,
            ctree,
            mt_oracle,
            mtree,
            matrix,
        }
    }

    /// NB-Index: session initialization + search-and-update, fresh cache.
    pub fn nb(&self, relevant: &[GraphId], theta: f64, k: usize) -> Measure {
        self.nb_oracle.clear();
        let (_, wall) = timed(|| {
            let session = self.nb.start_session(relevant.to_vec());
            session.run(theta, k)
        });
        Measure {
            wall,
            calls: self.nb_oracle.engine_calls(),
        }
    }

    /// DisC truncated at k over its M-tree.
    pub fn disc(&self, relevant: &[GraphId], theta: f64, k: usize) -> Measure {
        self.mt_oracle.clear();
        let mask = relevant_mask(self.mt_oracle.len(), relevant);
        let provider = MTreeProvider {
            tree: &self.mtree,
            oracle: &self.mt_oracle,
            relevant: mask,
        };
        let (_, wall) = timed(|| greedy_disc(&provider, relevant, theta, Some(k)));
        Measure {
            wall,
            calls: self.mt_oracle.engine_calls(),
        }
    }

    /// Baseline greedy over the C-tree.
    pub fn ctree_greedy(&self, relevant: &[GraphId], theta: f64, k: usize) -> Measure {
        self.ct_oracle.clear();
        let mask = relevant_mask(self.ct_oracle.len(), relevant);
        let provider = CTreeProvider {
            tree: &self.ctree,
            oracle: &self.ct_oracle,
            relevant: mask,
        };
        let (_, wall) = timed(|| baseline_greedy(&provider, relevant, theta, k));
        Measure {
            wall,
            calls: self.ct_oracle.engine_calls(),
        }
    }

    /// DIV(θ) over the shared C-tree (diversity graph from range queries).
    pub fn div(&self, relevant: &[GraphId], theta: f64, k: usize) -> Measure {
        self.ct_oracle.clear();
        let mask = relevant_mask(self.ct_oracle.len(), relevant);
        let provider = CTreeProvider {
            tree: &self.ctree,
            oracle: &self.ct_oracle,
            relevant: mask,
        };
        let (_, wall) = timed(|| div_topk(&provider, relevant, theta, k, DivVariant::Theta));
        Measure {
            wall,
            calls: self.ct_oracle.engine_calls(),
        }
    }

    /// Baseline greedy over the precomputed matrix (zero engine calls).
    pub fn matrix(&self, relevant: &[GraphId], theta: f64, k: usize) -> Option<Measure> {
        let matrix = self.matrix.as_ref()?;
        let mask = relevant_mask(matrix.matrix().len(), relevant);
        let provider = MatrixProvider {
            matrix,
            relevant: mask,
        };
        let (_, wall) = timed(|| baseline_greedy(&provider, relevant, theta, k));
        Some(Measure { wall, calls: 0 })
    }
}

fn push_measures(rows: &mut Vec<Row>, label: Vec<String>, ms: &[Measure]) {
    let mut row = label;
    for m in ms {
        row.push(f(m.wall));
        row.push(m.calls.to_string());
    }
    rows.push(row);
}

const TECH_HEADER: &[&str] = &[
    "nb_s",
    "nb_calls",
    "disc_s",
    "disc_calls",
    "ctree_s",
    "ctree_calls",
    "div_s",
    "div_calls",
];

/// Fig 5(i)–(k): query time against θ, all techniques. The distance-matrix
/// inset runs on the DUD-like dataset only, exactly as in the paper.
pub fn fig5time(ctx: &Ctx) {
    let mut rows: Vec<Row> = Vec::new();
    for (di, spec) in standard_specs(ctx.base_size, ctx.seed)
        .into_iter()
        .enumerate()
    {
        let data = spec.generate();
        let relevant = data.default_query().relevant_set(&data.db);
        let k = 10;
        let bench = TechBench::build(ctx, &data, di == 0);
        for step in [0.5, 0.75, 1.0, 1.25, 1.5] {
            let theta = data.default_theta * step;
            let ms = vec![
                bench.nb(&relevant, theta, k),
                bench.disc(&relevant, theta, k),
                bench.ctree_greedy(&relevant, theta, k),
                bench.div(&relevant, theta, k),
            ];
            let mut row = vec![spec.kind.name().to_string(), f(theta)];
            for m in &ms {
                row.push(f(m.wall));
                row.push(m.calls.to_string());
            }
            match bench.matrix(&relevant, theta, k) {
                Some(m) => row.push(f(m.wall)),
                None => row.push(String::new()),
            }
            rows.push(row);
        }
    }
    let mut header = vec!["dataset", "theta"];
    header.extend_from_slice(TECH_HEADER);
    header.push("matrix_s");
    ctx.emit("fig5ik_time_vs_theta", &header, &rows);
}

/// Fig 5(l)/6(a): penalty as the gap between θ and the nearest indexed
/// threshold grows. One index; only the ladder is swapped per point.
pub fn fig6a(ctx: &Ctx) {
    let mut rows: Vec<Row> = Vec::new();
    for spec in standard_specs(ctx.base_size, ctx.seed).into_iter().take(2) {
        let data = spec.generate();
        let relevant = data.default_query().relevant_set(&data.db);
        let theta = data.default_theta;
        let oracle = ctx.oracle(&data.db);
        let mut index = NbIndex::build(
            oracle.clone(),
            NbIndexConfig {
                num_vps: 16,
                seed: ctx.seed,
                ladder: vec![],
                ..NbIndexConfig::default()
            },
        );
        for delta in [0.0, 1.0, 2.0, 4.0, 8.0] {
            // Only the slot θ + Δ (plus a far sentinel) is indexed.
            index.set_ladder(vec![theta + delta, theta + delta + 100.0]);
            oracle.clear();
            let (_, wall) = timed(|| {
                let session = index.start_session(relevant.clone());
                session.run(theta, 10)
            });
            rows.push(vec![
                spec.kind.name().into(),
                f(delta),
                f(wall),
                oracle.engine_calls().to_string(),
            ]);
        }
    }
    ctx.emit(
        "fig6a_ladder_gap",
        &["dataset", "delta_to_indexed_theta", "nb_s", "nb_calls"],
        &rows,
    );
}

/// Fig 6(b)–(d): query time against dataset size.
pub fn fig6scale(ctx: &Ctx) {
    let mut rows: Vec<Row> = Vec::new();
    let top = ctx.base_size;
    let sizes: Vec<usize> = [top / 4, top / 2, 3 * top / 4, top]
        .into_iter()
        .filter(|&s| s >= 50)
        .collect();
    for spec in standard_specs(top, ctx.seed) {
        let full = spec.generate();
        for &n in &sizes {
            let data = Dataset {
                db: full.db.prefix(n),
                family: full.family[..n].to_vec(),
                spec: DatasetSpec { size: n, ..spec },
                default_theta: full.default_theta,
                default_ladder: full.default_ladder.clone(),
            };
            let relevant = data.default_query().relevant_set(&data.db);
            let k = 10;
            let bench = TechBench::build(ctx, &data, false);
            let theta = data.default_theta;
            let ms = vec![
                bench.nb(&relevant, theta, k),
                bench.disc(&relevant, theta, k),
                bench.ctree_greedy(&relevant, theta, k),
                bench.div(&relevant, theta, k),
            ];
            push_measures(&mut rows, vec![spec.kind.name().into(), n.to_string()], &ms);
        }
    }
    let mut header = vec!["dataset", "db_size"];
    header.extend_from_slice(TECH_HEADER);
    ctx.emit("fig6bd_scale", &header, &rows);
}

/// Fig 6(e)–(g): query time against k (one index build per dataset).
pub fn fig6k(ctx: &Ctx) {
    let mut rows: Vec<Row> = Vec::new();
    for spec in standard_specs(ctx.base_size, ctx.seed) {
        let data = spec.generate();
        let relevant = data.default_query().relevant_set(&data.db);
        let bench = TechBench::build(ctx, &data, false);
        for k in [5usize, 10, 25, 50, 100] {
            if k > relevant.len() {
                continue;
            }
            let theta = data.default_theta;
            let ms = vec![
                bench.nb(&relevant, theta, k),
                bench.disc(&relevant, theta, k),
                bench.ctree_greedy(&relevant, theta, k),
                bench.div(&relevant, theta, k),
            ];
            push_measures(&mut rows, vec![spec.kind.name().into(), k.to_string()], &ms);
        }
    }
    let mut header = vec!["dataset", "k"];
    header.extend_from_slice(TECH_HEADER);
    ctx.emit("fig6eg_k", &header, &rows);
}

/// Fig 6(h): query time against the number of feature dimensions (DUD-like).
pub fn fig6h(ctx: &Ctx) {
    let spec = standard_specs(ctx.base_size, ctx.seed)[0];
    let data = spec.generate();
    let bench = TechBench::build(ctx, &data, false);
    let mut rows: Vec<Row> = Vec::new();
    for d in [1usize, 2, 4, 6, 8, 10] {
        let query = data.query_with_dims(d, ctx.seed + d as u64);
        let relevant = query.relevant_set(&data.db);
        let m = bench.nb(&relevant, data.default_theta, 10);
        let c = bench.ctree_greedy(&relevant, data.default_theta, 10);
        rows.push(vec![
            d.to_string(),
            relevant.len().to_string(),
            f(m.wall),
            m.calls.to_string(),
            f(c.wall),
            c.calls.to_string(),
        ]);
    }
    ctx.emit(
        "fig6h_dims",
        &[
            "dims",
            "relevant",
            "nb_s",
            "nb_calls",
            "ctree_s",
            "ctree_calls",
        ],
        &rows,
    );
}

/// Helper reused by refinement experiments: a default query's relevant set.
pub fn default_relevant(data: &Dataset) -> Vec<GraphId> {
    RelevanceQuery::top_quantile(
        &data.db,
        Scorer::MeanOfDims((0..data.db.dims().max(1)).collect()),
        0.75,
    )
    .relevant_set(&data.db)
}
