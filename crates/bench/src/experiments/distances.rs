//! Fig 5(a)–(e): distance distributions, and Fig 5(f)–(h): observed vantage
//! point false-positive rates against the Eq. 11 theoretical bound.

use super::standard_specs;
use crate::harness::{f, Ctx, Row};
use graphrep_datagen::Dataset;
use graphrep_ged::DistanceOracle;
use graphrep_metric::{fpr, DistanceDistribution, VantageTable};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Samples `pairs` random pairwise distances.
pub fn sample_distances(oracle: &DistanceOracle, pairs: usize, seed: u64) -> DistanceDistribution {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = oracle.len() as u32;
    let mut vals = Vec::with_capacity(pairs);
    if n >= 2 {
        for _ in 0..pairs {
            let i = rng.gen_range(0..n);
            let mut j = rng.gen_range(0..n);
            while j == i {
                j = rng.gen_range(0..n);
            }
            vals.push(oracle.distance(i, j));
        }
    }
    DistanceDistribution::new(vals)
}

/// Fig 5(a)–(e): cumulative distributions and histograms per dataset.
pub fn fig5dist(ctx: &Ctx) {
    let mut cdf_rows: Vec<Row> = Vec::new();
    let mut hist_rows: Vec<Row> = Vec::new();
    let mut stat_rows: Vec<Row> = Vec::new();
    for spec in standard_specs(ctx.base_size.min(400), ctx.seed) {
        let data = spec.generate();
        let oracle = ctx.oracle(&data.db);
        let dist = sample_distances(&oracle, 3000, ctx.seed);
        for (x, p) in dist.cdf_series(30) {
            cdf_rows.push(vec![spec.kind.name().into(), f(x), f(p)]);
        }
        for (edge, count) in dist.histogram(20) {
            hist_rows.push(vec![spec.kind.name().into(), f(edge), count.to_string()]);
        }
        stat_rows.push(vec![
            spec.kind.name().into(),
            f(dist.mean()),
            f(dist.std_dev()),
            f(dist.min()),
            f(dist.max()),
            f(dist.quantile(0.5)),
        ]);
    }
    ctx.emit("fig5ab_cdf", &["dataset", "theta", "cdf"], &cdf_rows);
    ctx.emit("fig5ce_hist", &["dataset", "bin_edge", "count"], &hist_rows);
    ctx.emit(
        "fig5_dist_stats",
        &["dataset", "mean", "std", "min", "max", "median"],
        &stat_rows,
    );
}

/// Observed FPR of the VO candidate test at one θ, over a sample of graphs.
pub fn observed_fpr(
    oracle: &DistanceOracle,
    vt: &VantageTable,
    theta: f64,
    sample: usize,
    seed: u64,
) -> f64 {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = oracle.len();
    let mut fp = 0usize;
    let mut negatives = 0usize;
    for _ in 0..sample {
        let g = rng.gen_range(0..n) as u32;
        let cands = vt.candidates(g, theta);
        let mut true_n = 0usize;
        let mut cand_fp = 0usize;
        for &c in &cands {
            if c == g {
                continue;
            }
            if oracle.within(g, c, theta).is_some() {
                true_n += 1;
            } else {
                cand_fp += 1;
            }
        }
        fp += cand_fp;
        negatives += n - 1 - true_n;
    }
    if negatives == 0 {
        0.0
    } else {
        fp as f64 / negatives as f64
    }
}

/// Fig 5(f)–(h): observed FPR vs θ, with the Eq. 11 Gaussian upper bound.
pub fn fig5fpr(ctx: &Ctx) {
    let mut rows: Vec<Row> = Vec::new();
    let num_vps = 16;
    for spec in standard_specs(ctx.base_size.min(400), ctx.seed) {
        let data: Dataset = spec.generate();
        let oracle = ctx.oracle(&data.db);
        let dist = sample_distances(&oracle, 2000, ctx.seed);
        let (mu, sigma) = (dist.mean(), dist.std_dev().max(1e-6));
        let mut rng = SmallRng::seed_from_u64(ctx.seed);
        let vt = VantageTable::build(oracle.len(), num_vps, &mut rng, |a, b| {
            oracle.distance(a, b)
        });
        let _ = Arc::clone(&oracle.graphs_arc());
        let thetas: Vec<f64> = (1..=6)
            .map(|i| data.default_theta * i as f64 / 2.0)
            .collect();
        for theta in thetas {
            let obs = observed_fpr(&oracle, &vt, theta, 40, ctx.seed);
            let bound = fpr::fpr_normal_bound(theta, mu, sigma, num_vps);
            rows.push(vec![spec.kind.name().into(), f(theta), f(obs), f(bound)]);
        }
    }
    ctx.emit(
        "fig5fh_fpr",
        &["dataset", "theta", "observed_fpr", "fpr_upper_bound"],
        &rows,
    );
}
