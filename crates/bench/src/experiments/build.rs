//! Fig 6(k)–(l): index construction cost and memory footprint against
//! dataset size, versus computing the full distance matrix.

use super::standard_specs;
use crate::harness::{f, Ctx, Row};
use graphrep_baselines::MatrixIndex;
use graphrep_core::{NbIndex, NbIndexConfig};
use graphrep_datagen::{Dataset, DatasetSpec};

/// Fig 6(k)+(l): NB-Index build time / #distances / memory vs the matrix.
pub fn fig6build(ctx: &Ctx) {
    let mut rows: Vec<Row> = Vec::new();
    let top = ctx.base_size;
    let sizes: Vec<usize> = [top / 6, top / 3, 2 * top / 3, top]
        .into_iter()
        .filter(|&s| s >= 40)
        .collect();
    for spec in standard_specs(top, ctx.seed) {
        let full = spec.generate();
        for &n in &sizes {
            let data = Dataset {
                db: full.db.prefix(n),
                family: full.family[..n].to_vec(),
                spec: DatasetSpec { size: n, ..spec },
                default_theta: full.default_theta,
                default_ladder: full.default_ladder.clone(),
            };
            // NB-Index build.
            let oracle = ctx.oracle(&data.db);
            let index = NbIndex::build(
                oracle,
                NbIndexConfig {
                    num_vps: 16,
                    ladder: data.default_ladder.clone(),
                    seed: ctx.seed,
                    ..NbIndexConfig::default()
                },
            );
            let b = index.build_stats();
            // Session memory (π̂-vectors) for the default query, as the paper
            // includes them in the reported footprint.
            let relevant = data.default_query().relevant_set(&data.db);
            let session = index.start_session(relevant);
            let nb_mem = index.memory_bytes() + session.memory_bytes();
            drop(session);

            // Full distance matrix (only at small n — it is quadratic).
            let (mx_s, mx_calls, mx_mem) = if n <= 300 {
                let oracle = ctx.oracle(&data.db);
                let m = MatrixIndex::build(&oracle);
                (
                    f(m.build_wall.as_secs_f64()),
                    m.build_calls.to_string(),
                    m.memory_bytes().to_string(),
                )
            } else {
                (String::new(), String::new(), String::new())
            };

            rows.push(vec![
                spec.kind.name().into(),
                n.to_string(),
                f(b.wall.as_secs_f64()),
                b.distance_calls.to_string(),
                nb_mem.to_string(),
                mx_s,
                mx_calls,
                mx_mem,
            ]);
        }
    }
    ctx.emit(
        "fig6kl_build",
        &[
            "dataset",
            "db_size",
            "nb_build_s",
            "nb_build_calls",
            "nb_memory_bytes",
            "matrix_build_s",
            "matrix_build_calls",
            "matrix_memory_bytes",
        ],
        &rows,
    );
}
