//! Fig 2: the motivating pathologies — DisC's unbounded answer growth and
//! the non-scalability of baseline greedy under NN-indexes.

use super::standard_specs;
use crate::harness::{f, timed, Ctx, Row};
use graphrep_baselines::providers::{relevant_mask, CTreeProvider, MTreeProvider};
use graphrep_baselines::{greedy_disc, CTree, MTree};
use graphrep_core::{baseline_greedy, BruteForceProvider, RelevanceQuery, Scorer};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Fig 2(a): DisC answer-set size vs number of relevant objects (DUD/AChE).
pub fn fig2a(ctx: &Ctx) {
    let spec = standard_specs(ctx.base_size, ctx.seed)[0];
    let data = spec.generate();
    let oracle = ctx.oracle(&data.db);
    let theta = data.default_theta;
    let mut rows: Vec<Row> = Vec::new();
    // Sweep the relevance quantile to grow |L_q| (the paper varies the
    // number of relevant molecules directly).
    for q in [0.95, 0.9, 0.85, 0.8, 0.75, 0.65, 0.55] {
        let query = RelevanceQuery::top_quantile(&data.db, Scorer::MeanOfDims(vec![0]), q);
        let relevant = query.relevant_set(&data.db);
        let provider = BruteForceProvider::new(&oracle, &relevant);
        let r = greedy_disc(&provider, &relevant, theta, None);
        rows.push(vec![
            relevant.len().to_string(),
            r.ids.len().to_string(),
            f(relevant.len() as f64 / r.ids.len().max(1) as f64),
        ]);
    }
    ctx.emit(
        "fig2a",
        &["relevant", "disc_answer_size", "compression"],
        &rows,
    );
}

/// Fig 2(b): baseline-greedy running time against database size under
/// C-tree, M-tree (DisC's index), and no index at all.
pub fn fig2b(ctx: &Ctx) {
    let spec = standard_specs(ctx.base_size, ctx.seed)[0];
    let data = spec.generate();
    let theta = data.default_theta;
    let k = 10;
    let mut rows: Vec<Row> = Vec::new();
    let top = ctx.base_size;
    let sizes: Vec<usize> = [top / 4, top / 2, 3 * top / 4, top]
        .into_iter()
        .filter(|&s| s >= 50)
        .collect();
    for &n in &sizes {
        let db = data.db.prefix(n);
        let query = RelevanceQuery::top_quantile(&db, Scorer::MeanOfDims(vec![0]), 0.75);
        let relevant = query.relevant_set(&db);
        let mut rng = SmallRng::seed_from_u64(ctx.seed);

        // No index: brute force neighborhoods.
        let o = ctx.oracle(&db);
        let (_, brute_t) =
            timed(|| baseline_greedy(&BruteForceProvider::new(&o, &relevant), &relevant, theta, k));
        let brute_calls = o.engine_calls();

        // C-tree backed (build offline, query measured).
        let o = ctx.oracle(&db);
        let ctree = CTree::build(&o, &mut rng);
        o.reset_stats();
        let mask = relevant_mask(o.len(), &relevant);
        let (_, ctree_t) = timed(|| {
            baseline_greedy(
                &CTreeProvider {
                    tree: &ctree,
                    oracle: &o,
                    relevant: mask.clone(),
                },
                &relevant,
                theta,
                k,
            )
        });
        let ctree_calls = o.engine_calls();

        // M-tree backed (DisC's index).
        let o = ctx.oracle(&db);
        let mtree = MTree::build(&o, &mut rng);
        o.reset_stats();
        let mask = relevant_mask(o.len(), &relevant);
        let (_, mtree_t) = timed(|| {
            baseline_greedy(
                &MTreeProvider {
                    tree: &mtree,
                    oracle: &o,
                    relevant: mask,
                },
                &relevant,
                theta,
                k,
            )
        });
        let mtree_calls = o.engine_calls();

        rows.push(vec![
            n.to_string(),
            f(brute_t),
            brute_calls.to_string(),
            f(ctree_t),
            ctree_calls.to_string(),
            f(mtree_t),
            mtree_calls.to_string(),
        ]);
    }
    ctx.emit(
        "fig2b",
        &[
            "db_size",
            "noindex_s",
            "noindex_calls",
            "ctree_s",
            "ctree_calls",
            "mtree_s",
            "mtree_calls",
        ],
        &rows,
    );
}
