//! Ablations beyond the paper: how much each NB-Index ingredient buys.
//!
//! * `vp_sweep` — |V| against FPR, init cost, and query cost (extends the
//!   Sec 6.2.1 analysis empirically),
//! * `branching_sweep` — NB-Tree fan-out `b` against build and query cost,
//! * `bounds_ablation` — full NB-Index vs "VO only" (no tree bounds) vs
//!   "clusters only" (no vantage points).

use super::standard_specs;
use crate::experiments::distances::observed_fpr;
use crate::harness::{f, timed, Ctx, Row};
use graphrep_core::{baseline_greedy, NbIndex, NbIndexConfig, NbTreeConfig, NeighborhoodProvider};
use graphrep_ged::DistanceOracle;
use graphrep_graph::GraphId;
use graphrep_metric::VantageTable;

/// |V| sweep: observed FPR and end-to-end query cost.
pub fn vp_sweep(ctx: &Ctx) {
    let spec = standard_specs(ctx.base_size, ctx.seed)[0];
    let data = spec.generate();
    let relevant = data.default_query().relevant_set(&data.db);
    let theta = data.default_theta;
    let mut rows: Vec<Row> = Vec::new();
    for num_vps in [1usize, 2, 4, 8, 16, 32] {
        let oracle = ctx.oracle(&data.db);
        let index = NbIndex::build(
            oracle.clone(),
            NbIndexConfig {
                num_vps,
                ladder: data.default_ladder.clone(),
                seed: ctx.seed,
                ..NbIndexConfig::default()
            },
        );
        let fpr = observed_fpr(&oracle, index.vantage(), theta, 30, ctx.seed);
        oracle.reset_stats();
        let (_, wall) = timed(|| index.query(relevant.clone(), theta, 10));
        rows.push(vec![
            num_vps.to_string(),
            f(fpr),
            f(wall),
            oracle.engine_calls().to_string(),
            index.memory_bytes().to_string(),
        ]);
    }
    ctx.emit(
        "ablation_vp",
        &[
            "num_vps",
            "observed_fpr",
            "query_s",
            "query_calls",
            "index_bytes",
        ],
        &rows,
    );
}

/// Fan-out sweep: build cost and query cost against `b`.
pub fn branching_sweep(ctx: &Ctx) {
    let spec = standard_specs(ctx.base_size, ctx.seed)[0];
    let data = spec.generate();
    let relevant = data.default_query().relevant_set(&data.db);
    let theta = data.default_theta;
    let mut rows: Vec<Row> = Vec::new();
    for b in [4usize, 8, 16, 32, 64] {
        let oracle = ctx.oracle(&data.db);
        let index = NbIndex::build(
            oracle.clone(),
            NbIndexConfig {
                num_vps: 16,
                tree: NbTreeConfig {
                    branching: b,
                    pivot_sample: 4 * b,
                },
                ladder: data.default_ladder.clone(),
                seed: ctx.seed,
            },
        );
        let bs = index.build_stats();
        oracle.reset_stats();
        let (_, wall) = timed(|| index.query(relevant.clone(), theta, 10));
        rows.push(vec![
            b.to_string(),
            f(bs.wall.as_secs_f64()),
            bs.distance_calls.to_string(),
            f(wall),
            oracle.engine_calls().to_string(),
        ]);
    }
    ctx.emit(
        "ablation_branching",
        &[
            "branching",
            "build_s",
            "build_calls",
            "query_s",
            "query_calls",
        ],
        &rows,
    );
}

/// A provider that computes θ-neighborhoods from vantage orderings alone
/// (candidate bands + exact verification) — the "VO only" ablation arm.
struct VoProvider<'a> {
    oracle: &'a DistanceOracle,
    vt: &'a VantageTable,
    relevant_mask: graphrep_metric::Bitset,
}

impl NeighborhoodProvider for VoProvider<'_> {
    fn neighborhood(&self, g: GraphId, theta: f64) -> Vec<GraphId> {
        self.vt
            .candidates(g, theta)
            .into_iter()
            .filter(|&c| {
                self.relevant_mask.contains(c as usize) && self.oracle.within(g, c, theta).is_some()
            })
            .collect()
    }
}

/// Full NB-Index vs VO-only vs clusters-only.
pub fn bounds_ablation(ctx: &Ctx) {
    let mut rows: Vec<Row> = Vec::new();
    for spec in standard_specs(ctx.base_size, ctx.seed) {
        let data = spec.generate();
        let relevant = data.default_query().relevant_set(&data.db);
        let theta = data.default_theta;
        let k = 10;

        // Full NB-Index.
        let oracle = ctx.oracle(&data.db);
        let index = ctx.nb_index(&data, oracle.clone());
        oracle.reset_stats();
        let (_, full_s) = timed(|| index.query(relevant.clone(), theta, k));
        let full_calls = oracle.engine_calls();

        // VO only: Alg 1 greedy with VO-accelerated neighborhoods, no tree.
        let oracle = ctx.oracle(&data.db);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(ctx.seed);
        use rand::SeedableRng;
        let vt = VantageTable::build(oracle.len(), 16, &mut rng, |a, b| oracle.distance(a, b));
        oracle.reset_stats();
        let mask = graphrep_metric::Bitset::from_indices(
            oracle.len(),
            relevant.iter().map(|&g| g as usize),
        );
        let provider = VoProvider {
            oracle: &oracle,
            vt: &vt,
            relevant_mask: mask,
        };
        let (_, vo_s) = timed(|| baseline_greedy(&provider, &relevant, theta, k));
        let vo_calls = oracle.engine_calls();

        // Clusters only: NB-Index with zero vantage points.
        let oracle = ctx.oracle(&data.db);
        let index = NbIndex::build(
            oracle.clone(),
            NbIndexConfig {
                num_vps: 0,
                ladder: data.default_ladder.clone(),
                seed: ctx.seed,
                ..NbIndexConfig::default()
            },
        );
        oracle.reset_stats();
        let (_, cl_s) = timed(|| index.query(relevant.clone(), theta, k));
        let cl_calls = oracle.engine_calls();

        rows.push(vec![
            spec.kind.name().into(),
            f(full_s),
            full_calls.to_string(),
            f(vo_s),
            vo_calls.to_string(),
            f(cl_s),
            cl_calls.to_string(),
        ]);
    }
    ctx.emit(
        "ablation_bounds",
        &[
            "dataset",
            "full_s",
            "full_calls",
            "vo_only_s",
            "vo_only_calls",
            "clusters_only_s",
            "clusters_only_calls",
        ],
        &rows,
    );
}
