//! Shard scaling experiment (`shard_scale`).
//!
//! Runs the default top-k query through the scatter-gather coordinator at
//! S ∈ {1, 2, 4, 8} shards over a DudLike database and proves the two
//! contracts of DESIGN.md §14 in-line: the distributed answer is
//! byte-identical (`format!("{answer:?}")`) to the single-NbIndex reference
//! at every S, and the per-shard π̂ bound aggregation actually prunes —
//! a nonzero fraction of (pick, shard) pairs finish without any fresh
//! verification work once S > 1.
//!
//! When the `SHARD_BUDGET` environment variable points at a budget file
//! (see `ci/shard_budget.json`), the prune rate at the largest S must stay
//! above the checked-in floor.
//!
//! Mirrors a CSV to `results/shard_scale.csv` and a machine-readable
//! summary to `results/BENCH_shard_scale.json`.

use crate::harness::{f, timed, Ctx, Row};
use graphrep_datagen::{DatasetKind, DatasetSpec};
use graphrep_ged::GedConfig;
use graphrep_shard::{CoordConfig, Coordinator};
use std::fmt::Write as _;

/// Shard-pruning budget enforced by the CI smoke job (see
/// `ci/shard_budget.json`).
#[derive(Debug, serde::Deserialize)]
struct Budget {
    /// Floor on the mean fraction of shards pruned per pick at the largest
    /// shard count in the sweep.
    min_prune_rate: f64,
}

struct ShardOut {
    shards: usize,
    build_s: f64,
    init_s: f64,
    run_s: f64,
    picks: u64,
    verified: u64,
    prune_rate: f64,
    engine_entries: Vec<u64>,
}

impl ShardOut {
    fn engine_total(&self) -> u64 {
        self.engine_entries.iter().sum()
    }
}

fn row(r: &ShardOut) -> Row {
    vec![
        r.shards.to_string(),
        f(r.build_s),
        format!("{:.6}", r.init_s),
        format!("{:.6}", r.run_s),
        r.picks.to_string(),
        r.verified.to_string(),
        f(r.prune_rate),
        r.engine_total().to_string(),
    ]
}

/// Distributed greedy at S ∈ {1, 2, 4, 8}: byte-identity against the
/// single-index reference, per-pick shard pruning, per-shard engine work.
pub fn shard_scale(ctx: &Ctx) {
    let size = ctx.base_size.max(160);
    let data = DatasetSpec::new(DatasetKind::DudLike, size, ctx.seed).generate();
    let relevant = data.default_query().relevant_set(&data.db);
    let theta = data.default_theta;
    let k = 8;

    // The exactness reference: one NB-Index over the whole database,
    // answered through the same session machinery the serve layer uses.
    let oracle = ctx.oracle(&data.db);
    let (index, ref_build_s) = timed(|| ctx.nb_index(&data, oracle));
    let ((want_answer, ref_stats), ref_run_s) = timed(|| index.query(relevant.clone(), theta, k));
    let want = format!("{want_answer:?}");
    println!(
        "# shard_scale: single-index reference built in {ref_build_s:.2}s, answered in {:.2}ms ({} edit distances)",
        1e3 * ref_run_s,
        ref_stats.distance_calls
    );

    let mut outs: Vec<ShardOut> = Vec::new();
    for &shards in &[1usize, 2, 4, 8] {
        let cfg = CoordConfig {
            shards,
            seed: ctx.seed ^ 0x5eed,
            ladder: data.default_ladder.clone(),
        };
        let (coord, build_s) = timed(|| Coordinator::build(&data.db, GedConfig::default(), &cfg));
        let (session, init_s) = timed(|| coord.session(relevant.clone()));
        let ((answer, stats), run_s) = timed(|| session.run(theta, k));
        assert_eq!(
            format!("{answer:?}"),
            want,
            "S={shards}: distributed answer diverges from the single-index reference"
        );
        outs.push(ShardOut {
            shards: coord.shard_count(),
            build_s,
            init_s,
            run_s,
            picks: stats.picks,
            verified: stats.verified_candidates,
            prune_rate: stats.prune_rate(),
            engine_entries: stats.engine_entries,
        });
    }

    for r in &outs {
        println!(
            "# shard_scale[S={}]: {} picks, prune rate {:.1}%, {} engine entries {:?}, run {:.2}ms",
            r.shards,
            r.picks,
            100.0 * r.prune_rate,
            r.engine_total(),
            r.engine_entries,
            1e3 * r.run_s
        );
        // Accounting identity: every pick classifies every shard exactly
        // once as pruned or touched.
        assert!(
            r.prune_rate >= 0.0 && r.prune_rate <= 1.0,
            "S={}: prune rate {} out of range",
            r.shards,
            r.prune_rate
        );
    }
    let multi_pruned = outs
        .iter()
        .filter(|r| r.shards > 1)
        .any(|r| r.prune_rate > 0.0);
    assert!(
        multi_pruned,
        "bound aggregation never pruned a single shard-pick pair at any S > 1"
    );

    ctx.emit(
        "shard_scale",
        &[
            "shards",
            "build_s",
            "init_s",
            "run_s",
            "picks",
            "verified_candidates",
            "prune_rate",
            "engine_entries",
        ],
        &outs.iter().map(row).collect::<Vec<_>>(),
    );

    let mut json = String::from("{\n  \"sweep\": [\n");
    for (i, r) in outs.iter().enumerate() {
        let sep = if i + 1 < outs.len() { "," } else { "" };
        let entries = r
            .engine_entries
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(",");
        let _ = writeln!(
            json,
            "    {{\"shards\":{},\"build_s\":{:.4},\"init_s\":{:.6},\"run_s\":{:.6},\"picks\":{},\"verified_candidates\":{},\"prune_rate\":{:.4},\"engine_entries\":[{entries}]}}{sep}",
            r.shards, r.build_s, r.init_s, r.run_s, r.picks, r.verified, r.prune_rate
        );
    }
    let max_s = outs.last().expect("nonempty sweep");
    let _ = writeln!(
        json,
        "  ],\n  \"reference_run_s\": {ref_run_s:.6},\n  \"max_shards\": {},\n  \"max_shards_prune_rate\": {:.4},\n  \"byte_identical\": true\n}}",
        max_s.shards,
        max_s.prune_rate
    );
    let _ = std::fs::create_dir_all(&ctx.out_dir);
    let path = ctx.out_dir.join("BENCH_shard_scale.json");
    if std::fs::write(&path, &json).is_err() {
        eprintln!("warning: could not write {}", path.display());
    }

    // CI smoke budget: the bound aggregation must keep pruning at the
    // largest shard count, or the scatter-gather degenerates to broadcast.
    if let Ok(budget_path) = std::env::var("SHARD_BUDGET") {
        let text = std::fs::read_to_string(&budget_path)
            .unwrap_or_else(|e| panic!("cannot read budget file {budget_path}: {e}"));
        let budget: Budget = serde_json::from_str(&text)
            .unwrap_or_else(|e| panic!("bad budget file {budget_path}: {e:?}"));
        assert!(
            max_s.prune_rate >= budget.min_prune_rate,
            "S={}: prune rate {:.4} below budget floor {} (from {budget_path})",
            max_s.shards,
            max_s.prune_rate,
            budget.min_prune_rate
        );
        println!(
            "# shard_scale: within budget (prune rate {:.3} >= {} at S={})",
            max_s.prune_rate, budget.min_prune_rate, max_s.shards
        );
    }
}
