//! Serving-layer throughput experiment for `graphrep-serve`.
//!
//! Starts an in-process TCP server over one warm dataset at 1, 4, and 8
//! worker threads and drives it with the deterministic load harness (fixed
//! seed, fixed per-connection `(θ, k)` schedules). Reports wall time,
//! throughput, and client-observed latency quantiles per worker count, and
//! checks the end-to-end determinism contract: every served answer must be
//! byte-identical to an offline [`graphrep_core::QuerySession::run`] replay
//! of the same queries, at every pool size.

use crate::harness::{f, timed, Ctx, Row};
use graphrep_datagen::{DatasetKind, DatasetSpec};
use graphrep_serve::{offline_reference, registry, run_load, verify_against_offline, LoadSpec};

/// Worker-pool sizes to sweep: the determinism contract must hold from a
/// fully serialized pool to a contended one.
const WORKER_COUNTS: &[usize] = &[1, 4, 8];

/// Served-vs-offline determinism and throughput at 1/4/8 server workers.
pub fn serve_load(ctx: &Ctx) {
    let size = ctx.base_size.clamp(80, 200);
    // `Dataset` is not `Clone`; the spec is deterministic, so regenerating
    // yields byte-identical data for the reference and every server start.
    let gen = DatasetSpec::new(DatasetKind::DudLike, size, ctx.seed);
    let data = gen.generate();
    let spec = LoadSpec {
        dataset: "bench".to_owned(),
        connections: 4,
        requests_per_conn: 10,
        thetas: vec![
            data.default_theta * 0.8,
            data.default_theta,
            data.default_theta * 1.2,
        ],
        ks: vec![3, 5],
        quantile: 0.75,
        seed: ctx.seed,
        skew: 0.0,
    };

    // Ground truth once: the offline session replays every unique (θ, k).
    let ds = registry::load_in_memory("bench", data);
    let reference = offline_reference(&ds, &spec);

    let mut rows: Vec<Row> = Vec::new();
    for &workers in WORKER_COUNTS {
        let cfg = graphrep_serve::ServeConfig {
            workers,
            ..graphrep_serve::ServeConfig::default()
        };
        let handle = graphrep_serve::start_in_memory(cfg, "bench", gen.generate())
            .unwrap_or_else(|e| panic!("server failed to start at {workers} workers: {e}"));
        let addr = handle.addr().to_string();
        let (report, wall) = timed(|| {
            run_load(&addr, &spec)
                .unwrap_or_else(|e| panic!("load run failed at {workers} workers: {e}"))
        });
        handle.shutdown();
        assert!(
            report.errors.is_empty(),
            "load errors at {workers} workers: {:?}",
            report.errors
        );
        let verified = verify_against_offline(&report, &reference)
            .unwrap_or_else(|e| panic!("determinism violation at {workers} workers: {e}"));
        assert_eq!(
            verified,
            spec.connections * spec.requests_per_conn,
            "incomplete run at {workers} workers"
        );
        rows.push(vec![
            workers.to_string(),
            spec.connections.to_string(),
            (spec.connections * spec.requests_per_conn).to_string(),
            f(wall),
            f(report.throughput_rps()),
            f(report.latency_quantile_ms(0.50)),
            f(report.latency_quantile_ms(0.99)),
            "true".to_owned(),
        ]);
    }
    ctx.emit(
        "serve_load",
        &[
            "workers",
            "connections",
            "requests",
            "wall_s",
            "rps",
            "p50_ms",
            "p99_ms",
            "answers_identical",
        ],
        &rows,
    );
}
