//! Serving-layer throughput experiment for `graphrep-serve`.
//!
//! Part 1 — the historical sweep: an in-process TCP server over one warm
//! dataset, driven by the deterministic load harness (fixed seed, fixed
//! per-connection `(θ, k)` schedules) at 1/4/8 worker threads, in BOTH I/O
//! modes: the thread-per-connection blocking accept path and the epoll
//! reactor (`io async`). Every served answer must be byte-identical to an
//! offline [`graphrep_core::QuerySession::run`] replay of the same queries,
//! at every pool size, in every mode.
//!
//! Part 2 — the streaming differential, which is what the reactor exists
//! for. On an async server with the answer cache disabled (so the blocking
//! column measures real full-answer compute, not cache hits), and with
//! ~2000 idle connections held open against the reactor for the entire
//! comparison:
//!
//! * interleaved rounds of blocking and pipelined+streamed loads run the
//!   identical schedule, with one unrecorded warmup round first;
//! * the pooled p50 time-to-first-pick of the streamed rounds must land
//!   below the pooled blocking full-answer p50 (picks leave the server as
//!   the greedy loop commits them, not after the run finishes);
//! * every stream is still verified byte-identical to the offline replay.
//!
//! The rounds are interleaved — blocking, pipelined, blocking, … — so slow
//! drift on a shared box (frequency scaling, co-tenant load) hits both
//! columns equally instead of biasing whichever ran last.

use crate::harness::{f, timed, Ctx, Row};
use graphrep_core::CacheConfig;
use graphrep_datagen::{DatasetKind, DatasetSpec};
use graphrep_serve::{
    offline_reference, registry, run_load, verify_against_offline, Client, DatasetRegistry, IoMode,
    LoadMode, LoadReport, LoadSpec,
};
// graphrep: allow(G007, the idle flood parks raw sockets that speak no protocol — a serve Client would defeat the experiment)
use std::net::TcpStream;

/// Worker-pool sizes to sweep: the determinism contract must hold from a
/// fully serialized pool to a contended one.
const WORKER_COUNTS: &[usize] = &[1, 4, 8];

/// Idle connections to hold open during the whole streaming differential.
const IDLE_TARGET: usize = 2000;

/// Workers for the streaming differential: sized so the pipelined in-flight
/// total (connections x depth) never queues behind a busy pool — the ttfp
/// column then measures streaming, not scheduling.
const DIFF_WORKERS: usize = 8;

/// Recorded blocking/pipelined round pairs in the differential (plus one
/// unrecorded warmup pair). Samples pool across rounds before comparing.
const DIFF_ROUNDS: usize = 3;

/// Served-vs-offline determinism and throughput across I/O modes, worker
/// counts, and load modes (blocking, pipelined+streamed).
pub fn serve_load(ctx: &Ctx) {
    let size = ctx.base_size.clamp(80, 200);
    // `Dataset` is not `Clone`; the spec is deterministic, so regenerating
    // yields byte-identical data for the reference and every server start.
    let gen = DatasetSpec::new(DatasetKind::DudLike, size, ctx.seed);
    let data = gen.generate();
    let spec = LoadSpec {
        dataset: "bench".to_owned(),
        connections: 4,
        requests_per_conn: 10,
        thetas: vec![
            data.default_theta * 0.8,
            data.default_theta,
            data.default_theta * 1.2,
        ],
        ks: vec![3, 5],
        quantile: 0.75,
        seed: ctx.seed,
        skew: 0.0,
        mode: LoadMode::Blocking,
    };

    // Ground truth once: the offline session replays every unique (θ, k).
    let ds = registry::load_in_memory("bench", data);
    let reference = offline_reference(&ds, &spec);

    let mut rows: Vec<Row> = Vec::new();

    // Part 1: the classic sweep, now in both I/O modes.
    for io in [IoMode::Blocking, IoMode::Async] {
        for &workers in WORKER_COUNTS {
            let handle = start_server(&gen, io, workers, true);
            let addr = handle.addr().to_string();
            let (report, wall) = timed(|| run_verified(&addr, &spec, &reference, io, workers));
            rows.push(row(io, &spec, workers, 0, &report.latencies_ms, &[], wall));
            handle.shutdown();
        }
    }

    // Part 2: the streaming differential on an uncached async server (a
    // cache hit has no compute to stream past; disabling the cache makes
    // the blocking column an honest full-answer baseline). Runs must be
    // heavy enough that the compute remaining AFTER the first pick dwarfs
    // scheduler noise — on a small box, delivering a mid-run frame costs a
    // preemption of the computing worker — so the differential gets a
    // larger dataset and deeper answer sets than the throughput sweep.
    let diff_gen = DatasetSpec::new(
        DatasetKind::DudLike,
        ctx.base_size.clamp(200, 400),
        ctx.seed,
    );
    let diff_data = diff_gen.generate();
    let diff_spec = LoadSpec {
        dataset: "bench".to_owned(),
        connections: 4,
        requests_per_conn: 5,
        thetas: vec![diff_data.default_theta * 0.8, diff_data.default_theta],
        ks: vec![12, 16],
        quantile: 0.75,
        seed: ctx.seed,
        skew: 0.0,
        mode: LoadMode::Blocking,
    };
    let diff_ds = registry::load_in_memory("bench", diff_data);
    let diff_reference = offline_reference(&diff_ds, &diff_spec);
    // The identical schedule through the v2 tagged pipelined+streamed path,
    // at the baseline's in-flight concurrency (one run per connection at a
    // time): a deeper pipeline trades first-pick latency for throughput —
    // each queued run's clock starts at send — which on a small box drowns
    // the streaming signal in scheduling. Depth 1 isolates it; the deep
    // pipelines' correctness is the test suites' job.
    let pipe_spec = LoadSpec {
        mode: LoadMode::Pipelined { depth: 1 },
        ..diff_spec.clone()
    };

    let handle = start_server(&diff_gen, IoMode::Async, DIFF_WORKERS, false);
    let addr = handle.addr().to_string();

    // The flood goes up BEFORE any measurement and stays for all of them:
    // both columns see the same ~2k parked connections on the reactor.
    let idle = hold_idle_connections(&addr, IDLE_TARGET);
    let mut probe = Client::connect(&addr).expect("stats probe connect");
    let stats = probe.stats().expect("stats under flood");
    assert!(
        stats.connections_open > idle.len(),
        "server lost idle connections: {} open vs {} held",
        stats.connections_open,
        idle.len()
    );

    // Unrecorded warmup pair: first-touch effects (page-in, allocator
    // growth, branch warmup) otherwise land entirely on whichever column
    // runs first.
    run_verified(
        &addr,
        &diff_spec,
        &diff_reference,
        IoMode::Async,
        DIFF_WORKERS,
    );
    run_verified(
        &addr,
        &pipe_spec,
        &diff_reference,
        IoMode::Async,
        DIFF_WORKERS,
    );

    let mut blocking_lat: Vec<f64> = Vec::new();
    let mut pipe_lat: Vec<f64> = Vec::new();
    let mut ttfp: Vec<f64> = Vec::new();
    let (mut blocking_wall, mut pipe_wall) = (0.0f64, 0.0f64);
    for _ in 0..DIFF_ROUNDS {
        let (rep, wall) = timed(|| {
            run_verified(
                &addr,
                &diff_spec,
                &diff_reference,
                IoMode::Async,
                DIFF_WORKERS,
            )
        });
        blocking_wall += wall;
        blocking_lat.extend(rep.latencies_ms);
        let (rep, wall) = timed(|| {
            run_verified(
                &addr,
                &pipe_spec,
                &diff_reference,
                IoMode::Async,
                DIFF_WORKERS,
            )
        });
        pipe_wall += wall;
        pipe_lat.extend(rep.latencies_ms);
        ttfp.extend(rep.ttfp_ms);
    }

    // The flood must still be alive AFTER the measured rounds — sustained,
    // not merely accepted.
    let stats = probe.stats().expect("stats after flood rounds");
    assert!(
        stats.connections_open > idle.len(),
        "idle connections died during the differential: {} open vs {} held",
        stats.connections_open,
        idle.len()
    );
    drop(idle);
    handle.shutdown();

    // The point of streaming: the first representative reaches the client
    // before a blocking client would have seen any byte of the answer.
    let blocking_p50 = quantile(&blocking_lat, 0.50);
    let ttfp_p50 = quantile(&ttfp, 0.50);
    assert!(
        ttfp_p50 < blocking_p50,
        "pipelined time-to-first-pick p50 ({ttfp_p50:.3} ms over {} samples) did not beat \
         the blocking full-answer p50 ({blocking_p50:.3} ms) at {DIFF_WORKERS} workers",
        ttfp.len()
    );

    let mut blocking_row = row(
        IoMode::Async,
        &diff_spec,
        DIFF_WORKERS,
        idle_count(&stats),
        &blocking_lat,
        &[],
        blocking_wall,
    );
    blocking_row[5] =
        (diff_spec.connections * diff_spec.requests_per_conn * DIFF_ROUNDS).to_string();
    rows.push(blocking_row);
    let mut pipe_row = row(
        IoMode::Async,
        &pipe_spec,
        DIFF_WORKERS,
        idle_count(&stats),
        &pipe_lat,
        &ttfp,
        pipe_wall,
    );
    pipe_row[5] = (pipe_spec.connections * pipe_spec.requests_per_conn * DIFF_ROUNDS).to_string();
    pipe_row[11] = "true".to_owned();
    rows.push(pipe_row);

    ctx.emit(
        "serve_load",
        &[
            "io",
            "mode",
            "workers",
            "connections",
            "idle_conns",
            "requests",
            "wall_s",
            "rps",
            "p50_ms",
            "p99_ms",
            "ttfp_p50_ms",
            "ttfp_beats_blocking_p50",
        ],
        &rows,
    );
}

fn start_server(
    gen: &DatasetSpec,
    io: IoMode,
    workers: usize,
    cached: bool,
) -> graphrep_serve::ServerHandle {
    let cfg = graphrep_serve::ServeConfig {
        workers,
        io,
        ..graphrep_serve::ServeConfig::default()
    };
    let mut ds = registry::load_in_memory("bench", gen.generate());
    if !cached {
        ds = ds.with_cache_config(CacheConfig {
            capacity: 0,
            ..CacheConfig::default()
        });
    }
    let mut reg = DatasetRegistry::new();
    reg.insert(ds);
    graphrep_serve::start(cfg, reg)
        .unwrap_or_else(|e| panic!("server failed to start ({} x{workers}): {e}", io.name()))
}

/// Runs one load and enforces the determinism contract: zero errors, every
/// answer byte-identical to the offline reference, nothing dropped.
fn run_verified(
    addr: &str,
    spec: &LoadSpec,
    reference: &std::collections::HashMap<(u64, usize), graphrep_core::AnswerSet>,
    io: IoMode,
    workers: usize,
) -> LoadReport {
    let report = run_load(addr, spec).unwrap_or_else(|e| {
        panic!(
            "load failed ({} x{workers} {:?}): {e}",
            io.name(),
            spec.mode
        )
    });
    assert!(
        report.errors.is_empty(),
        "load errors ({} x{workers} {:?}): {:?}",
        io.name(),
        spec.mode,
        report.errors
    );
    let verified = verify_against_offline(&report, reference).unwrap_or_else(|e| {
        panic!(
            "determinism violation ({} x{workers} {:?}): {e}",
            io.name(),
            spec.mode
        )
    });
    assert_eq!(
        verified,
        spec.connections * spec.requests_per_conn,
        "incomplete run ({} x{workers} {:?})",
        io.name(),
        spec.mode
    );
    report
}

/// Builds one CSV row from (possibly pooled) latency samples.
fn row(
    io: IoMode,
    spec: &LoadSpec,
    workers: usize,
    idle_held: usize,
    latencies_ms: &[f64],
    ttfp_ms: &[f64],
    wall: f64,
) -> Row {
    let requests = spec.connections * spec.requests_per_conn;
    vec![
        io.name().to_owned(),
        mode_name(spec.mode).to_owned(),
        workers.to_string(),
        spec.connections.to_string(),
        idle_held.to_string(),
        requests.to_string(),
        f(wall),
        f(latencies_ms.len() as f64 / wall.max(f64::EPSILON)),
        f(quantile(latencies_ms, 0.50)),
        f(quantile(latencies_ms, 0.99)),
        if ttfp_ms.is_empty() {
            "0".to_owned()
        } else {
            f(quantile(ttfp_ms, 0.50))
        },
        String::new(),
    ]
}

fn mode_name(mode: LoadMode) -> &'static str {
    match mode {
        LoadMode::Blocking => "blocking",
        LoadMode::Streamed => "streamed",
        LoadMode::Pipelined { .. } => "pipelined",
    }
}

fn idle_count(stats: &graphrep_serve::StatsBody) -> usize {
    // The probe itself and any just-closed load connections make the exact
    // open count racy; the held-flood floor is what the row documents.
    stats.connections_open.saturating_sub(1).min(IDLE_TARGET)
}

/// Nearest-rank quantile over `samples` (0.0 when empty) — mirrors the
/// client harness's per-report quantile so pooled and per-run numbers are
/// comparable.
fn quantile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut v = samples.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    let idx = ((p.clamp(0.0, 1.0) * (v.len() - 1) as f64).round()) as usize;
    v[idx.min(v.len() - 1)]
}

/// Opens up to `target` idle connections (scaled down to the fd soft limit
/// actually granted — each held loopback connection costs this process two
/// fds, client end and in-process-server end).
fn hold_idle_connections(addr: &str, target: usize) -> Vec<TcpStream> {
    let granted = graphrep_serve::reactor::sys::raise_nofile_limit((2 * target + 512) as u64);
    let budget = (granted.saturating_sub(512) / 2) as usize;
    let n = target.min(budget.max(16));
    let mut held = Vec::with_capacity(n);
    for i in 0..n {
        match TcpStream::connect(addr) {
            Ok(s) => held.push(s),
            Err(e) => panic!("idle connection {i}/{n} failed: {e}"),
        }
    }
    held
}
