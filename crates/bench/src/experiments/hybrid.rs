//! Paper-scale graphs under the hybrid engine: molecules at the true DUD
//! node counts (~26 atoms) are far beyond exact GED, so the engine routes
//! them through the bipartite approximation. This experiment shows the
//! NB-Index machinery is size-independent — only the distance engine policy
//! changes — and reports how query cost scales at paper-size graphs.

use crate::harness::{f, timed, Ctx, Row};
use graphrep_core::{GraphDatabase, NbIndex, NbIndexConfig, RelevanceQuery, Scorer};
use graphrep_datagen::molecules::{self, MoleculeParams};
use graphrep_ged::{GedConfig, GedMode};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Hybrid-mode sweep over paper-scale molecule databases.
pub fn hybrid_scale(ctx: &Ctx) {
    let mut rows: Vec<Row> = Vec::new();
    for n in [200usize, 400, 800] {
        if n > ctx.base_size.max(800) {
            continue;
        }
        let mut rng = SmallRng::seed_from_u64(ctx.seed);
        let m = molecules::generate(
            &mut rng,
            MoleculeParams {
                size: n,
                scaffold_nodes: (22, 28), // the paper's DUD averages 26 nodes
                member_edits: 4,
                ..Default::default()
            },
        );
        let db = GraphDatabase::new(m.graphs, m.features, m.labels);
        let oracle = db.oracle(GedConfig {
            mode: GedMode::Hybrid {
                exact_max_nodes: 12,
            },
            ..GedConfig::default()
        });
        let ((index, relevant), build_s) = timed(|| {
            let index = NbIndex::build(
                oracle.clone(),
                NbIndexConfig {
                    num_vps: 16,
                    // Paper-style ladder for θ = 10 queries on 26-node graphs.
                    ladder: vec![5.0, 8.0, 10.0, 12.0, 16.0, 20.0, 25.0, 30.0, 40.0, 75.0],
                    seed: ctx.seed,
                    ..NbIndexConfig::default()
                },
            );
            let q = RelevanceQuery::top_quantile(&db, Scorer::MeanOfDims((0..10).collect()), 0.75);
            (index, q.relevant_set(&db))
        });
        let build_calls = index.build_stats().distance_calls;
        oracle.reset_stats();
        let ((answer, _), query_s) = timed(|| index.query(relevant.clone(), 10.0, 10));
        rows.push(vec![
            n.to_string(),
            f(build_s),
            build_calls.to_string(),
            f(query_s),
            oracle.engine_calls().to_string(),
            f(answer.pi()),
            f(answer.compression_ratio()),
        ]);
    }
    ctx.emit(
        "hybrid_paper_scale",
        &[
            "db_size",
            "build_s",
            "build_calls",
            "query_s",
            "query_calls",
            "pi",
            "cr",
        ],
        &rows,
    );
}
