//! Fig 6(i)–(j): interactive θ refinement (zoom-in / zoom-out).

use super::standard_specs;
use crate::harness::{f, timed, Ctx, Row};
use graphrep_baselines::providers::{relevant_mask, CTreeProvider, MTreeProvider};
use graphrep_baselines::{greedy_disc, CTree, MTree};
use graphrep_core::baseline_greedy;
use graphrep_datagen::{Dataset, DatasetSpec};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Runs the paper's refinement protocol: query at the default θ, then 20
/// re-queries at ±10%, alternating zoom-in and zoom-out. Returns the average
/// per-refinement wall time.
fn refinement_protocol(mut run_at: impl FnMut(f64) -> f64, theta0: f64) -> (f64, f64) {
    let _first = run_at(theta0);
    let mut theta = theta0;
    let mut zoom_in = 0.0;
    let mut zoom_out = 0.0;
    for i in 0..20 {
        if i % 2 == 0 {
            theta *= 0.9;
            zoom_in += run_at(theta);
        } else {
            theta *= 1.1;
            zoom_out += run_at(theta);
        }
    }
    (zoom_in / 10.0, zoom_out / 10.0)
}

/// Fig 6(i): average zoom-in / zoom-out times per technique.
pub fn fig6i(ctx: &Ctx) {
    let mut rows: Vec<Row> = Vec::new();
    for spec in standard_specs(ctx.base_size, ctx.seed) {
        let data = spec.generate();
        let relevant = data.default_query().relevant_set(&data.db);
        let theta0 = data.default_theta;
        let k = 10;

        // NB-Index: initialization once; refinements re-run search-and-update.
        let oracle = ctx.oracle(&data.db);
        let index = ctx.nb_index(&data, oracle.clone());
        let session = index.start_session(relevant.clone());
        let (nb_in, nb_out) = refinement_protocol(|t| timed(|| session.run(t, k)).1, theta0);

        // C-tree: every refinement is a brand-new greedy query.
        let oracle = ctx.oracle(&data.db);
        let mut rng = SmallRng::seed_from_u64(ctx.seed);
        let ctree = CTree::build(&oracle, &mut rng);
        let mask = relevant_mask(oracle.len(), &relevant);
        let (ct_in, ct_out) = refinement_protocol(
            |t| {
                timed(|| {
                    baseline_greedy(
                        &CTreeProvider {
                            tree: &ctree,
                            oracle: &oracle,
                            relevant: mask.clone(),
                        },
                        &relevant,
                        t,
                        k,
                    )
                })
                .1
            },
            theta0,
        );

        // DisC over its M-tree, truncated at k.
        let oracle = ctx.oracle(&data.db);
        let mtree = MTree::build(&oracle, &mut rng);
        let mask = relevant_mask(oracle.len(), &relevant);
        let (dc_in, dc_out) = refinement_protocol(
            |t| {
                timed(|| {
                    greedy_disc(
                        &MTreeProvider {
                            tree: &mtree,
                            oracle: &oracle,
                            relevant: mask.clone(),
                        },
                        &relevant,
                        t,
                        Some(k),
                    )
                })
                .1
            },
            theta0,
        );

        rows.push(vec![
            spec.kind.name().into(),
            f(nb_in),
            f(nb_out),
            f(ct_in),
            f(ct_out),
            f(dc_in),
            f(dc_out),
        ]);
    }
    ctx.emit(
        "fig6i_refinement",
        &[
            "dataset",
            "nb_zoom_in_s",
            "nb_zoom_out_s",
            "ctree_zoom_in_s",
            "ctree_zoom_out_s",
            "disc_zoom_in_s",
            "disc_zoom_out_s",
        ],
        &rows,
    );
}

/// Fig 6(j): refinement time against dataset size (NB-Index vs C-tree).
pub fn fig6j(ctx: &Ctx) {
    let spec = standard_specs(ctx.base_size, ctx.seed)[0];
    let full = spec.generate();
    let mut rows: Vec<Row> = Vec::new();
    let top = ctx.base_size;
    let sizes: Vec<usize> = [top / 4, top / 2, 3 * top / 4, top]
        .into_iter()
        .filter(|&s| s >= 50)
        .collect();
    for &n in &sizes {
        let data = Dataset {
            db: full.db.prefix(n),
            family: full.family[..n].to_vec(),
            spec: DatasetSpec { size: n, ..spec },
            default_theta: full.default_theta,
            default_ladder: full.default_ladder.clone(),
        };
        let relevant = data.default_query().relevant_set(&data.db);
        let theta0 = data.default_theta;
        let k = 10;

        let oracle = ctx.oracle(&data.db);
        let index = ctx.nb_index(&data, oracle.clone());
        let session = index.start_session(relevant.clone());
        let (nb_in, nb_out) = refinement_protocol(|t| timed(|| session.run(t, k)).1, theta0);

        let oracle = ctx.oracle(&data.db);
        let mut rng = SmallRng::seed_from_u64(ctx.seed);
        let ctree = CTree::build(&oracle, &mut rng);
        let mask = relevant_mask(oracle.len(), &relevant);
        let (ct_in, ct_out) = refinement_protocol(
            |t| {
                timed(|| {
                    baseline_greedy(
                        &CTreeProvider {
                            tree: &ctree,
                            oracle: &oracle,
                            relevant: mask.clone(),
                        },
                        &relevant,
                        t,
                        k,
                    )
                })
                .1
            },
            theta0,
        );

        rows.push(vec![
            n.to_string(),
            f((nb_in + nb_out) / 2.0),
            f((ct_in + ct_out) / 2.0),
        ]);
    }
    ctx.emit(
        "fig6j_refine_scale",
        &["db_size", "nb_refine_s", "ctree_refine_s"],
        &rows,
    );
}
