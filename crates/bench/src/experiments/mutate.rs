//! Dynamic-maintenance experiment (DESIGN.md §10): query latency and bound
//! tightness under interleaved insert/remove churn, and the amortized cost
//! of an incremental mutation versus rebuilding the whole NB-Index per op.
//!
//! The acceptance bar for the mutation layer is structural, not a tuning
//! knob: on the 500-graph dud workload the amortized per-op cost must stay
//! under 10% of a full rebuild, otherwise the incremental path has no
//! reason to exist — so the experiment asserts it.

use crate::harness::{f, timed, Ctx, Row};
use graphrep_core::{MutationOutcome, NbIndex, NbIndexConfig};
use graphrep_datagen::{DatasetKind, DatasetSpec};
use graphrep_graph::generate::mutate;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Interleaved churn ops applied to the index.
const CHURN_OPS: usize = 40;
/// Query checkpoints: every this many ops, a (θ, k) query is timed.
const QUERY_EVERY: usize = 8;

/// Churn vs rebuild-per-op on the 500-graph dud workload.
pub fn mutate_churn(ctx: &Ctx) {
    let size = 500;
    let data = DatasetSpec::new(DatasetKind::DudLike, size, ctx.seed).generate();
    let theta = data.default_theta;
    let oracle = ctx.oracle(&data.db);
    let (mut index, build_wall) = timed(|| ctx.nb_index(&data, oracle));
    eprintln!("cold build over {size} graphs: {build_wall:.2}s");

    // Diagnostic: a full build over the *current* (warm) oracle. With every
    // pairwise distance cached this is almost free — which is exactly why
    // the honest rebuild-per-op baseline below is the cold build: without a
    // mutation layer, a restarted process rebuilding after churn pays the
    // NP-hard distance phase again, not just the structural phase.
    let (_, warm_rebuild) = timed(|| {
        NbIndex::build(
            index.oracle_arc(),
            NbIndexConfig {
                num_vps: 16,
                ladder: data.default_ladder.clone(),
                seed: ctx.seed,
                ..NbIndexConfig::default()
            },
        )
    });
    eprintln!("warm (cached-distance) full rebuild: {warm_rebuild:.3}s");

    let mut rng = SmallRng::seed_from_u64(ctx.seed ^ 0x9e37);
    let mut graphs: Vec<graphrep_graph::Graph> = data.db.graphs().to_vec();
    let mut live: Vec<bool> = vec![true; graphs.len()];
    let relevant_base: Vec<u32> = data.default_query().relevant_set(&data.db);

    let mut rows: Vec<Row> = Vec::new();
    let mut mutation_secs = 0.0;
    let mut rebuilds = 0usize;
    for op in 0..CHURN_OPS {
        let (kind, secs) = if op % 2 == 0 {
            // Insert: a perturbed copy of a random live graph.
            let src = loop {
                let c = rng.gen_range(0..graphs.len());
                if live[c] {
                    break c;
                }
            };
            let g = mutate(&mut rng, &graphs[src], 2, &[0, 1], &[0]);
            let ((_, out), w) = timed(|| index.insert(g.clone()).expect("insert"));
            graphs.push(g);
            live.push(true);
            if out == MutationOutcome::Rebuilt {
                rebuilds += 1;
            }
            ("insert", w)
        } else {
            let victim = loop {
                let c = rng.gen_range(0..graphs.len());
                if live[c] {
                    break c as u32;
                }
            };
            let (out, w) = timed(|| index.remove(victim).expect("remove"));
            live[victim as usize] = false;
            if out == MutationOutcome::Rebuilt {
                rebuilds += 1;
            }
            ("remove", w)
        };
        mutation_secs += secs;

        if (op + 1) % QUERY_EVERY == 0 {
            // Query checkpoint: latency and bound tightness on the churned
            // index (distance calls per relevant graph measure how much of
            // the π̂ pruning survives mutation).
            let mut relevant: Vec<u32> = relevant_base
                .iter()
                .copied()
                .chain(data.db.len() as u32..graphs.len() as u32)
                .collect();
            relevant.retain(|&g| live[g as usize]);
            let n_rel = relevant.len();
            let (answer, stats) = index.query(relevant, theta, 5);
            rows.push(vec![
                (op + 1).to_string(),
                kind.to_string(),
                f(secs),
                f(stats.wall.as_secs_f64()),
                stats.distance_calls.to_string(),
                f(stats.distance_calls as f64 / n_rel.max(1) as f64),
                answer.len().to_string(),
                f(answer.pi()),
            ]);
        }
    }

    let amortized = mutation_secs / CHURN_OPS as f64;
    let ratio = amortized / build_wall.max(1e-9);
    eprintln!(
        "{CHURN_OPS} ops in {mutation_secs:.3}s (amortized {amortized:.4}s/op, \
         {rebuilds} policy rebuilds) vs {build_wall:.3}s full rebuild — ratio {ratio:.4} \
         (warm structural rebuild alone: {warm_rebuild:.3}s)"
    );
    rows.push(vec![
        "amortized".into(),
        "all".into(),
        f(amortized),
        f(build_wall),
        String::new(),
        String::new(),
        String::new(),
        f(ratio),
    ]);
    ctx.emit(
        "mutate_churn",
        &[
            "op",
            "kind",
            "op_secs",
            "query_secs",
            "dist_calls",
            "calls_per_relevant",
            "answer",
            "pi_or_ratio",
        ],
        &rows,
    );
    assert!(
        ratio < 0.10,
        "amortized per-op cost {amortized:.4}s is {:.1}% of a full rebuild \
         ({build_wall:.3}s); the incremental path must stay under 10%",
        ratio * 100.0
    );

    // Sanity: the churned index still answers exactly like a fresh build
    // over the same live state (spot check, not the full differential
    // suite). Built over the churned oracle: sharing the deterministic
    // distance cache cannot change any answer, and skips ~minutes of GED.
    let ref_index = NbIndex::build(
        index.oracle_arc(),
        NbIndexConfig {
            num_vps: 16,
            ladder: data.default_ladder.clone(),
            seed: ctx.seed,
            ..NbIndexConfig::default()
        },
    );
    let mut relevant: Vec<u32> = relevant_base
        .iter()
        .copied()
        .chain(data.db.len() as u32..graphs.len() as u32)
        .collect();
    relevant.retain(|&g| live[g as usize]);
    let (got, _) = index.query(relevant.clone(), theta, 5);
    let (want, _) = ref_index.query(relevant, theta, 5);
    assert_eq!(
        format!("{got:?}"),
        format!("{want:?}"),
        "churned index diverged from a fresh rebuild"
    );
    eprintln!("post-churn answer verified against a fresh rebuild");
}
