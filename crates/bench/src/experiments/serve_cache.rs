//! Caching-layer experiment for `graphrep-serve`.
//!
//! Drives one warm dataset with a *skewed* (Zipf-like, exponent 1.2)
//! deterministic workload at 1, 4, and 8 server workers, once with the
//! two-level cache disabled (`capacity: 0`) and once with it enabled, and
//! reports the latency/throughput deltas plus the cache hit rates. Three
//! contracts are enforced on every run:
//!
//! * determinism — each served answer is byte-identical to an offline
//!   [`graphrep_core::QuerySession::run`] replay, cached or not;
//! * conservation — `lookups == hits + misses` and
//!   `evictions <= insertions` on both cache tiers;
//! * effectiveness — with `SERVE_CACHE_BUDGET` set (the CI smoke job,
//!   `ci/serve_cache_budget.json`), the answer-cache hit rate on the
//!   skewed workload must meet the checked-in floor.

use crate::harness::{f, timed, Ctx, Row};
use graphrep_core::CacheConfig;
use graphrep_datagen::{DatasetKind, DatasetSpec};
use graphrep_serve::{
    offline_reference, registry, run_load, verify_against_offline, CacheTierStats, Client,
    DatasetRegistry, LoadMode, LoadSpec,
};

/// Worker-pool sizes to sweep: cache correctness must hold from a fully
/// serialized pool to a contended one.
const WORKER_COUNTS: &[usize] = &[1, 4, 8];

/// Answer-cache hit-rate floor enforced by the CI smoke job (see
/// `ci/serve_cache_budget.json`): the skewed cache-on runs must hit at
/// least this often.
#[derive(Debug, serde::Deserialize)]
struct Budget {
    min_answer_hit_rate: f64,
}

fn hit_rate(t: &CacheTierStats) -> f64 {
    if t.lookups == 0 {
        0.0
    } else {
        t.hits as f64 / t.lookups as f64
    }
}

fn conserve(tier: &str, t: &CacheTierStats) {
    assert_eq!(
        t.lookups,
        t.hits + t.misses,
        "{tier}: lookups != hits + misses ({t:?})"
    );
    assert!(
        t.evictions <= t.insertions,
        "{tier}: evictions exceed insertions ({t:?})"
    );
}

/// Cache-on vs cache-off serving under a skewed workload at 1/4/8 workers.
pub fn serve_cache(ctx: &Ctx) {
    let size = ctx.base_size.clamp(80, 160);
    // `Dataset` is not `Clone`; the spec is deterministic, so regenerating
    // yields byte-identical data for the reference and every server start.
    let gen = DatasetSpec::new(DatasetKind::DudLike, size, ctx.seed);
    let data = gen.generate();
    let spec = LoadSpec {
        dataset: "cache".to_owned(),
        connections: 4,
        requests_per_conn: 25,
        thetas: vec![
            data.default_theta * 0.8,
            data.default_theta,
            data.default_theta * 1.2,
        ],
        ks: vec![3, 5],
        quantile: 0.75,
        seed: ctx.seed,
        skew: 1.2,
        mode: LoadMode::Blocking,
    };

    // Ground truth once: the offline session replays every unique (θ, k).
    let ds = registry::load_in_memory("cache", data);
    let reference = offline_reference(&ds, &spec);

    let mut rows: Vec<Row> = Vec::new();
    let mut worst_answer_rate = f64::INFINITY;
    for &workers in WORKER_COUNTS {
        for cache_on in [false, true] {
            let cache_cfg = if cache_on {
                CacheConfig::default()
            } else {
                CacheConfig {
                    capacity: 0,
                    ..CacheConfig::default()
                }
            };
            let mut reg = DatasetRegistry::new();
            reg.insert(
                registry::load_in_memory("cache", gen.generate()).with_cache_config(cache_cfg),
            );
            let cfg = graphrep_serve::ServeConfig {
                workers,
                ..graphrep_serve::ServeConfig::default()
            };
            let handle = graphrep_serve::start(cfg, reg)
                .unwrap_or_else(|e| panic!("server failed to start at {workers} workers: {e}"));
            let addr = handle.addr().to_string();
            let (report, wall) = timed(|| {
                run_load(&addr, &spec)
                    .unwrap_or_else(|e| panic!("load run failed at {workers} workers: {e}"))
            });
            let stats = Client::connect(&addr)
                .and_then(|mut c| c.stats())
                .unwrap_or_else(|e| panic!("stats fetch failed at {workers} workers: {e}"));
            handle.shutdown();

            assert!(
                report.errors.is_empty(),
                "load errors at {workers} workers (cache_on={cache_on}): {:?}",
                report.errors
            );
            let verified = verify_against_offline(&report, &reference).unwrap_or_else(|e| {
                panic!("determinism violation at {workers} workers (cache_on={cache_on}): {e}")
            });
            assert_eq!(
                verified,
                spec.connections * spec.requests_per_conn,
                "incomplete run at {workers} workers"
            );

            let dstat = stats
                .datasets
                .iter()
                .find(|d| d.name == "cache")
                .expect("dataset row in stats");
            assert_eq!(dstat.cache_enabled, cache_on, "{dstat:?}");
            conserve("answer_cache", &dstat.answer_cache);
            conserve("view_store", &dstat.view_store);
            if cache_on {
                assert!(
                    dstat.answer_cache.hits > 0,
                    "skewed workload produced zero answer-cache hits: {:?}",
                    dstat.answer_cache
                );
                worst_answer_rate = worst_answer_rate.min(hit_rate(&dstat.answer_cache));
            } else {
                assert_eq!(dstat.answer_cache.lookups, 0, "{dstat:?}");
                assert_eq!(dstat.view_store.lookups, 0, "{dstat:?}");
            }

            rows.push(vec![
                workers.to_string(),
                if cache_on { "on" } else { "off" }.to_owned(),
                (spec.connections * spec.requests_per_conn).to_string(),
                f(wall),
                f(report.throughput_rps()),
                f(report.latency_quantile_ms(0.50)),
                f(report.latency_quantile_ms(0.99)),
                dstat.answer_cache.hits.to_string(),
                dstat.answer_cache.lookups.to_string(),
                f(hit_rate(&dstat.answer_cache)),
                dstat.view_store.hits.to_string(),
                dstat.view_store.lookups.to_string(),
                "true".to_owned(),
            ]);
        }
    }
    ctx.emit(
        "serve_cache",
        &[
            "workers",
            "cache",
            "requests",
            "wall_s",
            "rps",
            "p50_ms",
            "p99_ms",
            "answer_hits",
            "answer_lookups",
            "answer_hit_rate",
            "view_hits",
            "view_lookups",
            "answers_identical",
        ],
        &rows,
    );

    // CI smoke budget: the skewed cache-on runs must clear the checked-in
    // answer-cache hit-rate floor at every pool size.
    if let Ok(budget_path) = std::env::var("SERVE_CACHE_BUDGET") {
        let text = std::fs::read_to_string(&budget_path)
            .unwrap_or_else(|e| panic!("cannot read budget file {budget_path}: {e}"));
        let budget: Budget = serde_json::from_str(&text)
            .unwrap_or_else(|e| panic!("bad budget file {budget_path}: {e:?}"));
        assert!(
            worst_answer_rate >= budget.min_answer_hit_rate,
            "answer-cache hit rate {worst_answer_rate:.4} below budget {} (from {budget_path})",
            budget.min_answer_hit_rate
        );
        println!(
            "# serve_cache: within budget ({worst_answer_rate:.4} >= {})",
            budget.min_answer_hit_rate
        );
    }
}
