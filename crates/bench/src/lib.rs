//! Experiment harness shared code: dataset/index setup, timing, CSV output.
//!
//! Each experiment binary subcommand regenerates one table or figure of the
//! paper (see DESIGN.md §5 for the index). Output goes to stdout as CSV and
//! is mirrored under `results/`.

pub mod experiments;
pub mod harness;

pub use harness::{Ctx, Row};
