//! Timing, CSV emission, and common experiment setup.

use graphrep_core::{GraphDatabase, NbIndex, NbIndexConfig};
use graphrep_datagen::Dataset;
use graphrep_ged::{DistanceOracle, GedConfig};
use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// A CSV row: already-formatted cells.
pub type Row = Vec<String>;

/// Experiment context: where results are mirrored, scale factor, seed.
pub struct Ctx {
    /// Output directory (`results/` by default).
    pub out_dir: PathBuf,
    /// Base dataset size for non-sweep experiments.
    pub base_size: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for Ctx {
    fn default() -> Self {
        Self {
            out_dir: PathBuf::from("results"),
            base_size: 400,
            seed: 20140622, // SIGMOD'14 opening day
        }
    }
}

impl Ctx {
    /// Emits a CSV table to stdout and mirrors it to `results/<name>.csv`.
    pub fn emit(&self, name: &str, header: &[&str], rows: &[Row]) {
        let mut text = String::new();
        let _ = writeln!(text, "{}", header.join(","));
        for r in rows {
            let _ = writeln!(text, "{}", r.join(","));
        }
        println!("# {name}");
        print!("{text}");
        println!();
        let _ = fs::create_dir_all(&self.out_dir);
        let path = self.out_dir.join(format!("{name}.csv"));
        if fs::write(&path, &text).is_err() {
            eprintln!("warning: could not write {}", path.display());
        }
    }

    /// Standard oracle over a database (exact GED, uniform costs).
    pub fn oracle(&self, db: &GraphDatabase) -> Arc<DistanceOracle> {
        db.oracle(GedConfig::default())
    }

    /// Standard NB-Index build for a dataset (paper-style parameters scaled
    /// to our datasets: Sec 8.2.2).
    pub fn nb_index(&self, data: &Dataset, oracle: Arc<DistanceOracle>) -> NbIndex {
        NbIndex::build(
            oracle,
            NbIndexConfig {
                num_vps: 16,
                ladder: data.default_ladder.clone(),
                seed: self.seed,
                ..NbIndexConfig::default()
            },
        )
    }
}

/// Times a closure, returning `(result, seconds)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed().as_secs_f64())
}

/// Formats a float with 4 significant decimals for CSV cells.
pub fn f(v: f64) -> String {
    format!("{v:.4}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_returns_value_and_positive_time() {
        let (v, t) = timed(|| (0..1000).sum::<u64>());
        assert_eq!(v, 499_500);
        assert!(t >= 0.0);
    }

    #[test]
    fn emit_writes_file() {
        let dir = std::env::temp_dir().join("graphrep-bench-test");
        let ctx = Ctx {
            out_dir: dir.clone(),
            ..Default::default()
        };
        ctx.emit("unit", &["a", "b"], &[vec!["1".into(), "2".into()]]);
        let text = std::fs::read_to_string(dir.join("unit.csv")).unwrap();
        assert_eq!(text, "a,b\n1,2\n");
    }
}
