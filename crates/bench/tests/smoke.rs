//! Smoke tests: every experiment function runs at a tiny scale and writes
//! its CSV. Keeps the harness honest without the cost of a full run.

use graphrep_bench::experiments;
use graphrep_bench::harness::Ctx;
use std::fs;

fn tiny_ctx(tag: &str) -> Ctx {
    let dir = std::env::temp_dir().join(format!("graphrep-smoke-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    Ctx {
        out_dir: dir,
        base_size: 60,
        seed: 7,
    }
}

fn csv_exists(ctx: &Ctx, name: &str) -> bool {
    ctx.out_dir.join(format!("{name}.csv")).exists()
}

#[test]
fn quality_experiments_smoke() {
    let ctx = tiny_ctx("quality");
    assert!(experiments::run(&ctx, "table3"));
    assert!(experiments::run(&ctx, "table4"));
    assert!(experiments::run(&ctx, "fig7"));
    for f in ["table3", "table4", "fig7"] {
        assert!(csv_exists(&ctx, f), "{f}.csv missing");
    }
    let _ = fs::remove_dir_all(&ctx.out_dir);
}

#[test]
fn distance_experiments_smoke() {
    let ctx = tiny_ctx("dist");
    assert!(experiments::run(&ctx, "fig5dist"));
    assert!(experiments::run(&ctx, "fig5fpr"));
    for f in ["fig5ab_cdf", "fig5ce_hist", "fig5_dist_stats", "fig5fh_fpr"] {
        assert!(csv_exists(&ctx, f), "{f}.csv missing");
    }
    let _ = fs::remove_dir_all(&ctx.out_dir);
}

#[test]
fn scalability_experiments_smoke() {
    let ctx = tiny_ctx("scale");
    assert!(experiments::run(&ctx, "fig6a"));
    assert!(experiments::run(&ctx, "fig6h"));
    for f in ["fig6a_ladder_gap", "fig6h_dims"] {
        assert!(csv_exists(&ctx, f), "{f}.csv missing");
    }
    let _ = fs::remove_dir_all(&ctx.out_dir);
}

#[test]
fn ablation_and_summary_smoke() {
    let ctx = tiny_ctx("abl");
    assert!(experiments::run(&ctx, "ablation-bounds"));
    assert!(csv_exists(&ctx, "ablation_bounds"));
    // Summary needs the sweep CSVs; make a fake minimal one.
    fs::write(
        ctx.out_dir.join("fig5ik_time_vs_theta.csv"),
        "dataset,theta,nb_s,nb_calls,disc_s,disc_calls,ctree_s,ctree_calls,div_s,div_calls,matrix_s\nD,4,0.1,10,1.0,100,0.5,50,0.4,40,0.01\n",
    )
    .unwrap();
    assert!(experiments::run(&ctx, "summary"));
    assert!(csv_exists(&ctx, "summary_speedups"));
    let _ = fs::remove_dir_all(&ctx.out_dir);
}

#[test]
fn unknown_experiment_rejected() {
    let ctx = tiny_ctx("bogus");
    assert!(!experiments::run(&ctx, "not-an-experiment"));
}

#[test]
fn motivation_smoke() {
    let ctx = tiny_ctx("motiv");
    assert!(experiments::run(&ctx, "fig2a"));
    assert!(csv_exists(&ctx, "fig2a"));
    let _ = fs::remove_dir_all(&ctx.out_dir);
}
