//! Criterion benchmarks for index construction: NB-Index vs the comparator
//! indexes at a fixed dataset size.

use criterion::{criterion_group, criterion_main, Criterion};
use graphrep_baselines::{CTree, MTree, MatrixIndex};
use graphrep_core::{NbIndex, NbIndexConfig};
use graphrep_datagen::{DatasetKind, DatasetSpec};
use graphrep_ged::GedConfig;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_build(c: &mut Criterion) {
    let data = DatasetSpec::new(DatasetKind::DudLike, 80, 2).generate();

    let mut g = c.benchmark_group("index_build");
    g.sample_size(10);
    g.bench_function("nb_index", |b| {
        b.iter(|| {
            let oracle = data.db.oracle(GedConfig::default());
            NbIndex::build(
                oracle,
                NbIndexConfig {
                    num_vps: 8,
                    ladder: data.default_ladder.clone(),
                    ..NbIndexConfig::default()
                },
            )
        })
    });
    g.bench_function("mtree", |b| {
        b.iter(|| {
            let oracle = data.db.oracle(GedConfig::default());
            let mut rng = SmallRng::seed_from_u64(3);
            MTree::build(&oracle, &mut rng)
        })
    });
    g.bench_function("ctree", |b| {
        b.iter(|| {
            let oracle = data.db.oracle(GedConfig::default());
            let mut rng = SmallRng::seed_from_u64(3);
            CTree::build(&oracle, &mut rng)
        })
    });
    g.bench_function("distance_matrix", |b| {
        b.iter(|| {
            let oracle = data.db.oracle(GedConfig::default());
            MatrixIndex::build(&oracle)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_build);
criterion_main!(benches);
