//! Criterion benchmarks for query processing: NB-Index session runs and
//! refinements vs the baseline greedy under comparator indexes.

use criterion::{criterion_group, criterion_main, Criterion};
use graphrep_baselines::providers::{relevant_mask, CTreeProvider};
use graphrep_baselines::CTree;
use graphrep_core::{baseline_greedy, NbIndex, NbIndexConfig};
use graphrep_datagen::{DatasetKind, DatasetSpec};
use graphrep_ged::GedConfig;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_query(c: &mut Criterion) {
    let data = DatasetSpec::new(DatasetKind::DudLike, 120, 5).generate();
    let relevant = data.default_query().relevant_set(&data.db);
    let theta = data.default_theta;
    let k = 8;

    let oracle = data.db.oracle(GedConfig::default());
    let index = NbIndex::build(
        oracle.clone(),
        NbIndexConfig {
            num_vps: 12,
            ladder: data.default_ladder.clone(),
            ..NbIndexConfig::default()
        },
    );
    let session = index.start_session(relevant.clone());

    let ct_oracle = data.db.oracle(GedConfig::default());
    let mut rng = SmallRng::seed_from_u64(7);
    let ctree = CTree::build(&ct_oracle, &mut rng);
    let mask = relevant_mask(ct_oracle.len(), &relevant);

    let mut g = c.benchmark_group("query");
    g.sample_size(10);
    g.bench_function("nb_session_run", |b| b.iter(|| session.run(theta, k)));
    g.bench_function("nb_session_refine", |b| {
        // Alternate θ ± 10% — the interactive zoom pattern.
        let mut flip = false;
        b.iter(|| {
            flip = !flip;
            let t = if flip { theta * 0.9 } else { theta * 1.1 };
            session.run(t, k)
        })
    });
    g.bench_function("nb_full_query", |b| {
        b.iter(|| index.query(relevant.clone(), theta, k))
    });
    g.bench_function("ctree_greedy", |b| {
        b.iter(|| {
            baseline_greedy(
                &CTreeProvider {
                    tree: &ctree,
                    oracle: &ct_oracle,
                    relevant: mask.clone(),
                },
                &relevant,
                theta,
                k,
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_query);
criterion_main!(benches);
