//! Criterion micro-benchmarks for the edit-distance stack: exact A*,
//! bipartite bound, label lower bound, and θ-membership tests.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphrep_datagen::{DatasetKind, DatasetSpec};
use graphrep_ged::{bipartite, bounds, ged_exact, CostModel};

fn bench_ged(c: &mut Criterion) {
    let data = DatasetSpec::new(DatasetKind::DudLike, 60, 1).generate();
    let graphs = data.db.graphs();
    let cost = CostModel::uniform();
    // A same-family pair (close) and a cross-family pair (far).
    let close = (&graphs[0], &graphs[1]);
    let far = (&graphs[0], &graphs[55]);

    let mut g = c.benchmark_group("ged");
    g.bench_function("exact_same_family", |b| {
        b.iter(|| ged_exact(close.0, close.1, &cost, f64::INFINITY, 1_000_000))
    });
    g.bench_function("exact_cross_family", |b| {
        b.iter(|| ged_exact(far.0, far.1, &cost, f64::INFINITY, 1_000_000))
    });
    for theta in [2.0, 4.0, 8.0] {
        g.bench_with_input(
            BenchmarkId::new("within_cutoff", theta as u64),
            &theta,
            |b, &t| b.iter(|| ged_exact(far.0, far.1, &cost, t, 1_000_000)),
        );
    }
    g.bench_function("bipartite_upper_bound", |b| {
        b.iter(|| bipartite::bp_upper_bound(far.0, far.1, &cost))
    });
    g.bench_function("label_lower_bound", |b| {
        b.iter(|| bounds::label_lower_bound(far.0, far.1, &cost))
    });
    g.finish();
}

criterion_group!(benches, bench_ged);
criterion_main!(benches);
