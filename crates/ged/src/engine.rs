//! The distance engine: policy around exact search, bounds, and fallbacks.

use crate::bipartite::{bp_lower_bound, bp_upper_bound};
use crate::bounds::{
    degree_sequence_bound, label_lower_bound, label_lower_bound_profiled, size_lower_bound_profiled,
};
use crate::cost::CostModel;
use crate::counter::GedCounters;
use crate::exact::{ged_exact, Outcome};
use crate::profile::GraphProfile;
use graphrep_graph::Graph;

/// How distances are computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GedMode {
    /// Always run the exact A* (falling back to the bipartite upper bound
    /// only when the expansion budget is exhausted).
    Exact,
    /// Exact when both graphs have at most `exact_max_nodes` nodes;
    /// bipartite upper bound otherwise. **Not a metric** in the approximate
    /// regime — documented in DESIGN.md; index-correctness tests use `Exact`.
    Hybrid {
        /// Largest node count still handled exactly.
        exact_max_nodes: usize,
    },
}

/// Configuration of a [`GedEngine`].
#[derive(Debug, Clone, Copy)]
pub struct GedConfig {
    /// Edit operation costs.
    pub cost: CostModel,
    /// Exact vs hybrid policy.
    pub mode: GedMode,
    /// A* expansion budget per distance call.
    pub budget: u64,
}

impl Default for GedConfig {
    fn default() -> Self {
        Self {
            cost: CostModel::uniform(),
            mode: GedMode::Exact,
            budget: 400_000,
        }
    }
}

/// Computes graph edit distances according to a [`GedConfig`], accumulating
/// [`GedCounters`].
#[derive(Debug, Default)]
pub struct GedEngine {
    config: GedConfig,
    counters: GedCounters,
}

impl GedEngine {
    /// Creates an engine with the given configuration.
    pub fn new(config: GedConfig) -> Self {
        // graphrep: allow(G001, constructor contract: a bad cost model is a programming error caught at startup)
        config.cost.validate().expect("invalid cost model");
        Self {
            config,
            counters: GedCounters::default(),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &GedConfig {
        &self.config
    }

    /// The engine's counters.
    pub fn counters(&self) -> &GedCounters {
        &self.counters
    }

    /// A new engine with the same configuration and the current counter
    /// totals carried forward — the engine half of
    /// [`crate::DistanceOracle::extended`].
    pub fn fork(&self) -> GedEngine {
        let e = GedEngine::new(self.config);
        e.counters.restore(&self.counters.snapshot());
        e
    }

    fn use_exact(&self, g1: &Graph, g2: &Graph) -> bool {
        match self.config.mode {
            GedMode::Exact => true,
            GedMode::Hybrid { exact_max_nodes } => {
                g1.node_count() <= exact_max_nodes && g2.node_count() <= exact_max_nodes
            }
        }
    }

    /// The edit distance between `g1` and `g2`.
    ///
    /// Exact under [`GedMode::Exact`] unless the budget runs out, in which
    /// case the bipartite upper bound is returned and
    /// [`GedCounters::budget_fallbacks`] is incremented.
    pub fn distance(&self, g1: &Graph, g2: &Graph) -> f64 {
        let c = &self.config.cost;
        let lb = label_lower_bound(g1, g2, c);
        self.counters.add(&self.counters.bp_calls, 1);
        let ub = bp_upper_bound(g1, g2, c);
        if (ub - lb).abs() <= 1e-9 {
            return ub;
        }
        if !self.use_exact(g1, g2) {
            return ub;
        }
        self.counters.add(&self.counters.exact_searches, 1);
        let r = ged_exact(g1, g2, c, ub, self.config.budget);
        self.counters.add(&self.counters.expansions, r.expansions);
        match r.outcome {
            Outcome::Distance(d) => d,
            // The true distance is ≤ ub; with cutoff = ub the search can only
            // fail by budget, where ub is the best certificate we hold.
            Outcome::ExceedsCutoff | Outcome::BudgetExhausted => {
                self.counters.add(&self.counters.budget_fallbacks, 1);
                ub
            }
        }
    }

    /// Returns `Some(d)` iff `ged(g1, g2) = d ≤ tau` (within budget).
    ///
    /// `None` means the distance certainly exceeds `tau`, except after a
    /// budget fallback where the bipartite bound also exceeded `tau` (counted
    /// in [`GedCounters::budget_fallbacks`]).
    pub fn distance_within(&self, g1: &Graph, g2: &Graph, tau: f64) -> Option<f64> {
        let c = &self.config.cost;
        let lb = label_lower_bound(g1, g2, c);
        self.distance_within_from_lb(g1, g2, tau, lb)
    }

    /// [`GedEngine::distance`] with precomputed [`GraphProfile`]s: identical
    /// result, but the label lower bound is an O(n) merge over the cached
    /// sorted arrays instead of four per-call sorts.
    pub fn distance_profiled(
        &self,
        g1: &Graph,
        g2: &Graph,
        p1: &GraphProfile,
        p2: &GraphProfile,
    ) -> f64 {
        let c = &self.config.cost;
        let lb = label_lower_bound_profiled(p1, p2, c);
        self.counters.add(&self.counters.bp_calls, 1);
        let ub = bp_upper_bound(g1, g2, c);
        if (ub - lb).abs() <= 1e-9 {
            return ub;
        }
        if !self.use_exact(g1, g2) {
            return ub;
        }
        self.counters.add(&self.counters.exact_searches, 1);
        let r = ged_exact(g1, g2, c, ub, self.config.budget);
        self.counters.add(&self.counters.expansions, r.expansions);
        match r.outcome {
            Outcome::Distance(d) => d,
            // The true distance is ≤ ub; with cutoff = ub the search can only
            // fail by budget, where ub is the best certificate we hold.
            Outcome::ExceedsCutoff | Outcome::BudgetExhausted => {
                self.counters.add(&self.counters.budget_fallbacks, 1);
                ub
            }
        }
    }

    /// [`GedEngine::distance_within`] with precomputed [`GraphProfile`]s:
    /// identical verdicts and values, prefixed by the cheap profile tiers
    /// (size, profiled label, degree sequence) which can only turn an
    /// expensive rejection into a free one — each is a sound lower bound on
    /// the true distance, so `bound > τ` implies the engine would reject too.
    pub fn distance_within_profiled(
        &self,
        g1: &Graph,
        g2: &Graph,
        p1: &GraphProfile,
        p2: &GraphProfile,
        tau: f64,
    ) -> Option<f64> {
        let c = &self.config.cost;
        if size_lower_bound_profiled(p1, p2, c) > tau + 1e-9 {
            self.counters.add(&self.counters.lb_prunes, 1);
            return None;
        }
        let lb = label_lower_bound_profiled(p1, p2, c);
        if lb > tau + 1e-9 {
            self.counters.add(&self.counters.lb_prunes, 1);
            return None;
        }
        if degree_sequence_bound(p1, p2, c) > tau + 1e-9 {
            self.counters.add(&self.counters.lb_prunes, 1);
            return None;
        }
        self.distance_within_from_lb(g1, g2, tau, lb)
    }

    /// Shared tail of the `within` paths, entered with a label lower bound
    /// already known to be ≤ `tau`.
    fn distance_within_from_lb(&self, g1: &Graph, g2: &Graph, tau: f64, lb: f64) -> Option<f64> {
        let c = &self.config.cost;
        if lb > tau + 1e-9 {
            self.counters.add(&self.counters.lb_prunes, 1);
            return None;
        }
        if !self.use_exact(g1, g2) {
            self.counters.add(&self.counters.bp_calls, 1);
            let ub = bp_upper_bound(g1, g2, c);
            return (ub <= tau + 1e-9).then_some(ub);
        }
        self.counters.add(&self.counters.bp_calls, 1);
        let ub = bp_upper_bound(g1, g2, c);
        if (ub - lb).abs() <= 1e-9 {
            return (ub <= tau + 1e-9).then_some(ub);
        }
        // Assignment-based lower bound: O(n³), far cheaper than the exact
        // search it often avoids.
        if bp_lower_bound(g1, g2, c) > tau + 1e-9 {
            self.counters.add(&self.counters.lb_prunes, 1);
            return None;
        }
        self.counters.add(&self.counters.exact_searches, 1);
        let r = ged_exact(g1, g2, c, tau.min(ub), self.config.budget);
        self.counters.add(&self.counters.expansions, r.expansions);
        match r.outcome {
            Outcome::Distance(d) => Some(d),
            Outcome::ExceedsCutoff => None,
            Outcome::BudgetExhausted => {
                self.counters.add(&self.counters.budget_fallbacks, 1);
                (ub <= tau + 1e-9).then_some(ub)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphrep_graph::generate::{mutate, random_connected};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn engine() -> GedEngine {
        GedEngine::new(GedConfig::default())
    }

    #[test]
    fn distance_zero_for_identical() {
        let mut rng = SmallRng::seed_from_u64(1);
        let g = random_connected(&mut rng, 8, 3, &[0, 1, 2], &[4, 5]);
        assert_eq!(engine().distance(&g, &g), 0.0);
    }

    #[test]
    fn within_agrees_with_distance() {
        let mut rng = SmallRng::seed_from_u64(2);
        let e = engine();
        for _ in 0..15 {
            let g1 = random_connected(&mut rng, 6, 2, &[0, 1, 2], &[4, 5]);
            let g2 = mutate(&mut rng, &g1, 3, &[0, 1, 2], &[4, 5]);
            let d = e.distance(&g1, &g2);
            assert_eq!(e.distance_within(&g1, &g2, d), Some(d));
            if d > 0.5 {
                assert_eq!(e.distance_within(&g1, &g2, d - 0.5), None);
            }
        }
    }

    #[test]
    fn counters_accumulate() {
        let e = engine();
        let mut rng = SmallRng::seed_from_u64(3);
        let g1 = random_connected(&mut rng, 6, 2, &[0, 1, 2], &[4, 5]);
        let g2 = random_connected(&mut rng, 7, 2, &[0, 1, 2], &[4, 5]);
        let _ = e.distance(&g1, &g2);
        let s = e.counters().snapshot();
        assert!(s.bp_calls >= 1);
    }

    #[test]
    fn lb_prune_short_circuits() {
        let e = engine();
        let mut rng = SmallRng::seed_from_u64(4);
        let g1 = random_connected(&mut rng, 4, 1, &[0], &[1]);
        let g2 = random_connected(&mut rng, 12, 4, &[5], &[6]);
        // Wildly different sizes/labels: lower bound alone rejects tau = 1.
        assert_eq!(e.distance_within(&g1, &g2, 1.0), None);
        assert!(e.counters().snapshot().lb_prunes >= 1);
        assert_eq!(e.counters().snapshot().exact_searches, 0);
    }

    #[test]
    fn hybrid_mode_uses_upper_bound_for_large_graphs() {
        let e = GedEngine::new(GedConfig {
            mode: GedMode::Hybrid { exact_max_nodes: 4 },
            ..GedConfig::default()
        });
        let mut rng = SmallRng::seed_from_u64(5);
        let g1 = random_connected(&mut rng, 8, 3, &[0, 1], &[2]);
        let g2 = mutate(&mut rng, &g1, 2, &[0, 1], &[2]);
        let approx = e.distance(&g1, &g2);
        let exact = engine().distance(&g1, &g2);
        assert!(approx >= exact - 1e-9);
        assert_eq!(e.counters().snapshot().exact_searches, 0);
    }

    #[test]
    fn symmetry_of_engine_distance() {
        let e = engine();
        let mut rng = SmallRng::seed_from_u64(6);
        for _ in 0..10 {
            let g1 = random_connected(&mut rng, 5, 2, &[0, 1], &[2, 3]);
            let g2 = random_connected(&mut rng, 6, 2, &[0, 1], &[2, 3]);
            assert_eq!(e.distance(&g1, &g2), e.distance(&g2, &g1));
        }
    }
}
