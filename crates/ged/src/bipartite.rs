//! Bipartite graph-edit-distance approximation (Riesen & Bunke style).
//!
//! A square assignment problem over node sets augmented with ε rows/columns
//! produces a complete node mapping in `O(n³)`; the exact cost of the edit
//! path *induced* by that mapping is a valid **upper bound** on GED. This is
//! the workhorse for large graphs (hybrid mode) and for seeding the exact
//! search with a good cutoff.

use crate::assignment::{solve, CostMatrix};
use crate::bounds::multiset_bound;
use crate::cost::CostModel;
use graphrep_graph::{Graph, NodeId};

/// A complete node mapping from `g1` to `g2`: `map1[i]` is the image of node
/// `i` (or `None` for deletion), `unmatched2` are the inserted `g2` nodes.
#[derive(Debug, Clone)]
pub struct NodeMapping {
    /// Image of each `g1` node.
    pub map1: Vec<Option<NodeId>>,
    /// `g2` nodes not covered by the mapping (inserted).
    pub unmatched2: Vec<NodeId>,
}

/// Builds the `(n1+n2) × (n1+n2)` Riesen–Bunke cost matrix.
///
/// The upper-left block holds substitution estimates (node substitution plus
/// half the incident-edge multiset bound — each edge is seen from both of its
/// endpoints); the diagonal blocks hold deletions/insertions including
/// incident edges; the lower-right block is zero.
#[allow(clippy::needless_range_loop)] // indexed loops mirror the block matrix
fn bp_matrix(g1: &Graph, g2: &Graph, cost: &CostModel) -> CostMatrix {
    let n1 = g1.node_count();
    let n2 = g2.node_count();
    let n = n1 + n2;
    let inf = f64::INFINITY;
    let mut m = CostMatrix::filled(n, 0.0);

    let star = |g: &Graph, u: NodeId| -> Vec<u32> {
        let mut v: Vec<u32> = g.neighbors(u).iter().map(|&(_, l)| l).collect();
        v.sort_unstable();
        v
    };
    let stars1: Vec<Vec<u32>> = (0..n1 as NodeId).map(|u| star(g1, u)).collect();
    let stars2: Vec<Vec<u32>> = (0..n2 as NodeId).map(|u| star(g2, u)).collect();
    // (indexed loops below intentionally mirror the matrix block structure)

    for i in 0..n1 {
        for j in 0..n2 {
            let node = cost.node_subst(g1.node_label(i as NodeId), g2.node_label(j as NodeId));
            let edges =
                multiset_bound(&stars1[i], &stars2[j], cost.edge_sub, cost.edge_indel) / 2.0;
            m.set(i, j, node + edges);
        }
        // i -> ε (delete node i and its incident edges, half-charged).
        for j in n2..n {
            let v = if j - n2 == i {
                cost.node_indel + g1.degree(i as NodeId) as f64 * cost.edge_indel / 2.0
            } else {
                inf
            };
            m.set(i, j, v);
        }
    }
    for i in n1..n {
        for j in 0..n2 {
            let v = if i - n1 == j {
                cost.node_indel + g2.degree(j as NodeId) as f64 * cost.edge_indel / 2.0
            } else {
                inf
            };
            m.set(i, j, v);
        }
        // ε -> ε block stays 0.
    }
    m
}

/// Runs the bipartite heuristic and returns the induced node mapping.
pub fn bp_mapping(g1: &Graph, g2: &Graph, cost: &CostModel) -> NodeMapping {
    let n1 = g1.node_count();
    let n2 = g2.node_count();
    let a = solve(&bp_matrix(g1, g2, cost));
    let mut map1 = vec![None; n1];
    let mut used2 = vec![false; n2];
    for (i, &c) in a.row_to_col.iter().take(n1).enumerate() {
        if c < n2 {
            map1[i] = Some(c as NodeId);
            used2[c] = true;
        }
    }
    let unmatched2 = (0..n2 as NodeId).filter(|&j| !used2[j as usize]).collect();
    NodeMapping { map1, unmatched2 }
}

/// Exact cost of the edit path induced by a complete node mapping.
///
/// This is an upper bound on the true GED for *any* mapping, and the basis
/// of [`bp_upper_bound`].
pub fn induced_cost(g1: &Graph, g2: &Graph, mapping: &NodeMapping, cost: &CostModel) -> f64 {
    let mut total = 0.0;
    // Node operations.
    for (i, img) in mapping.map1.iter().enumerate() {
        match img {
            Some(j) => total += cost.node_subst(g1.node_label(i as NodeId), g2.node_label(*j)),
            None => total += cost.node_indel,
        }
    }
    total += mapping.unmatched2.len() as f64 * cost.node_indel;

    // g1 edges: substituted when both endpoints map and the image edge
    // exists, deleted otherwise.
    let mut matched_g2_edges = 0usize;
    for e in g1.edges() {
        match (mapping.map1[e.u as usize], mapping.map1[e.v as usize]) {
            (Some(a), Some(b)) => match g2.edge_label(a, b) {
                Some(l2) => {
                    total += cost.edge_subst(e.label, l2);
                    matched_g2_edges += 1;
                }
                None => total += cost.edge_indel,
            },
            _ => total += cost.edge_indel,
        }
    }
    // Remaining g2 edges are insertions.
    total += (g2.edge_count() - matched_g2_edges) as f64 * cost.edge_indel;
    total
}

/// Upper bound on GED from the bipartite heuristic: symmetric by
/// construction (runs both directions and keeps the smaller).
pub fn bp_upper_bound(g1: &Graph, g2: &Graph, cost: &CostModel) -> f64 {
    let a = induced_cost(g1, g2, &bp_mapping(g1, g2, cost), cost);
    let b = induced_cost(g2, g1, &bp_mapping(g2, g1, cost), cost);
    a.min(b)
}

/// Assignment-based **lower bound** (Riesen-style): the optimal cost of the
/// bipartite matrix itself.
///
/// Sound because any true edit path induces a complete node assignment
/// whose matrix cost it dominates: node operations are charged identically,
/// and every edge operation of the path is charged to its two endpoints at
/// half cost each (edges to deleted/inserted partners included), while
/// substitution entries use the *admissible* half-star multiset bound.
/// Stronger than the label bound whenever local structure disagrees.
pub fn bp_lower_bound(g1: &Graph, g2: &Graph, cost: &CostModel) -> f64 {
    solve(&bp_matrix(g1, g2, cost)).cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::label_lower_bound;
    use crate::exact::ged_exact_full;
    use graphrep_graph::generate::{mutate, random_connected};
    use graphrep_graph::GraphBuilder;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn build(nodes: &[u32], edges: &[(u16, u16, u32)]) -> Graph {
        let mut b = GraphBuilder::new();
        for &l in nodes {
            b.add_node(l);
        }
        for &(u, v, l) in edges {
            b.add_edge(u, v, l).unwrap();
        }
        b.build()
    }

    #[test]
    fn identical_graphs_bound_zero() {
        let g = build(&[0, 1, 2], &[(0, 1, 5), (1, 2, 6)]);
        assert_eq!(bp_upper_bound(&g, &g, &CostModel::uniform()), 0.0);
    }

    #[test]
    fn empty_graph_bound_is_exact() {
        let e = build(&[], &[]);
        let g = build(&[0, 1], &[(0, 1, 3)]);
        assert_eq!(bp_upper_bound(&e, &g, &CostModel::uniform()), 3.0);
    }

    #[test]
    fn mapping_shape() {
        let g1 = build(&[0, 1], &[(0, 1, 3)]);
        let g2 = build(&[0, 1, 2], &[(0, 1, 3), (1, 2, 4)]);
        let m = bp_mapping(&g1, &g2, &CostModel::uniform());
        assert_eq!(m.map1.len(), 2);
        let mapped = m.map1.iter().flatten().count();
        assert_eq!(m.unmatched2.len(), 3 - mapped);
    }

    #[test]
    fn upper_bound_sandwiches_exact_on_random_pairs() {
        let mut rng = SmallRng::seed_from_u64(23);
        let c = CostModel::uniform();
        for trial in 0..25 {
            let g1 = random_connected(&mut rng, 5, 2, &[0, 1, 2], &[9, 8]);
            let g2 = if trial % 2 == 0 {
                mutate(&mut rng, &g1, 2, &[0, 1, 2], &[9, 8])
            } else {
                random_connected(&mut rng, 6, 2, &[0, 1, 2], &[9, 8])
            };
            let exact = ged_exact_full(&g1, &g2, &c, 2_000_000).unwrap().0;
            let ub = bp_upper_bound(&g1, &g2, &c);
            let lb = label_lower_bound(&g1, &g2, &c);
            assert!(
                ub >= exact - 1e-9,
                "ub {ub} < exact {exact} (trial {trial})"
            );
            assert!(
                lb <= exact + 1e-9,
                "lb {lb} > exact {exact} (trial {trial})"
            );
        }
    }

    #[test]
    fn upper_bound_is_symmetric() {
        let mut rng = SmallRng::seed_from_u64(31);
        let c = CostModel::uniform();
        for _ in 0..10 {
            let g1 = random_connected(&mut rng, 6, 3, &[0, 1], &[5, 6]);
            let g2 = random_connected(&mut rng, 7, 3, &[0, 1], &[5, 6]);
            assert_eq!(bp_upper_bound(&g1, &g2, &c), bp_upper_bound(&g2, &g1, &c));
        }
    }

    #[test]
    fn bp_lower_bound_is_admissible_on_random_pairs() {
        let mut rng = SmallRng::seed_from_u64(47);
        let c = CostModel::uniform();
        for trial in 0..40 {
            let g1 = random_connected(&mut rng, 4 + trial % 4, 2, &[0, 1, 2], &[9, 8]);
            let g2 = if trial % 3 == 0 {
                mutate(&mut rng, &g1, 2, &[0, 1, 2], &[9, 8])
            } else {
                random_connected(&mut rng, 5 + trial % 3, 2, &[0, 1, 2], &[9, 8])
            };
            let exact = ged_exact_full(&g1, &g2, &c, 2_000_000).unwrap().0;
            let lb = bp_lower_bound(&g1, &g2, &c);
            assert!(
                lb <= exact + 1e-9,
                "bp lb {lb} > exact {exact} (trial {trial})"
            );
        }
    }

    #[test]
    fn bp_lower_bound_zero_on_identical() {
        let g = build(&[0, 1, 2], &[(0, 1, 5), (1, 2, 6)]);
        assert_eq!(bp_lower_bound(&g, &g, &CostModel::uniform()), 0.0);
    }

    #[test]
    fn bp_lower_bound_sees_structural_mismatch_label_bound_misses() {
        // Same node/edge label multisets, different local structure:
        // a path vs a star over identical labels.
        let path = build(&[0, 0, 0, 0], &[(0, 1, 1), (1, 2, 1), (2, 3, 1)]);
        let star = build(&[0, 0, 0, 0], &[(0, 1, 1), (0, 2, 1), (0, 3, 1)]);
        let c = CostModel::uniform();
        assert_eq!(label_lower_bound(&path, &star, &c), 0.0);
        assert!(bp_lower_bound(&path, &star, &c) > 0.0);
    }

    #[test]
    fn induced_cost_of_identity_mapping_is_zero() {
        let g = build(&[0, 1, 2], &[(0, 1, 5), (1, 2, 6)]);
        let m = NodeMapping {
            map1: vec![Some(0), Some(1), Some(2)],
            unmatched2: vec![],
        };
        assert_eq!(induced_cost(&g, &g, &m, &CostModel::uniform()), 0.0);
    }
}
