//! Bipartite graph-edit-distance approximation (Riesen & Bunke style).
//!
//! A square assignment problem over node sets augmented with ε rows/columns
//! produces a complete node mapping in `O(n³)`; the exact cost of the edit
//! path *induced* by that mapping is a valid **upper bound** on GED. This is
//! the workhorse for large graphs (hybrid mode) and for seeding the exact
//! search with a good cutoff.

use crate::assignment::{solve, solve_into, AssignScratch, CostMatrix};
use crate::bounds::multiset_bound;
use crate::cost::CostModel;
use graphrep_graph::{Graph, NodeId};

/// Reusable buffers for the bipartite bounds: the cost matrix, flattened
/// per-node star label multisets, and the Hungarian solver's scratch. Lives
/// in the per-thread [`crate::scratch::SearchScratch`].
#[derive(Debug, Default)]
pub(crate) struct BpBufs {
    m: CostMatrix,
    stars1: Vec<u32>,
    stars1_off: Vec<usize>,
    stars2: Vec<u32>,
    stars2_off: Vec<usize>,
    assign: AssignScratch,
}

/// A complete node mapping from `g1` to `g2`: `map1[i]` is the image of node
/// `i` (or `None` for deletion), `unmatched2` are the inserted `g2` nodes.
#[derive(Debug, Clone)]
pub struct NodeMapping {
    /// Image of each `g1` node.
    pub map1: Vec<Option<NodeId>>,
    /// `g2` nodes not covered by the mapping (inserted).
    pub unmatched2: Vec<NodeId>,
}

/// Fills `flat`/`off` with the sorted neighbor-label multiset of every node
/// of `g`, reusing the buffers.
// graphrep: hot-path
fn stars_into(g: &Graph, flat: &mut Vec<u32>, off: &mut Vec<usize>) {
    flat.clear();
    off.clear();
    for u in 0..g.node_count() as NodeId {
        let start = flat.len();
        off.push(start);
        for &(_, l) in g.neighbors(u) {
            flat.push(l);
        }
        flat[start..].sort_unstable();
    }
    off.push(flat.len());
}

/// Builds the `(n1+n2) × (n1+n2)` Riesen–Bunke cost matrix into `bufs.m`.
///
/// The upper-left block holds substitution estimates (node substitution plus
/// half the incident-edge multiset bound — each edge is seen from both of its
/// endpoints); the diagonal blocks hold deletions/insertions including
/// incident edges; the lower-right block is zero.
#[allow(clippy::needless_range_loop)] // indexed loops mirror the block matrix
                                      // graphrep: hot-path
fn bp_matrix_into(g1: &Graph, g2: &Graph, cost: &CostModel, bufs: &mut BpBufs) {
    let n1 = g1.node_count();
    let n2 = g2.node_count();
    let n = n1 + n2;
    let inf = f64::INFINITY;
    bufs.m.reset(n, 0.0);
    stars_into(g1, &mut bufs.stars1, &mut bufs.stars1_off);
    stars_into(g2, &mut bufs.stars2, &mut bufs.stars2_off);
    let m = &mut bufs.m;
    // (indexed loops below intentionally mirror the matrix block structure)

    for i in 0..n1 {
        let s1 = &bufs.stars1[bufs.stars1_off[i]..bufs.stars1_off[i + 1]];
        for j in 0..n2 {
            let s2 = &bufs.stars2[bufs.stars2_off[j]..bufs.stars2_off[j + 1]];
            let node = cost.node_subst(g1.node_label(i as NodeId), g2.node_label(j as NodeId));
            let edges = multiset_bound(s1, s2, cost.edge_sub, cost.edge_indel) / 2.0;
            m.set(i, j, node + edges);
        }
        // i -> ε (delete node i and its incident edges, half-charged).
        for j in n2..n {
            let v = if j - n2 == i {
                cost.node_indel + g1.degree(i as NodeId) as f64 * cost.edge_indel / 2.0
            } else {
                inf
            };
            m.set(i, j, v);
        }
    }
    for i in n1..n {
        for j in 0..n2 {
            let v = if i - n1 == j {
                cost.node_indel + g2.degree(j as NodeId) as f64 * cost.edge_indel / 2.0
            } else {
                inf
            };
            m.set(i, j, v);
        }
        // ε -> ε block stays 0.
    }
}

/// Runs the bipartite heuristic and returns the induced node mapping.
pub fn bp_mapping(g1: &Graph, g2: &Graph, cost: &CostModel) -> NodeMapping {
    let n1 = g1.node_count();
    let n2 = g2.node_count();
    let a = crate::scratch::with_scratch(|s| {
        bp_matrix_into(g1, g2, cost, &mut s.bp);
        solve(&s.bp.m)
    });
    let mut map1 = vec![None; n1];
    let mut used2 = vec![false; n2];
    for (i, &c) in a.row_to_col.iter().take(n1).enumerate() {
        if c < n2 {
            map1[i] = Some(c as NodeId);
            used2[c] = true;
        }
    }
    let unmatched2 = (0..n2 as NodeId).filter(|&j| !used2[j as usize]).collect();
    NodeMapping { map1, unmatched2 }
}

/// Exact cost of the edit path induced by a complete node mapping.
///
/// This is an upper bound on the true GED for *any* mapping, and the basis
/// of [`bp_upper_bound`].
pub fn induced_cost(g1: &Graph, g2: &Graph, mapping: &NodeMapping, cost: &CostModel) -> f64 {
    let mut total = 0.0;
    // Node operations.
    for (i, img) in mapping.map1.iter().enumerate() {
        match img {
            Some(j) => total += cost.node_subst(g1.node_label(i as NodeId), g2.node_label(*j)),
            None => total += cost.node_indel,
        }
    }
    total += mapping.unmatched2.len() as f64 * cost.node_indel;

    // g1 edges: substituted when both endpoints map and the image edge
    // exists, deleted otherwise.
    let mut matched_g2_edges = 0usize;
    for e in g1.edges() {
        match (mapping.map1[e.u as usize], mapping.map1[e.v as usize]) {
            (Some(a), Some(b)) => match g2.edge_label(a, b) {
                Some(l2) => {
                    total += cost.edge_subst(e.label, l2);
                    matched_g2_edges += 1;
                }
                None => total += cost.edge_indel,
            },
            _ => total += cost.edge_indel,
        }
    }
    // Remaining g2 edges are insertions.
    total += (g2.edge_count() - matched_g2_edges) as f64 * cost.edge_indel;
    total
}

/// Exact induced-path cost straight from the solver's `row_to_col` output,
/// without materializing a [`NodeMapping`]. Same value as [`induced_cost`].
// graphrep: hot-path
fn induced_from_rows(g1: &Graph, g2: &Graph, row_to_col: &[usize], cost: &CostModel) -> f64 {
    let n1 = g1.node_count();
    let n2 = g2.node_count();
    let mut total = 0.0;
    // Node operations.
    let mut matched = 0usize;
    for (i, &c) in row_to_col.iter().take(n1).enumerate() {
        if c < n2 {
            total += cost.node_subst(g1.node_label(i as NodeId), g2.node_label(c as NodeId));
            matched += 1;
        } else {
            total += cost.node_indel;
        }
    }
    total += (n2 - matched) as f64 * cost.node_indel;

    // g1 edges: substituted when both endpoints map and the image edge
    // exists, deleted otherwise.
    let mut matched_g2_edges = 0usize;
    for e in g1.edges() {
        let cu = row_to_col[e.u as usize];
        let cv = row_to_col[e.v as usize];
        if cu < n2 && cv < n2 {
            match g2.edge_label(cu as NodeId, cv as NodeId) {
                Some(l2) => {
                    total += cost.edge_subst(e.label, l2);
                    matched_g2_edges += 1;
                }
                None => total += cost.edge_indel,
            }
        } else {
            total += cost.edge_indel;
        }
    }
    // Remaining g2 edges are insertions.
    total += (g2.edge_count() - matched_g2_edges) as f64 * cost.edge_indel;
    total
}

/// Upper bound on GED from the bipartite heuristic: symmetric by
/// construction (runs both directions and keeps the smaller).
pub fn bp_upper_bound(g1: &Graph, g2: &Graph, cost: &CostModel) -> f64 {
    crate::scratch::with_scratch(|s| bp_upper_bound_in(g1, g2, cost, &mut s.bp))
}

/// [`bp_upper_bound`] over caller-provided scratch; allocation-free after
/// warm-up.
// graphrep: hot-path
pub(crate) fn bp_upper_bound_in(
    g1: &Graph,
    g2: &Graph,
    cost: &CostModel,
    bufs: &mut BpBufs,
) -> f64 {
    bp_matrix_into(g1, g2, cost, bufs);
    let _ = solve_into(&bufs.m, &mut bufs.assign);
    let a = induced_from_rows(g1, g2, &bufs.assign.row_to_col, cost);
    bp_matrix_into(g2, g1, cost, bufs);
    let _ = solve_into(&bufs.m, &mut bufs.assign);
    let b = induced_from_rows(g2, g1, &bufs.assign.row_to_col, cost);
    a.min(b)
}

/// Assignment-based **lower bound** (Riesen-style): the optimal cost of the
/// bipartite matrix itself.
///
/// Sound because any true edit path induces a complete node assignment
/// whose matrix cost it dominates: node operations are charged identically,
/// and every edge operation of the path is charged to its two endpoints at
/// half cost each (edges to deleted/inserted partners included), while
/// substitution entries use the *admissible* half-star multiset bound.
/// Stronger than the label bound whenever local structure disagrees.
pub fn bp_lower_bound(g1: &Graph, g2: &Graph, cost: &CostModel) -> f64 {
    crate::scratch::with_scratch(|s| bp_lower_bound_in(g1, g2, cost, &mut s.bp))
}

/// [`bp_lower_bound`] over caller-provided scratch; allocation-free after
/// warm-up.
// graphrep: hot-path
pub(crate) fn bp_lower_bound_in(
    g1: &Graph,
    g2: &Graph,
    cost: &CostModel,
    bufs: &mut BpBufs,
) -> f64 {
    bp_matrix_into(g1, g2, cost, bufs);
    solve_into(&bufs.m, &mut bufs.assign)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::label_lower_bound;
    use crate::exact::ged_exact_full;
    use graphrep_graph::generate::{mutate, random_connected};
    use graphrep_graph::GraphBuilder;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn build(nodes: &[u32], edges: &[(u16, u16, u32)]) -> Graph {
        let mut b = GraphBuilder::new();
        for &l in nodes {
            b.add_node(l);
        }
        for &(u, v, l) in edges {
            b.add_edge(u, v, l).unwrap();
        }
        b.build()
    }

    #[test]
    fn identical_graphs_bound_zero() {
        let g = build(&[0, 1, 2], &[(0, 1, 5), (1, 2, 6)]);
        assert_eq!(bp_upper_bound(&g, &g, &CostModel::uniform()), 0.0);
    }

    #[test]
    fn empty_graph_bound_is_exact() {
        let e = build(&[], &[]);
        let g = build(&[0, 1], &[(0, 1, 3)]);
        assert_eq!(bp_upper_bound(&e, &g, &CostModel::uniform()), 3.0);
    }

    #[test]
    fn mapping_shape() {
        let g1 = build(&[0, 1], &[(0, 1, 3)]);
        let g2 = build(&[0, 1, 2], &[(0, 1, 3), (1, 2, 4)]);
        let m = bp_mapping(&g1, &g2, &CostModel::uniform());
        assert_eq!(m.map1.len(), 2);
        let mapped = m.map1.iter().flatten().count();
        assert_eq!(m.unmatched2.len(), 3 - mapped);
    }

    #[test]
    fn upper_bound_sandwiches_exact_on_random_pairs() {
        let mut rng = SmallRng::seed_from_u64(23);
        let c = CostModel::uniform();
        for trial in 0..25 {
            let g1 = random_connected(&mut rng, 5, 2, &[0, 1, 2], &[9, 8]);
            let g2 = if trial % 2 == 0 {
                mutate(&mut rng, &g1, 2, &[0, 1, 2], &[9, 8])
            } else {
                random_connected(&mut rng, 6, 2, &[0, 1, 2], &[9, 8])
            };
            let exact = ged_exact_full(&g1, &g2, &c, 2_000_000).unwrap().0;
            let ub = bp_upper_bound(&g1, &g2, &c);
            let lb = label_lower_bound(&g1, &g2, &c);
            assert!(
                ub >= exact - 1e-9,
                "ub {ub} < exact {exact} (trial {trial})"
            );
            assert!(
                lb <= exact + 1e-9,
                "lb {lb} > exact {exact} (trial {trial})"
            );
        }
    }

    #[test]
    fn upper_bound_is_symmetric() {
        let mut rng = SmallRng::seed_from_u64(31);
        let c = CostModel::uniform();
        for _ in 0..10 {
            let g1 = random_connected(&mut rng, 6, 3, &[0, 1], &[5, 6]);
            let g2 = random_connected(&mut rng, 7, 3, &[0, 1], &[5, 6]);
            assert_eq!(bp_upper_bound(&g1, &g2, &c), bp_upper_bound(&g2, &g1, &c));
        }
    }

    #[test]
    fn bp_lower_bound_is_admissible_on_random_pairs() {
        let mut rng = SmallRng::seed_from_u64(47);
        let c = CostModel::uniform();
        for trial in 0..40 {
            let g1 = random_connected(&mut rng, 4 + trial % 4, 2, &[0, 1, 2], &[9, 8]);
            let g2 = if trial % 3 == 0 {
                mutate(&mut rng, &g1, 2, &[0, 1, 2], &[9, 8])
            } else {
                random_connected(&mut rng, 5 + trial % 3, 2, &[0, 1, 2], &[9, 8])
            };
            let exact = ged_exact_full(&g1, &g2, &c, 2_000_000).unwrap().0;
            let lb = bp_lower_bound(&g1, &g2, &c);
            assert!(
                lb <= exact + 1e-9,
                "bp lb {lb} > exact {exact} (trial {trial})"
            );
        }
    }

    #[test]
    fn bp_lower_bound_zero_on_identical() {
        let g = build(&[0, 1, 2], &[(0, 1, 5), (1, 2, 6)]);
        assert_eq!(bp_lower_bound(&g, &g, &CostModel::uniform()), 0.0);
    }

    #[test]
    fn bp_lower_bound_sees_structural_mismatch_label_bound_misses() {
        // Same node/edge label multisets, different local structure:
        // a path vs a star over identical labels.
        let path = build(&[0, 0, 0, 0], &[(0, 1, 1), (1, 2, 1), (2, 3, 1)]);
        let star = build(&[0, 0, 0, 0], &[(0, 1, 1), (0, 2, 1), (0, 3, 1)]);
        let c = CostModel::uniform();
        assert_eq!(label_lower_bound(&path, &star, &c), 0.0);
        assert!(bp_lower_bound(&path, &star, &c) > 0.0);
    }

    #[test]
    fn induced_cost_of_identity_mapping_is_zero() {
        let g = build(&[0, 1, 2], &[(0, 1, 5), (1, 2, 6)]);
        let m = NodeMapping {
            map1: vec![Some(0), Some(1), Some(2)],
            unmatched2: vec![],
        };
        assert_eq!(induced_cost(&g, &g, &m, &CostModel::uniform()), 0.0);
    }
}
