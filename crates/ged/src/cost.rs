//! Edit-operation cost models.

use serde::{Deserialize, Serialize};

/// Costs of the six edit operations.
///
/// The graph edit distance is the minimum total cost of an edit path turning
/// one graph into the other. For the distance to be a *metric* — which
/// Theorems 3–8 of the paper require — the costs must be symmetric (shared
/// insert/delete costs, as modeled here) and substitutions must not exceed a
/// delete + insert (`sub ≤ del + ins`), which [`CostModel::validate`] checks.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Cost of relabeling a node (applied only when labels differ).
    pub node_sub: f64,
    /// Cost of inserting or deleting a node.
    pub node_indel: f64,
    /// Cost of relabeling an edge (applied only when labels differ).
    pub edge_sub: f64,
    /// Cost of inserting or deleting an edge.
    pub edge_indel: f64,
}

impl CostModel {
    /// The classical uniform model: every operation costs 1.
    pub const fn uniform() -> Self {
        Self {
            node_sub: 1.0,
            node_indel: 1.0,
            edge_sub: 1.0,
            edge_indel: 1.0,
        }
    }

    /// Checks the metric conditions (non-negative, `sub ≤ 2·indel`).
    pub fn validate(&self) -> Result<(), String> {
        let vals = [
            self.node_sub,
            self.node_indel,
            self.edge_sub,
            self.edge_indel,
        ];
        if vals.iter().any(|v| !v.is_finite() || *v < 0.0) {
            return Err("costs must be finite and non-negative".into());
        }
        if self.node_sub > 2.0 * self.node_indel + 1e-12 {
            return Err("node_sub must be ≤ 2 · node_indel for metricity".into());
        }
        if self.edge_sub > 2.0 * self.edge_indel + 1e-12 {
            return Err("edge_sub must be ≤ 2 · edge_indel for metricity".into());
        }
        Ok(())
    }

    /// Node substitution cost between two labels.
    #[inline]
    pub fn node_subst(&self, a: u32, b: u32) -> f64 {
        if a == b {
            0.0
        } else {
            self.node_sub
        }
    }

    /// Edge substitution cost between two labels.
    #[inline]
    pub fn edge_subst(&self, a: u32, b: u32) -> f64 {
        if a == b {
            0.0
        } else {
            self.edge_sub
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::uniform()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_valid() {
        assert!(CostModel::uniform().validate().is_ok());
    }

    #[test]
    fn subst_costs() {
        let c = CostModel::uniform();
        assert_eq!(c.node_subst(3, 3), 0.0);
        assert_eq!(c.node_subst(3, 4), 1.0);
        assert_eq!(c.edge_subst(1, 1), 0.0);
        assert_eq!(c.edge_subst(1, 2), 1.0);
    }

    #[test]
    fn rejects_negative() {
        let mut c = CostModel::uniform();
        c.node_sub = -1.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn rejects_non_metric_sub() {
        let mut c = CostModel::uniform();
        c.node_sub = 3.0; // > 2·node_indel
        assert!(c.validate().is_err());
        let mut c = CostModel::uniform();
        c.edge_sub = 2.5;
        assert!(c.validate().is_err());
    }

    #[test]
    fn rejects_nan() {
        let mut c = CostModel::uniform();
        c.edge_indel = f64::NAN;
        assert!(c.validate().is_err());
    }
}
