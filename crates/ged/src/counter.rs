//! Instrumentation counters for distance computations.
//!
//! The paper's speedups are, at bottom, reductions in the number of NP-hard
//! edit-distance computations; every experiment in `graphrep-bench` reports
//! these counters alongside wall time so results are hardware-independent.

use std::sync::atomic::{AtomicU64, Ordering};

/// Thread-safe counters accumulated by a [`crate::GedEngine`].
#[derive(Debug, Default)]
pub struct GedCounters {
    /// Number of exact A* searches started.
    pub exact_searches: AtomicU64,
    /// Total A* node expansions.
    pub expansions: AtomicU64,
    /// Number of bipartite upper-bound computations.
    pub bp_calls: AtomicU64,
    /// Number of times the expansion budget forced an approximate answer.
    pub budget_fallbacks: AtomicU64,
    /// Number of calls short-circuited by the label lower bound.
    pub lb_prunes: AtomicU64,
}

/// A point-in-time copy of [`GedCounters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CounterSnapshot {
    /// Exact A* searches started.
    pub exact_searches: u64,
    /// Total A* node expansions.
    pub expansions: u64,
    /// Bipartite upper-bound computations.
    pub bp_calls: u64,
    /// Budget-forced approximate answers.
    pub budget_fallbacks: u64,
    /// Lower-bound short circuits.
    pub lb_prunes: u64,
}

impl GedCounters {
    /// Takes a snapshot of all counters.
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            // Counters are independent tallies read at quiescent points.
            exact_searches: self.exact_searches.load(Ordering::Relaxed),
            expansions: self.expansions.load(Ordering::Relaxed),
            bp_calls: self.bp_calls.load(Ordering::Relaxed),
            budget_fallbacks: self.budget_fallbacks.load(Ordering::Relaxed),
            lb_prunes: self.lb_prunes.load(Ordering::Relaxed),
        }
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        // Counters are independent tallies; resets happen at quiescent points.
        self.exact_searches.store(0, Ordering::Relaxed);
        self.expansions.store(0, Ordering::Relaxed);
        self.bp_calls.store(0, Ordering::Relaxed);
        self.budget_fallbacks.store(0, Ordering::Relaxed);
        self.lb_prunes.store(0, Ordering::Relaxed);
    }

    pub(crate) fn add(&self, field: &AtomicU64, v: u64) {
        // Independent event tally; no cross-counter ordering is consumed.
        field.fetch_add(v, Ordering::Relaxed);
    }

    /// Overwrites all counters with `snap` — used when forking an engine for
    /// an extended oracle so accumulated totals (and the delta baselines
    /// derived from them) carry forward across the swap.
    pub fn restore(&self, snap: &CounterSnapshot) {
        let fields = [
            (&self.exact_searches, snap.exact_searches),
            (&self.expansions, snap.expansions),
            (&self.bp_calls, snap.bp_calls),
            (&self.budget_fallbacks, snap.budget_fallbacks),
            (&self.lb_prunes, snap.lb_prunes),
        ];
        for (field, v) in fields {
            // Counters are independent tallies; restores happen at quiescent
            // points.
            field.store(v, Ordering::Relaxed);
        }
    }
}

impl CounterSnapshot {
    /// Difference `self - earlier`, for measuring one experiment phase.
    pub fn since(&self, earlier: &CounterSnapshot) -> CounterSnapshot {
        CounterSnapshot {
            exact_searches: self.exact_searches - earlier.exact_searches,
            expansions: self.expansions - earlier.expansions,
            bp_calls: self.bp_calls - earlier.bp_calls,
            budget_fallbacks: self.budget_fallbacks - earlier.budget_fallbacks,
            lb_prunes: self.lb_prunes - earlier.lb_prunes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_reset() {
        let c = GedCounters::default();
        c.add(&c.exact_searches, 3);
        c.add(&c.expansions, 100);
        let s = c.snapshot();
        assert_eq!(s.exact_searches, 3);
        assert_eq!(s.expansions, 100);
        c.reset();
        assert_eq!(c.snapshot(), CounterSnapshot::default());
    }

    #[test]
    fn since_subtracts() {
        let a = CounterSnapshot {
            exact_searches: 5,
            expansions: 50,
            bp_calls: 2,
            budget_fallbacks: 0,
            lb_prunes: 1,
        };
        let b = CounterSnapshot {
            exact_searches: 8,
            expansions: 80,
            bp_calls: 4,
            budget_fallbacks: 1,
            lb_prunes: 3,
        };
        let d = b.since(&a);
        assert_eq!(d.exact_searches, 3);
        assert_eq!(d.expansions, 30);
        assert_eq!(d.bp_calls, 2);
        assert_eq!(d.budget_fallbacks, 1);
        assert_eq!(d.lb_prunes, 2);
    }
}
