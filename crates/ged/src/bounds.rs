//! Cheap admissible lower bounds on graph edit distance.
//!
//! These run in near-linear time and are used to (a) avoid exact searches
//! whose answer is certainly above θ and (b) seed the A* heuristic.

use crate::cost::CostModel;
use crate::profile::GraphProfile;
use graphrep_graph::Graph;
use std::cmp::Ordering;

/// Size of the intersection of two sorted multisets.
pub fn multiset_overlap(a: &[u32], b: &[u32]) -> usize {
    let (mut i, mut j, mut k) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            Ordering::Less => i += 1,
            Ordering::Greater => j += 1,
            Ordering::Equal => {
                k += 1;
                i += 1;
                j += 1;
            }
        }
    }
    k
}

/// Admissible lower bound on the cost of reconciling two label multisets,
/// where unequal paired labels cost `sub` (capped by `2·indel`) and the count
/// difference costs `indel` each.
pub fn multiset_bound(a: &[u32], b: &[u32], sub: f64, indel: f64) -> f64 {
    let overlap = multiset_overlap(a, b);
    let (r1, r2) = (a.len(), b.len());
    let pairs = r1.min(r2).saturating_sub(overlap);
    pairs as f64 * sub.min(2.0 * indel) + r1.abs_diff(r2) as f64 * indel
}

/// Label lower bound: node-label multiset bound + edge-label multiset bound.
///
/// Valid because any edit path must reconcile both multisets, and node and
/// edge operations are charged separately.
pub fn label_lower_bound(g1: &Graph, g2: &Graph, cost: &CostModel) -> f64 {
    let n1 = g1.sorted_node_labels();
    let n2 = g2.sorted_node_labels();
    let e1 = g1.sorted_edge_labels();
    let e2 = g2.sorted_edge_labels();
    multiset_bound(&n1, &n2, cost.node_sub, cost.node_indel)
        + multiset_bound(&e1, &e2, cost.edge_sub, cost.edge_indel)
}

/// Size lower bound: count differences only (weaker than the label bound,
/// provided for completeness and tests).
pub fn size_lower_bound(g1: &Graph, g2: &Graph, cost: &CostModel) -> f64 {
    g1.node_count().abs_diff(g2.node_count()) as f64 * cost.node_indel
        + g1.edge_count().abs_diff(g2.edge_count()) as f64 * cost.edge_indel
}

/// [`label_lower_bound`] over precomputed profiles: identical value, but an
/// O(n) merge over cached sorted arrays instead of four per-call sorts.
pub fn label_lower_bound_profiled(p1: &GraphProfile, p2: &GraphProfile, cost: &CostModel) -> f64 {
    multiset_bound(
        &p1.node_labels,
        &p2.node_labels,
        cost.node_sub,
        cost.node_indel,
    ) + multiset_bound(
        &p1.edge_labels,
        &p2.edge_labels,
        cost.edge_sub,
        cost.edge_indel,
    )
}

/// [`size_lower_bound`] over precomputed profiles (identical value).
pub fn size_lower_bound_profiled(p1: &GraphProfile, p2: &GraphProfile, cost: &CostModel) -> f64 {
    p1.node_count.abs_diff(p2.node_count) as f64 * cost.node_indel
        + p1.edge_count.abs_diff(p2.edge_count) as f64 * cost.edge_indel
}

/// Degree-sequence lower bound: half the L1 distance between the zero-padded
/// sorted degree sequences, charged at the edge-indel cost.
///
/// Admissible because node substitutions and edge substitutions leave every
/// degree unchanged, deleting or inserting one edge changes the sorted
/// sequence's minimal-matching L1 distance by at most 2 (one unit at each
/// endpoint), and a node indel only adds or removes a zero entry of the
/// padded sequence (its incident edges are charged as edge indels first).
/// Any edit path therefore performs at least `⌈W1 / 2⌉` edge indels, each
/// costing `edge_indel`. Orthogonal to the label bound (which can miss
/// structural disagreement entirely); the tiers combine bounds with `max`,
/// never by summing, because the two may charge the same edit.
pub fn degree_sequence_bound(p1: &GraphProfile, p2: &GraphProfile, cost: &CostModel) -> f64 {
    // Both sequences sorted ascending; the shorter is implicitly padded with
    // leading zeros, which aligns with matching the largest degrees first.
    let (a, b) = (&p1.degrees, &p2.degrees);
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let pad = long.len() - short.len();
    let mut w1: u64 = 0;
    for (i, &d) in long.iter().enumerate() {
        let other = if i < pad { 0 } else { short[i - pad] };
        w1 += u64::from(d.abs_diff(other));
    }
    (w1.div_ceil(2)) as f64 * cost.edge_indel
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ged_exact_full;
    use graphrep_graph::generate::random_connected;
    use graphrep_graph::GraphBuilder;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn build(nodes: &[u32], edges: &[(u16, u16, u32)]) -> Graph {
        let mut b = GraphBuilder::new();
        for &l in nodes {
            b.add_node(l);
        }
        for &(u, v, l) in edges {
            b.add_edge(u, v, l).unwrap();
        }
        b.build()
    }

    #[test]
    fn overlap_counts_multiplicity() {
        assert_eq!(multiset_overlap(&[1, 1, 2], &[1, 2, 2]), 2);
        assert_eq!(multiset_overlap(&[], &[1]), 0);
        assert_eq!(multiset_overlap(&[3, 3, 3], &[3, 3]), 2);
    }

    #[test]
    fn bound_zero_for_identical() {
        let g = build(&[0, 1], &[(0, 1, 2)]);
        assert_eq!(label_lower_bound(&g, &g, &CostModel::uniform()), 0.0);
        assert_eq!(size_lower_bound(&g, &g, &CostModel::uniform()), 0.0);
    }

    #[test]
    fn bounds_are_admissible_on_random_pairs() {
        let mut rng = SmallRng::seed_from_u64(17);
        let c = CostModel::uniform();
        for _ in 0..20 {
            let g1 = random_connected(&mut rng, 5, 2, &[0, 1, 2], &[9, 8]);
            let g2 = random_connected(&mut rng, 6, 2, &[0, 1, 2], &[9, 8]);
            let exact = ged_exact_full(&g1, &g2, &c, 1_000_000).unwrap().0;
            let lb = label_lower_bound(&g1, &g2, &c);
            let sb = size_lower_bound(&g1, &g2, &c);
            assert!(lb <= exact + 1e-9, "label lb {lb} > exact {exact}");
            assert!(sb <= exact + 1e-9, "size lb {sb} > exact {exact}");
            assert!(sb <= lb + 1e-9, "size bound should not beat label bound");
        }
    }

    #[test]
    fn label_bound_sees_relabels_size_bound_does_not() {
        let g1 = build(&[0, 0], &[(0, 1, 1)]);
        let g2 = build(&[5, 5], &[(0, 1, 1)]);
        let c = CostModel::uniform();
        assert_eq!(size_lower_bound(&g1, &g2, &c), 0.0);
        assert_eq!(label_lower_bound(&g1, &g2, &c), 2.0);
    }
}
