//! Database-level distance oracle with caching and call accounting.
//!
//! Everything above the raw engine — the greedy algorithms, the NB-Index,
//! every baseline — talks to a [`DistanceOracle`]: distances are addressed by
//! [`GraphId`], results are memoized, and the number of *engine* calls (the
//! paper's cost unit) is tracked.
//!
//! The caches are sharded 64 ways by pair key so concurrent distance
//! evaluation (the rayon-parallel index build and verification phases)
//! doesn't serialize on a global lock. Exact distances live in per-pair
//! [`OnceLock`] cells, and `within` misses rendezvous on per-`(pair, τ)`
//! verdict cells: when many threads race on the same uncached request,
//! exactly one runs the NP-hard engine computation and the rest block on the
//! cell, so engine-call accounting stays exact under any interleaving —
//! every non-self request increments exactly one of
//! `distance_computations` / `within_rejections` / `cache_hits`.

use crate::engine::GedEngine;
use graphrep_graph::{Graph, GraphId};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Statistics of oracle usage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OracleStats {
    /// Engine invocations that produced an exact cached distance.
    pub distance_computations: u64,
    /// `within` engine invocations that only produced a lower-bound fact.
    pub within_rejections: u64,
    /// Requests answered from cache.
    pub cache_hits: u64,
}

#[inline]
fn key(i: GraphId, j: GraphId) -> u64 {
    let (a, b) = if i <= j { (i, j) } else { (j, i) };
    ((a as u64) << 32) | b as u64
}

/// Number of cache shards. Pair keys hash-spread across shards so parallel
/// phases rarely contend on a lock; 64 comfortably exceeds any realistic
/// worker count while keeping the per-oracle footprint trivial.
const NUM_SHARDS: usize = 64;

#[inline]
fn shard_of(key: u64) -> usize {
    // Fibonacci multiplicative hash: consecutive pair keys (the common
    // access pattern in matrix-style phases) land on different shards.
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 58) as usize
}

/// A shared `within` verdict: `Some(d)` accepts with the exact distance,
/// `None` rejects (`d > τ`).
type WithinCell = Arc<OnceLock<Option<f64>>>;

/// One cache shard: exact distances plus known strict lower bounds.
#[derive(Default)]
struct Shard {
    /// Exact distances. Each pair owns a [`OnceLock`] cell so that racing
    /// threads agree on a single engine computation.
    exact: RwLock<HashMap<u64, Arc<OnceLock<f64>>>>,
    /// Known strict lower bounds: `d(i, j) > lower[key]`.
    lower: RwLock<HashMap<u64, f64>>,
    /// `within` verdicts keyed by `(pair, τ bits)`. Threads racing the same
    /// uncached threshold test rendezvous here so only one runs the engine;
    /// `Some(d)` means `d(i, j) = d ≤ τ`, `None` means `d(i, j) > τ`.
    within: RwLock<HashMap<(u64, u64), WithinCell>>,
}

impl Shard {
    /// The pair's exact-distance cell, creating an empty one if absent.
    fn cell(&self, key: u64) -> Arc<OnceLock<f64>> {
        if let Some(cell) = self.exact.read().get(&key) {
            return Arc::clone(cell);
        }
        Arc::clone(self.exact.write().entry(key).or_default())
    }

    /// The pair's exact distance, if already computed.
    fn exact_get(&self, key: u64) -> Option<f64> {
        self.exact
            .read()
            .get(&key)
            .and_then(|cell| cell.get().copied())
    }

    /// The `(pair, τ)` within-verdict cell, creating an empty one if absent.
    fn within_cell(&self, key: u64, tau: f64) -> WithinCell {
        let k = (key, tau.to_bits());
        if let Some(cell) = self.within.read().get(&k) {
            return Arc::clone(cell);
        }
        Arc::clone(self.within.write().entry(k).or_default())
    }
}

/// Caching, counting distance oracle over a fixed graph collection.
pub struct DistanceOracle {
    graphs: Arc<Vec<Graph>>,
    engine: GedEngine,
    shards: [Shard; NUM_SHARDS],
    computations: AtomicU64,
    rejections: AtomicU64,
    hits: AtomicU64,
    /// Total non-self requests, tallied only in audit builds to check the
    /// conservation identity `computations + rejections + hits == requests`.
    #[cfg(feature = "invariant-audit")]
    requests: AtomicU64,
}

/// The oracle is shared across rayon workers by reference.
const fn _assert_send_sync<T: Send + Sync>() {}
const _: () = _assert_send_sync::<DistanceOracle>();

impl std::fmt::Debug for DistanceOracle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let exact: usize = self.shards.iter().map(|s| s.exact.read().len()).sum();
        let lower: usize = self.shards.iter().map(|s| s.lower.read().len()).sum();
        f.debug_struct("DistanceOracle")
            .field("graphs", &self.graphs.len())
            .field("cached_exact", &exact)
            .field("cached_lower", &lower)
            .field("stats", &self.stats())
            .finish()
    }
}

impl DistanceOracle {
    /// Creates an oracle over `graphs` backed by `engine`.
    pub fn new(graphs: Arc<Vec<Graph>>, engine: GedEngine) -> Self {
        Self {
            graphs,
            engine,
            shards: std::array::from_fn(|_| Shard::default()),
            computations: AtomicU64::new(0),
            rejections: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            #[cfg(feature = "invariant-audit")]
            requests: AtomicU64::new(0),
        }
    }

    /// The underlying graphs.
    pub fn graphs(&self) -> &[Graph] {
        &self.graphs
    }

    /// Shared handle to the underlying graphs.
    pub fn graphs_arc(&self) -> Arc<Vec<Graph>> {
        Arc::clone(&self.graphs)
    }

    /// Number of graphs.
    pub fn len(&self) -> usize {
        self.graphs.len()
    }

    /// Whether the collection is empty.
    pub fn is_empty(&self) -> bool {
        self.graphs.is_empty()
    }

    /// The engine (for counter access).
    pub fn engine(&self) -> &GedEngine {
        &self.engine
    }

    /// Exact distance between graphs `i` and `j` (cached).
    ///
    /// Concurrent calls on the same uncached pair run the engine exactly
    /// once: the winner counts a computation, everyone else blocks on the
    /// pair's cell and counts a cache hit.
    pub fn distance(&self, i: GraphId, j: GraphId) -> f64 {
        if i == j {
            return 0.0;
        }
        let k = key(i, j);
        self.note_request();
        let cell = self.shards[shard_of(k)].cell(k);
        let mut computed = false;
        let d = *cell.get_or_init(|| {
            computed = true;
            // Independent event tally; no cross-counter ordering is consumed.
            self.computations.fetch_add(1, Ordering::Relaxed);
            self.engine
                .distance(&self.graphs[i as usize], &self.graphs[j as usize])
        });
        if !computed {
            // Independent event tally; no cross-counter ordering is consumed.
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        d
    }

    /// Returns `Some(d)` iff `d(i, j) = d ≤ tau`, consulting the caches
    /// before the engine.
    ///
    /// Concurrent calls on the same uncached `(pair, tau)` run the engine
    /// exactly once: the winner counts a computation or rejection, everyone
    /// else blocks on the verdict cell and counts a cache hit.
    pub fn within(&self, i: GraphId, j: GraphId, tau: f64) -> Option<f64> {
        if i == j {
            return Some(0.0);
        }
        let k = key(i, j);
        self.note_request();
        let shard = &self.shards[shard_of(k)];
        if let Some(d) = shard.exact_get(k) {
            // Independent event tally; no cross-counter ordering is consumed.
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (d <= tau + 1e-9).then_some(d);
        }
        if let Some(&lb) = shard.lower.read().get(&k) {
            if lb >= tau - 1e-9 {
                // d > lb ≥ tau: certainly outside. Independent event tally.
                self.hits.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        }
        let cell = shard.within_cell(k, tau);
        let mut ran_engine = false;
        let verdict = *cell.get_or_init(|| {
            // A concurrent `distance` may have resolved the pair between the
            // cache probe above and winning this cell; re-check before
            // paying for the engine.
            if let Some(d) = shard.exact_get(k) {
                return (d <= tau + 1e-9).then_some(d);
            }
            ran_engine = true;
            match self.engine.distance_within(
                &self.graphs[i as usize],
                &self.graphs[j as usize],
                tau,
            ) {
                Some(d) => {
                    // Independent event tally; the verdict cell publishes.
                    self.computations.fetch_add(1, Ordering::Relaxed);
                    // A concurrent `distance` may have filled the cell with
                    // the same exact value already; the failed set is
                    // harmless.
                    let _ = shard.cell(k).set(d);
                    Some(d)
                }
                None => {
                    // Independent event tally; the verdict cell publishes.
                    self.rejections.fetch_add(1, Ordering::Relaxed);
                    let mut lw = shard.lower.write();
                    let e = lw.entry(k).or_insert(tau);
                    if *e < tau {
                        *e = tau;
                    }
                    None
                }
            }
        });
        if !ran_engine {
            // Independent event tally; no cross-counter ordering is consumed.
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        verdict
    }

    /// Usage statistics.
    pub fn stats(&self) -> OracleStats {
        OracleStats {
            // Counters are independent tallies read at quiescent points.
            distance_computations: self.computations.load(Ordering::Relaxed),
            within_rejections: self.rejections.load(Ordering::Relaxed), // see above
            cache_hits: self.hits.load(Ordering::Relaxed),              // see above
        }
    }

    /// Total engine invocations (computations + rejections).
    pub fn engine_calls(&self) -> u64 {
        // Counters are independent tallies read at quiescent points.
        self.computations.load(Ordering::Relaxed) + self.rejections.load(Ordering::Relaxed)
    }

    /// Clears counters (the caches are kept).
    pub fn reset_stats(&self) {
        // Counters are independent tallies; resets happen at quiescent points.
        self.computations.store(0, Ordering::Relaxed);
        self.rejections.store(0, Ordering::Relaxed); // see above
        self.hits.store(0, Ordering::Relaxed); // see above
        self.reset_request_tally();
    }

    /// Tallies one non-self request for conservation checking (audit builds).
    #[cfg(feature = "invariant-audit")]
    #[inline]
    fn note_request(&self) {
        // Audit-only tally; read quiescently by the conservation audit.
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    #[cfg(not(feature = "invariant-audit"))]
    #[inline(always)]
    fn note_request(&self) {}

    #[cfg(feature = "invariant-audit")]
    fn reset_request_tally(&self) {
        // Audit-only tally; reset at the same quiescent points as the stats.
        self.requests.store(0, Ordering::Relaxed);
    }

    #[cfg(not(feature = "invariant-audit"))]
    fn reset_request_tally(&self) {}

    /// True when every distance this oracle has produced is exact: the
    /// engine runs in `Exact` mode and has recorded no budget fallbacks.
    ///
    /// Metric-dependent audits (triangle-inequality facts, Thm 4/5 bound
    /// admissibility) only hold for exact distances, so they consult this
    /// before asserting. Compiled only under the `invariant-audit` feature.
    #[cfg(feature = "invariant-audit")]
    pub fn audit_distances_exact(&self) -> bool {
        matches!(self.engine.config().mode, crate::engine::GedMode::Exact)
            && self.engine.counters().snapshot().budget_fallbacks == 0
    }

    /// Checks the accounting identity behind the concurrency layer's
    /// determinism guarantees: every non-self request increments exactly one
    /// of `distance_computations` / `within_rejections` / `cache_hits`.
    ///
    /// Only meaningful at a quiescent point (no concurrent oracle traffic).
    /// Compiled only under the `invariant-audit` feature.
    #[cfg(feature = "invariant-audit")]
    pub fn audit_counter_conservation(&self) {
        let s = self.stats();
        // Audit-only tally read at a quiescent point.
        let q = self.requests.load(Ordering::Relaxed);
        crate::audit_invariant!(
            s.distance_computations + s.within_rejections + s.cache_hits == q,
            "oracle counter conservation: {} computations + {} rejections + {} hits != {} requests",
            s.distance_computations,
            s.within_rejections,
            s.cache_hits,
            q
        );
    }

    /// Clears the memoized distances *and* counters.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.exact.write().clear();
            shard.lower.write().clear();
            shard.within.write().clear();
        }
        self.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::GedConfig;
    use graphrep_graph::generate::random_connected;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn oracle(n: usize, seed: u64) -> DistanceOracle {
        let mut rng = SmallRng::seed_from_u64(seed);
        let graphs: Vec<Graph> = (0..n)
            .map(|_| random_connected(&mut rng, 5, 2, &[0, 1, 2], &[3, 4]))
            .collect();
        DistanceOracle::new(Arc::new(graphs), GedEngine::new(GedConfig::default()))
    }

    #[test]
    fn self_distance_is_zero_and_free() {
        let o = oracle(3, 1);
        assert_eq!(o.distance(1, 1), 0.0);
        assert_eq!(o.stats().distance_computations, 0);
    }

    #[test]
    fn distance_is_cached() {
        let o = oracle(3, 2);
        let d1 = o.distance(0, 1);
        let d2 = o.distance(1, 0);
        assert_eq!(d1, d2);
        let s = o.stats();
        assert_eq!(s.distance_computations, 1);
        assert_eq!(s.cache_hits, 1);
    }

    #[test]
    fn within_uses_exact_cache() {
        let o = oracle(3, 3);
        let d = o.distance(0, 2);
        assert_eq!(o.within(0, 2, d), Some(d));
        assert_eq!(o.within(0, 2, d - 0.5), None);
        assert_eq!(o.stats().distance_computations, 1);
    }

    #[test]
    fn within_rejection_cached_as_lower_bound() {
        let o = oracle(4, 4);
        let d = o.distance(1, 2);
        o.clear();
        if d > 1.0 {
            assert_eq!(o.within(1, 2, 1.0), None);
            let before = o.engine_calls();
            // A second query at the same or smaller tau is answered from the
            // lower-bound cache.
            assert_eq!(o.within(1, 2, 0.5), None);
            assert_eq!(o.engine_calls(), before);
        }
    }

    #[test]
    fn stats_reset() {
        let o = oracle(3, 5);
        let _ = o.distance(0, 1);
        o.reset_stats();
        assert_eq!(o.stats(), OracleStats::default());
        // Cache retained: next call is a hit.
        let _ = o.distance(0, 1);
        assert_eq!(o.stats().cache_hits, 1);
    }

    #[test]
    fn len_and_graph_access() {
        let o = oracle(5, 6);
        assert_eq!(o.len(), 5);
        assert!(!o.is_empty());
        assert_eq!(o.graphs().len(), 5);
    }
}
