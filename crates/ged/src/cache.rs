//! Database-level distance oracle with caching and call accounting.
//!
//! Everything above the raw engine — the greedy algorithms, the NB-Index,
//! every baseline — talks to a [`DistanceOracle`]: distances are addressed by
//! [`GraphId`], results are memoized, and the number of *engine* calls (the
//! paper's cost unit) is tracked.
//!
//! The caches are sharded 64 ways by pair key so concurrent distance
//! evaluation (the rayon-parallel index build and verification phases)
//! doesn't serialize on a global lock. Exact distances live in per-pair
//! [`OnceLock`] cells, and `within` misses rendezvous on per-`(pair, τ)`
//! verdict cells: when many threads race on the same uncached request,
//! exactly one runs the NP-hard engine computation and the rest block on the
//! cell, so engine-call accounting stays exact under any interleaving —
//! every non-self request increments exactly one of
//! `distance_computations` / `within_rejections` / `cache_hits` /
//! `ub_accepts`.
//!
//! [`DistanceOracle::within_verdict`] additionally runs a ladder of cheap
//! filter tiers (size → profiled label → degree sequence → metric hints)
//! before falling back to the engine; every tier is verdict-identical to the
//! engine, so answers are byte-for-byte independent of tiering and thread
//! count.

use crate::bounds::{degree_sequence_bound, label_lower_bound_profiled, size_lower_bound_profiled};
use crate::engine::{GedEngine, GedMode};
use crate::profile::{profiles_for, GraphProfile};
use graphrep_graph::{Graph, GraphId};
use graphrep_lockaudit::TrackedRwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Statistics of oracle usage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OracleStats {
    /// Engine invocations that produced an exact cached distance.
    pub distance_computations: u64,
    /// Rejected verdicts: `within`/`within_verdict` decisions of "outside τ",
    /// whether decided by the engine or by a cheap filter tier.
    pub within_rejections: u64,
    /// Requests answered from cache.
    pub cache_hits: u64,
    /// Accepted `within_verdict` decisions certified by a metric upper bound
    /// with no engine call and no exact distance produced.
    pub ub_accepts: u64,
}

/// Per-tier attribution of [`DistanceOracle::within_verdict`] decisions made
/// without invoking the distance engine. Diagnostics only: the conservation
/// identity is carried by [`OracleStats`], of which these are a breakdown
/// (`size + label + degree + vantage_lb ≤ within_rejections`,
/// `vantage_ub == ub_accepts`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierStats {
    /// Rejections by the size lower bound.
    pub size_rejects: u64,
    /// Rejections by the profiled label lower bound.
    pub label_rejects: u64,
    /// Rejections by the degree-sequence lower bound.
    pub degree_rejects: u64,
    /// Rejections by the metric-hint (Lipschitz) lower bound.
    pub vantage_lb_rejects: u64,
    /// Acceptances by the metric-hint (triangle) upper bound.
    pub vantage_ub_accepts: u64,
}

/// Cheap per-pair metric bounds supplied by an index structure — in practice
/// the VantageTable's Lipschitz embedding (paper Sec 6.2), whose pivot rows
/// give both `max_v |d(v,i) − d(v,j)| ≤ d(i,j)` and
/// `d(i,j) ≤ min_v (d(v,i) + d(v,j))`.
///
/// Contract: both methods must already account for any storage rounding —
/// [`MetricHints::lower_bound`] never exceeds and [`MetricHints::upper_bound`]
/// never undercuts the value the engine would certify, *provided the pivot
/// distances are exact*. The oracle additionally gates every hint use on the
/// engine being in exact mode with zero budget fallbacks, so a degraded
/// engine silently disables the hint tier rather than risking a verdict that
/// differs from the engine's.
pub trait MetricHints: Send + Sync + std::fmt::Debug {
    /// A sound lower bound on `d(i, j)`.
    fn lower_bound(&self, i: GraphId, j: GraphId) -> f64;
    /// A sound upper bound on `d(i, j)` (may be `f64::INFINITY`).
    fn upper_bound(&self, i: GraphId, j: GraphId) -> f64;
}

#[inline]
fn key(i: GraphId, j: GraphId) -> u64 {
    let (a, b) = if i <= j { (i, j) } else { (j, i) };
    ((a as u64) << 32) | b as u64
}

/// Number of cache shards. Pair keys hash-spread across shards so parallel
/// phases rarely contend on a lock; 64 comfortably exceeds any realistic
/// worker count while keeping the per-oracle footprint trivial.
const NUM_SHARDS: usize = 64;

#[inline]
fn shard_of(key: u64) -> usize {
    // Fibonacci multiplicative hash: consecutive pair keys (the common
    // access pattern in matrix-style phases) land on different shards.
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 58) as usize
}

/// A shared `within` verdict: `Some(d)` accepts with the exact distance,
/// `None` rejects (`d > τ`).
type WithinCell = Arc<OnceLock<Option<f64>>>;

/// A shared boolean θ-membership verdict for [`DistanceOracle::within_verdict`].
type VerdictCell = Arc<OnceLock<bool>>;

/// One cache shard: exact distances plus known strict lower bounds.
struct Shard {
    /// Exact distances. Each pair owns a [`OnceLock`] cell so that racing
    /// threads agree on a single engine computation.
    exact: TrackedRwLock<HashMap<u64, Arc<OnceLock<f64>>>>,
    /// Known strict lower bounds: `d(i, j) > lower[key]`.
    lower: TrackedRwLock<HashMap<u64, f64>>,
    /// Known upper bounds: `d(i, j) ≤ upper[key]`, from hint-certified
    /// accepts that never produced an exact distance.
    upper: TrackedRwLock<HashMap<u64, f64>>,
    /// `within` verdicts keyed by `(pair, τ bits)`. Threads racing the same
    /// uncached threshold test rendezvous here so only one runs the engine;
    /// `Some(d)` means `d(i, j) = d ≤ τ`, `None` means `d(i, j) > τ`.
    within: TrackedRwLock<HashMap<(u64, u64), WithinCell>>,
    /// Boolean verdicts of the tiered `within_verdict` path, keyed the same
    /// way; the winner evaluates the tier ladder exactly once per `(pair, τ)`.
    verdict: TrackedRwLock<HashMap<(u64, u64), VerdictCell>>,
}

impl Shard {
    /// An empty shard. Site names identify the *field* across all
    /// [`NUM_SHARDS`] instances — the static lock graph cannot distinguish
    /// instances, and the runtime witness mirrors that (same-site pairs are
    /// self-edges and skipped).
    fn new() -> Shard {
        Shard {
            exact: TrackedRwLock::new("ged.cache.Shard.exact", HashMap::new()),
            lower: TrackedRwLock::new("ged.cache.Shard.lower", HashMap::new()),
            upper: TrackedRwLock::new("ged.cache.Shard.upper", HashMap::new()),
            within: TrackedRwLock::new("ged.cache.Shard.within", HashMap::new()),
            verdict: TrackedRwLock::new("ged.cache.Shard.verdict", HashMap::new()),
        }
    }

    /// The pair's exact-distance cell, creating an empty one if absent.
    fn cell(&self, key: u64) -> Arc<OnceLock<f64>> {
        if let Some(cell) = self.exact.read().get(&key) {
            return Arc::clone(cell);
        }
        Arc::clone(self.exact.write().entry(key).or_default())
    }

    /// The pair's exact distance, if already computed.
    fn exact_get(&self, key: u64) -> Option<f64> {
        self.exact
            .read()
            .get(&key)
            .and_then(|cell| cell.get().copied())
    }

    /// The `(pair, τ)` within-verdict cell, creating an empty one if absent.
    fn within_cell(&self, key: u64, tau: f64) -> WithinCell {
        let k = (key, tau.to_bits());
        if let Some(cell) = self.within.read().get(&k) {
            return Arc::clone(cell);
        }
        Arc::clone(self.within.write().entry(k).or_default())
    }

    /// The `(pair, τ)` boolean verdict cell, creating an empty one if absent.
    fn verdict_cell(&self, key: u64, tau: f64) -> VerdictCell {
        let k = (key, tau.to_bits());
        if let Some(cell) = self.verdict.read().get(&k) {
            return Arc::clone(cell);
        }
        Arc::clone(self.verdict.write().entry(k).or_default())
    }

    /// Records the lower-bound fact `d > lb`, keeping the strongest.
    fn note_lower(&self, key: u64, lb: f64) {
        let mut lw = self.lower.write();
        let e = lw.entry(key).or_insert(lb);
        if *e < lb {
            *e = lb;
        }
    }

    /// Records the upper-bound fact `d ≤ ub`, keeping the strongest.
    fn note_upper(&self, key: u64, ub: f64) {
        let mut uw = self.upper.write();
        let e = uw.entry(key).or_insert(ub);
        if *e > ub {
            *e = ub;
        }
    }

    /// A copy of this shard sharing every memoized cell: pair keys encode
    /// graph ids, which are stable under extension, so the new oracle's
    /// shard answers exactly what this one would for the old id range.
    fn transplanted(&self) -> Shard {
        Shard {
            exact: TrackedRwLock::new("ged.cache.Shard.exact", self.exact.read().clone()),
            lower: TrackedRwLock::new("ged.cache.Shard.lower", self.lower.read().clone()),
            upper: TrackedRwLock::new("ged.cache.Shard.upper", self.upper.read().clone()),
            within: TrackedRwLock::new("ged.cache.Shard.within", self.within.read().clone()),
            verdict: TrackedRwLock::new("ged.cache.Shard.verdict", self.verdict.read().clone()),
        }
    }
}

/// Caching, counting distance oracle over a fixed graph collection.
pub struct DistanceOracle {
    graphs: Arc<Vec<Graph>>,
    /// Per-graph sorted invariants, index-aligned with `graphs`; computed
    /// once here so every bound tier is an O(n) merge.
    profiles: Vec<GraphProfile>,
    engine: GedEngine,
    shards: [Shard; NUM_SHARDS],
    /// Index-supplied metric bounds (Lipschitz embedding); installed after
    /// the vantage table is built, absent before.
    hints: TrackedRwLock<Option<Arc<dyn MetricHints>>>,
    /// Whether `within_verdict` may use the cheap filter tiers at all;
    /// disabled only for baseline comparison runs.
    tiers_enabled: AtomicBool,
    computations: AtomicU64,
    rejections: AtomicU64,
    hits: AtomicU64,
    ub_accepts: AtomicU64,
    tier_size: AtomicU64,
    tier_label: AtomicU64,
    tier_degree: AtomicU64,
    tier_vlb: AtomicU64,
    /// Total non-self requests, tallied only in audit builds to check the
    /// conservation identity
    /// `computations + rejections + hits + ub_accepts == requests`.
    #[cfg(feature = "invariant-audit")]
    requests: AtomicU64,
}

/// The oracle is shared across rayon workers by reference.
const fn _assert_send_sync<T: Send + Sync>() {}
const _: () = _assert_send_sync::<DistanceOracle>();

impl std::fmt::Debug for DistanceOracle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let exact: usize = self.shards.iter().map(|s| s.exact.read().len()).sum();
        let lower: usize = self.shards.iter().map(|s| s.lower.read().len()).sum();
        f.debug_struct("DistanceOracle")
            .field("graphs", &self.graphs.len())
            .field("cached_exact", &exact)
            .field("cached_lower", &lower)
            .field("stats", &self.stats())
            .finish()
    }
}

impl DistanceOracle {
    /// Creates an oracle over `graphs` backed by `engine`.
    pub fn new(graphs: Arc<Vec<Graph>>, engine: GedEngine) -> Self {
        let profiles = profiles_for(&graphs);
        Self {
            graphs,
            profiles,
            engine,
            shards: std::array::from_fn(|_| Shard::new()),
            hints: TrackedRwLock::new("ged.cache.DistanceOracle.hints", None),
            tiers_enabled: AtomicBool::new(true),
            computations: AtomicU64::new(0),
            rejections: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            ub_accepts: AtomicU64::new(0),
            tier_size: AtomicU64::new(0),
            tier_label: AtomicU64::new(0),
            tier_degree: AtomicU64::new(0),
            tier_vlb: AtomicU64::new(0),
            #[cfg(feature = "invariant-audit")]
            requests: AtomicU64::new(0),
        }
    }

    /// A new oracle over this oracle's graphs plus `graph` appended as the
    /// next id.
    ///
    /// Graph ids are stable under extension, so every memoized distance,
    /// bound, and verdict is transplanted into the new oracle and all
    /// counter totals carry forward — callers holding delta baselines (the
    /// serve registry) or relying on the conservation identity see one
    /// continuous history across the swap. Metric hints are *not* carried:
    /// the vantage table they wrap predates the new graph, so the caller
    /// must re-install hints after extending its embedding.
    pub fn extended(&self, graph: Graph) -> DistanceOracle {
        let mut graphs: Vec<Graph> = self.graphs.as_ref().clone();
        let mut profiles = self.profiles.clone();
        profiles.push(GraphProfile::new(&graph));
        graphs.push(graph);
        self.clone_with(Arc::new(graphs), profiles)
    }

    /// A new oracle over the *same* graphs with every memoized result and
    /// counter carried forward, but no metric hints installed.
    ///
    /// Used when an index rebuild swaps in a new embedding: installing the
    /// rebuilt hints on a fork leaves sessions pinned to the old oracle (and
    /// its old embedding) entirely undisturbed.
    pub fn forked(&self) -> DistanceOracle {
        self.clone_with(Arc::clone(&self.graphs), self.profiles.clone())
    }

    /// Shared tail of [`DistanceOracle::extended`]/[`DistanceOracle::forked`].
    fn clone_with(&self, graphs: Arc<Vec<Graph>>, profiles: Vec<GraphProfile>) -> DistanceOracle {
        Self {
            graphs,
            profiles,
            engine: self.engine.fork(),
            shards: std::array::from_fn(|i| self.shards[i].transplanted()),
            hints: TrackedRwLock::new("ged.cache.DistanceOracle.hints", None),
            // Config-style flag, not synchronization.
            tiers_enabled: AtomicBool::new(self.tiers_enabled.load(Ordering::Relaxed)),
            // Counters are independent tallies copied at a quiescent point.
            computations: AtomicU64::new(self.computations.load(Ordering::Relaxed)),
            rejections: AtomicU64::new(self.rejections.load(Ordering::Relaxed)),
            hits: AtomicU64::new(self.hits.load(Ordering::Relaxed)),
            ub_accepts: AtomicU64::new(self.ub_accepts.load(Ordering::Relaxed)),
            tier_size: AtomicU64::new(self.tier_size.load(Ordering::Relaxed)),
            tier_label: AtomicU64::new(self.tier_label.load(Ordering::Relaxed)),
            tier_degree: AtomicU64::new(self.tier_degree.load(Ordering::Relaxed)),
            tier_vlb: AtomicU64::new(self.tier_vlb.load(Ordering::Relaxed)),
            #[cfg(feature = "invariant-audit")]
            // Quiescent-point tally copy, same as the counters above.
            requests: AtomicU64::new(self.requests.load(Ordering::Relaxed)),
        }
    }

    /// The underlying graphs.
    pub fn graphs(&self) -> &[Graph] {
        &self.graphs
    }

    /// Shared handle to the underlying graphs.
    pub fn graphs_arc(&self) -> Arc<Vec<Graph>> {
        Arc::clone(&self.graphs)
    }

    /// Number of graphs.
    pub fn len(&self) -> usize {
        self.graphs.len()
    }

    /// Whether the collection is empty.
    pub fn is_empty(&self) -> bool {
        self.graphs.is_empty()
    }

    /// The engine (for counter access).
    pub fn engine(&self) -> &GedEngine {
        &self.engine
    }

    /// Exact distance between graphs `i` and `j` (cached).
    ///
    /// Concurrent calls on the same uncached pair run the engine exactly
    /// once: the winner counts a computation, everyone else blocks on the
    /// pair's cell and counts a cache hit.
    pub fn distance(&self, i: GraphId, j: GraphId) -> f64 {
        if i == j {
            return 0.0;
        }
        let k = key(i, j);
        self.note_request();
        let cell = self.shards[shard_of(k)].cell(k);
        let mut computed = false;
        let d = *cell.get_or_init(|| {
            computed = true;
            // Independent event tally; no cross-counter ordering is consumed.
            self.computations.fetch_add(1, Ordering::Relaxed);
            self.engine.distance_profiled(
                &self.graphs[i as usize],
                &self.graphs[j as usize],
                &self.profiles[i as usize],
                &self.profiles[j as usize],
            )
        });
        if !computed {
            // Independent event tally; no cross-counter ordering is consumed.
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        d
    }

    /// Returns `Some(d)` iff `d(i, j) = d ≤ tau`, consulting the caches
    /// before the engine.
    ///
    /// Concurrent calls on the same uncached `(pair, tau)` run the engine
    /// exactly once: the winner counts a computation or rejection, everyone
    /// else blocks on the verdict cell and counts a cache hit.
    pub fn within(&self, i: GraphId, j: GraphId, tau: f64) -> Option<f64> {
        if i == j {
            return Some(0.0);
        }
        let k = key(i, j);
        self.note_request();
        let shard = &self.shards[shard_of(k)];
        if let Some(d) = shard.exact_get(k) {
            // Independent event tally; no cross-counter ordering is consumed.
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (d <= tau + 1e-9).then_some(d);
        }
        if let Some(&lb) = shard.lower.read().get(&k) {
            if lb >= tau - 1e-9 {
                // d > lb ≥ tau: certainly outside. Independent event tally.
                self.hits.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        }
        let cell = shard.within_cell(k, tau);
        let mut ran_engine = false;
        let verdict = *cell.get_or_init(|| {
            // A concurrent `distance` may have resolved the pair between the
            // cache probe above and winning this cell; re-check before
            // paying for the engine.
            if let Some(d) = shard.exact_get(k) {
                return (d <= tau + 1e-9).then_some(d);
            }
            ran_engine = true;
            match self.engine.distance_within_profiled(
                &self.graphs[i as usize],
                &self.graphs[j as usize],
                &self.profiles[i as usize],
                &self.profiles[j as usize],
                tau,
            ) {
                Some(d) => {
                    // Independent event tally; the verdict cell publishes.
                    self.computations.fetch_add(1, Ordering::Relaxed);
                    // A concurrent `distance` may have filled the cell with
                    // the same exact value already; the failed set is
                    // harmless.
                    let _ = shard.cell(k).set(d);
                    Some(d)
                }
                None => {
                    // Independent event tally; the verdict cell publishes.
                    self.rejections.fetch_add(1, Ordering::Relaxed);
                    shard.note_lower(k, tau);
                    None
                }
            }
        });
        if !ran_engine {
            // Independent event tally; no cross-counter ordering is consumed.
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        verdict
    }

    /// Returns `true` iff `d(i, j) ≤ tau`, deciding through the tiered filter
    /// ladder: caches, then size / profiled-label / degree-sequence lower
    /// bounds, then the installed [`MetricHints`] (Lipschitz lower bound and
    /// triangle upper bound), and only then the engine.
    ///
    /// The verdict is identical to `self.within(i, j, tau).is_some()` in every
    /// case — each lower-bound tier is sound (`bound > τ` implies the true
    /// distance exceeds `τ`) and the upper-bound tier only accepts when the
    /// true distance is certainly within `τ` — but unlike [`Self::within`] an
    /// upper-bound acceptance produces no exact distance, so callers that
    /// need the value afterwards should consult [`Self::cached_distance`].
    ///
    /// Hint tiers are additionally gated on the engine being in exact mode
    /// with zero budget fallbacks: a degraded engine certifies verdicts about
    /// its bipartite bound rather than the true distance, and only the
    /// engine's own verdict is authoritative then.
    ///
    /// Accounting: concurrent calls on the same uncached `(pair, tau)`
    /// evaluate the ladder exactly once; the winner increments exactly one of
    /// `distance_computations` / `within_rejections` / `ub_accepts`, everyone
    /// else counts a cache hit.
    pub fn within_verdict(&self, i: GraphId, j: GraphId, tau: f64) -> bool {
        if i == j {
            return true;
        }
        let k = key(i, j);
        self.note_request();
        let shard = &self.shards[shard_of(k)];
        if let Some(d) = shard.exact_get(k) {
            // Independent event tally; no cross-counter ordering is consumed.
            self.hits.fetch_add(1, Ordering::Relaxed);
            return d <= tau + 1e-9;
        }
        if let Some(&lb) = shard.lower.read().get(&k) {
            if lb >= tau - 1e-9 {
                // d > lb ≥ tau: certainly outside. Independent event tally.
                self.hits.fetch_add(1, Ordering::Relaxed);
                return false;
            }
        }
        if let Some(&ub) = shard.upper.read().get(&k) {
            if ub <= tau + 1e-9 {
                // d ≤ ub ≤ tau: certainly inside. Independent event tally.
                self.hits.fetch_add(1, Ordering::Relaxed);
                return true;
            }
        }
        let cell = shard.verdict_cell(k, tau);
        let mut counted = false;
        let verdict = *cell.get_or_init(|| {
            // A concurrent call may have resolved the pair between the cache
            // probes above and winning this cell; re-check before paying for
            // any tier.
            if let Some(d) = shard.exact_get(k) {
                return d <= tau + 1e-9;
            }
            let p1 = &self.profiles[i as usize];
            let p2 = &self.profiles[j as usize];
            // Tier gating reads are config-style flags, not synchronization.
            if self.tiers_enabled.load(Ordering::Relaxed) {
                let c = &self.engine.config().cost;
                if size_lower_bound_profiled(p1, p2, c) > tau + 1e-9 {
                    counted = true;
                    // Independent event tallies; the verdict cell publishes.
                    self.rejections.fetch_add(1, Ordering::Relaxed);
                    self.tier_size.fetch_add(1, Ordering::Relaxed);
                    shard.note_lower(k, tau);
                    return false;
                }
                if label_lower_bound_profiled(p1, p2, c) > tau + 1e-9 {
                    counted = true;
                    // Independent event tallies; the verdict cell publishes.
                    self.rejections.fetch_add(1, Ordering::Relaxed);
                    self.tier_label.fetch_add(1, Ordering::Relaxed);
                    shard.note_lower(k, tau);
                    return false;
                }
                if degree_sequence_bound(p1, p2, c) > tau + 1e-9 {
                    counted = true;
                    // Independent event tallies; the verdict cell publishes.
                    self.rejections.fetch_add(1, Ordering::Relaxed);
                    self.tier_degree.fetch_add(1, Ordering::Relaxed);
                    shard.note_lower(k, tau);
                    return false;
                }
                let hints = self.hints.read().as_ref().map(Arc::clone);
                if let Some(h) = hints {
                    if self.hints_sound() {
                        let hub = h.upper_bound(i, j);
                        if hub <= tau + 1e-9 {
                            counted = true;
                            // Independent event tally; the verdict cell
                            // publishes.
                            self.ub_accepts.fetch_add(1, Ordering::Relaxed);
                            shard.note_upper(k, hub);
                            return true;
                        }
                        let hlb = h.lower_bound(i, j);
                        if hlb > tau + 1e-9 {
                            counted = true;
                            // Independent event tallies; the verdict cell
                            // publishes.
                            self.rejections.fetch_add(1, Ordering::Relaxed);
                            self.tier_vlb.fetch_add(1, Ordering::Relaxed);
                            shard.note_lower(k, tau);
                            return false;
                        }
                    }
                }
            }
            counted = true;
            match self.engine.distance_within_profiled(
                &self.graphs[i as usize],
                &self.graphs[j as usize],
                p1,
                p2,
                tau,
            ) {
                Some(d) => {
                    // Independent event tally; the verdict cell publishes.
                    self.computations.fetch_add(1, Ordering::Relaxed);
                    // A concurrent `distance` may have filled the cell with
                    // the same exact value already; the failed set is
                    // harmless.
                    let _ = shard.cell(k).set(d);
                    true
                }
                None => {
                    // Independent event tally; the verdict cell publishes.
                    self.rejections.fetch_add(1, Ordering::Relaxed);
                    shard.note_lower(k, tau);
                    false
                }
            }
        });
        if !counted {
            // Independent event tally; no cross-counter ordering is consumed.
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        verdict
    }

    /// Whether hint bounds about the *true* distance may substitute for the
    /// engine's verdict: requires exact mode and zero budget fallbacks so
    /// far, because a budget-degraded engine certifies its bipartite bound
    /// rather than the true distance.
    fn hints_sound(&self) -> bool {
        matches!(self.engine.config().mode, GedMode::Exact)
            && self.engine.counters().snapshot().budget_fallbacks == 0
    }

    /// The exact distance between `i` and `j` if it is already known without
    /// any engine work: `Some(0.0)` for `i == j`, otherwise the pair's
    /// exact-cache entry. Never counts a request, a hit, or an engine call.
    pub fn cached_distance(&self, i: GraphId, j: GraphId) -> Option<f64> {
        if i == j {
            return Some(0.0);
        }
        let k = key(i, j);
        self.shards[shard_of(k)].exact_get(k)
    }

    /// Installs index-supplied metric bounds for [`Self::within_verdict`]'s
    /// hint tier (replacing any previous hints).
    pub fn set_hints(&self, hints: Arc<dyn MetricHints>) {
        *self.hints.write() = Some(hints);
    }

    /// Enables or disables the cheap filter tiers of
    /// [`Self::within_verdict`]; verdicts are identical either way, only the
    /// cost of reaching them changes. Intended for baseline comparison runs.
    pub fn set_tiers_enabled(&self, enabled: bool) {
        // Config-style flag, not synchronization.
        self.tiers_enabled.store(enabled, Ordering::Relaxed);
    }

    /// Per-tier attribution of engine-free [`Self::within_verdict`] decisions.
    pub fn tier_stats(&self) -> TierStats {
        TierStats {
            // Counters are independent tallies read at quiescent points.
            size_rejects: self.tier_size.load(Ordering::Relaxed),
            label_rejects: self.tier_label.load(Ordering::Relaxed),
            degree_rejects: self.tier_degree.load(Ordering::Relaxed),
            vantage_lb_rejects: self.tier_vlb.load(Ordering::Relaxed),
            vantage_ub_accepts: self.ub_accepts.load(Ordering::Relaxed),
        }
    }

    /// Usage statistics.
    pub fn stats(&self) -> OracleStats {
        OracleStats {
            // Counters are independent tallies read at quiescent points.
            distance_computations: self.computations.load(Ordering::Relaxed),
            within_rejections: self.rejections.load(Ordering::Relaxed),
            cache_hits: self.hits.load(Ordering::Relaxed),
            ub_accepts: self.ub_accepts.load(Ordering::Relaxed),
        }
    }

    /// Total engine invocations (computations + rejections).
    pub fn engine_calls(&self) -> u64 {
        // Counters are independent tallies read at quiescent points.
        self.computations.load(Ordering::Relaxed) + self.rejections.load(Ordering::Relaxed)
    }

    /// Clears counters (the caches are kept).
    pub fn reset_stats(&self) {
        // Counters are independent tallies; resets happen at quiescent points.
        self.computations.store(0, Ordering::Relaxed);
        self.rejections.store(0, Ordering::Relaxed);
        self.hits.store(0, Ordering::Relaxed);
        self.ub_accepts.store(0, Ordering::Relaxed);
        self.tier_size.store(0, Ordering::Relaxed);
        self.tier_label.store(0, Ordering::Relaxed);
        self.tier_degree.store(0, Ordering::Relaxed);
        self.tier_vlb.store(0, Ordering::Relaxed);
        self.reset_request_tally();
    }

    /// Tallies one non-self request for conservation checking (audit builds).
    #[cfg(feature = "invariant-audit")]
    #[inline]
    fn note_request(&self) {
        // Audit-only tally; read quiescently by the conservation audit.
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    #[cfg(not(feature = "invariant-audit"))]
    #[inline(always)]
    fn note_request(&self) {}

    #[cfg(feature = "invariant-audit")]
    fn reset_request_tally(&self) {
        // Audit-only tally; reset at the same quiescent points as the stats.
        self.requests.store(0, Ordering::Relaxed);
    }

    #[cfg(not(feature = "invariant-audit"))]
    fn reset_request_tally(&self) {}

    /// True when every distance this oracle has produced is exact: the
    /// engine runs in `Exact` mode and has recorded no budget fallbacks.
    ///
    /// Metric-dependent audits (triangle-inequality facts, Thm 4/5 bound
    /// admissibility) only hold for exact distances, so they consult this
    /// before asserting. Compiled only under the `invariant-audit` feature.
    #[cfg(feature = "invariant-audit")]
    pub fn audit_distances_exact(&self) -> bool {
        matches!(self.engine.config().mode, crate::engine::GedMode::Exact)
            && self.engine.counters().snapshot().budget_fallbacks == 0
    }

    /// Checks the accounting identity behind the concurrency layer's
    /// determinism guarantees: every non-self request increments exactly one
    /// of `distance_computations` / `within_rejections` / `cache_hits` /
    /// `ub_accepts`, and the tier breakdown never exceeds the rejection total.
    ///
    /// Sound under concurrent oracle traffic: a request ticks `requests`
    /// before its outcome counter, so a snapshot can transiently observe
    /// `outcomes < requests` while calls are in flight. A genuine leak (a
    /// request that finished without an outcome) is *permanent*, so the
    /// audit retries across short yields and only aborts when the imbalance
    /// never clears. Compiled only under the `invariant-audit` feature.
    #[cfg(feature = "invariant-audit")]
    pub fn audit_counter_conservation(&self) {
        const SAMPLES: usize = 64;
        let mut s = self.stats();
        for attempt in 1..=SAMPLES {
            // Audit-only tally, read after the outcomes: any in-flight
            // request missing from the outcome sums is still ticked here,
            // so a clean snapshot shows exact equality.
            let q = self.requests.load(Ordering::Relaxed);
            if s.distance_computations + s.within_rejections + s.cache_hits + s.ub_accepts == q {
                break;
            }
            crate::audit_invariant!(
                attempt < SAMPLES,
                "oracle counter conservation: {} computations + {} rejections + {} hits + {} ub accepts != {} requests (imbalance persisted across {} samples)",
                s.distance_computations,
                s.within_rejections,
                s.cache_hits,
                s.ub_accepts,
                q,
                SAMPLES
            );
            std::thread::yield_now();
            s = self.stats();
        }
        let t = self.tier_stats();
        crate::audit_invariant!(
            t.size_rejects + t.label_rejects + t.degree_rejects + t.vantage_lb_rejects
                <= s.within_rejections,
            "oracle tier attribution: {:?} exceeds {} rejections",
            t,
            s.within_rejections
        );
    }

    /// Clears the memoized distances *and* counters.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.exact.write().clear();
            shard.lower.write().clear();
            shard.upper.write().clear();
            shard.within.write().clear();
            shard.verdict.write().clear();
        }
        self.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::GedConfig;
    use graphrep_graph::generate::random_connected;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn oracle(n: usize, seed: u64) -> DistanceOracle {
        let mut rng = SmallRng::seed_from_u64(seed);
        let graphs: Vec<Graph> = (0..n)
            .map(|_| random_connected(&mut rng, 5, 2, &[0, 1, 2], &[3, 4]))
            .collect();
        DistanceOracle::new(Arc::new(graphs), GedEngine::new(GedConfig::default()))
    }

    #[test]
    fn self_distance_is_zero_and_free() {
        let o = oracle(3, 1);
        assert_eq!(o.distance(1, 1), 0.0);
        assert_eq!(o.stats().distance_computations, 0);
    }

    #[test]
    fn distance_is_cached() {
        let o = oracle(3, 2);
        let d1 = o.distance(0, 1);
        let d2 = o.distance(1, 0);
        assert_eq!(d1, d2);
        let s = o.stats();
        assert_eq!(s.distance_computations, 1);
        assert_eq!(s.cache_hits, 1);
    }

    #[test]
    fn within_uses_exact_cache() {
        let o = oracle(3, 3);
        let d = o.distance(0, 2);
        assert_eq!(o.within(0, 2, d), Some(d));
        assert_eq!(o.within(0, 2, d - 0.5), None);
        assert_eq!(o.stats().distance_computations, 1);
    }

    #[test]
    fn within_rejection_cached_as_lower_bound() {
        let o = oracle(4, 4);
        let d = o.distance(1, 2);
        o.clear();
        if d > 1.0 {
            assert_eq!(o.within(1, 2, 1.0), None);
            let before = o.engine_calls();
            // A second query at the same or smaller tau is answered from the
            // lower-bound cache.
            assert_eq!(o.within(1, 2, 0.5), None);
            assert_eq!(o.engine_calls(), before);
        }
    }

    #[test]
    fn stats_reset() {
        let o = oracle(3, 5);
        let _ = o.distance(0, 1);
        o.reset_stats();
        assert_eq!(o.stats(), OracleStats::default());
        // Cache retained: next call is a hit.
        let _ = o.distance(0, 1);
        assert_eq!(o.stats().cache_hits, 1);
    }

    #[test]
    fn len_and_graph_access() {
        let o = oracle(5, 6);
        assert_eq!(o.len(), 5);
        assert!(!o.is_empty());
        assert_eq!(o.graphs().len(), 5);
    }

    #[test]
    fn within_verdict_agrees_with_within() {
        let tiered = oracle(6, 7);
        let plain = oracle(6, 7);
        for i in 0..6u32 {
            for j in 0..6u32 {
                for tau in [0.5, 2.0, 4.0, 8.0] {
                    assert_eq!(
                        tiered.within_verdict(i, j, tau),
                        plain.within(i, j, tau).is_some(),
                        "pair ({i}, {j}) at tau {tau}"
                    );
                }
            }
        }
    }

    #[test]
    fn within_verdict_tiers_off_agrees() {
        let on = oracle(6, 7);
        let off = oracle(6, 7);
        off.set_tiers_enabled(false);
        for i in 0..6u32 {
            for j in 0..6u32 {
                for tau in [0.5, 2.0, 4.0] {
                    assert_eq!(on.within_verdict(i, j, tau), off.within_verdict(i, j, tau));
                }
            }
        }
        assert_eq!(off.tier_stats(), TierStats::default());
    }

    #[test]
    fn cached_distance_reports_only_known_values() {
        let o = oracle(3, 8);
        assert_eq!(o.cached_distance(1, 1), Some(0.0));
        assert_eq!(o.cached_distance(0, 1), None);
        let before = o.stats();
        assert_eq!(o.cached_distance(0, 1), None);
        assert_eq!(o.stats(), before);
        let d = o.distance(0, 1);
        assert_eq!(o.cached_distance(0, 1), Some(d));
        assert_eq!(o.cached_distance(1, 0), Some(d));
    }

    #[derive(Debug)]
    struct PerfectHints(Vec<Vec<f64>>);

    impl MetricHints for PerfectHints {
        fn lower_bound(&self, i: GraphId, j: GraphId) -> f64 {
            self.0[i as usize][j as usize]
        }
        fn upper_bound(&self, i: GraphId, j: GraphId) -> f64 {
            self.0[i as usize][j as usize]
        }
    }

    #[test]
    fn hint_tier_decides_without_engine() {
        let o = oracle(5, 9);
        let n = o.len();
        let mut m = vec![vec![0.0_f64; n]; n];
        for (i, row) in m.iter_mut().enumerate() {
            for (j, d) in row.iter_mut().enumerate() {
                *d = o.distance(i as GraphId, j as GraphId);
            }
        }
        o.clear();
        o.set_hints(Arc::new(PerfectHints(m.clone())));
        for i in 0..n as GraphId {
            for j in 0..n as GraphId {
                for tau in [1.0, 3.0, 6.0] {
                    assert_eq!(
                        o.within_verdict(i, j, tau),
                        m[i as usize][j as usize] <= tau + 1e-9
                    );
                }
            }
        }
        // Perfect hints decide every first evaluation that reaches the hint
        // tier; the engine's exact search never runs after the clear.
        assert_eq!(o.stats().distance_computations, 0);
        assert!(o.tier_stats().vantage_ub_accepts > 0);
        assert_eq!(o.stats().ub_accepts, o.tier_stats().vantage_ub_accepts);
    }

    #[test]
    fn ub_accept_is_reused_from_upper_cache() {
        let o = oracle(4, 10);
        let d = o.distance(0, 1);
        o.clear();
        let m = vec![vec![0.0, d, 9.0, 9.0]; 4];
        o.set_hints(Arc::new(PerfectHints(m)));
        assert!(o.within_verdict(0, 1, d + 1.0));
        let accepts = o.stats().ub_accepts;
        assert_eq!(accepts, 1);
        // Looser tau on the same pair: answered by the upper-bound cache.
        assert!(o.within_verdict(0, 1, d + 2.0));
        assert_eq!(o.stats().ub_accepts, accepts);
        assert_eq!(o.stats().cache_hits, 1);
    }
}
