//! Minimum-cost assignment (Hungarian / Kuhn–Munkres algorithm).
//!
//! Used by the bipartite graph-edit-distance approximation (Riesen & Bunke
//! style): matching the node sets of two graphs under a local cost matrix is
//! an `O(n³)` assignment problem. Implemented with the shortest augmenting
//! path formulation and dual potentials.

/// A dense square cost matrix in row-major order.
#[derive(Debug, Clone, Default)]
pub struct CostMatrix {
    n: usize,
    data: Vec<f64>,
}

impl CostMatrix {
    /// Creates an `n × n` matrix filled with `fill`.
    pub fn filled(n: usize, fill: f64) -> Self {
        Self {
            n,
            data: vec![fill; n * n],
        }
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Reads entry `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    /// Writes entry `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.n + j] = v;
    }

    /// Re-dimensions the matrix to `n × n` filled with `fill`, reusing the
    /// existing allocation whenever capacity allows.
    pub fn reset(&mut self, n: usize, fill: f64) {
        self.n = n;
        self.data.clear();
        self.data.resize(n * n, fill);
    }
}

/// Solution of an assignment problem.
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    /// `row_to_col[i]` is the column assigned to row `i`.
    pub row_to_col: Vec<usize>,
    /// Total cost of the assignment.
    pub cost: f64,
}

/// Reusable working memory for [`solve_into`]: dual potentials, matching
/// arrays, and the output permutation. Lives in the per-thread
/// [`crate::scratch::SearchScratch`] so repeated solves allocate nothing
/// after warm-up.
#[derive(Debug, Default)]
pub struct AssignScratch {
    u: Vec<f64>,
    v: Vec<f64>,
    p: Vec<usize>,
    way: Vec<usize>,
    minv: Vec<f64>,
    used: Vec<bool>,
    /// `row_to_col[i]` is the column assigned to row `i` after a solve.
    pub row_to_col: Vec<usize>,
}

/// Solves the minimum-cost assignment problem on a square matrix.
///
/// Runs in `O(n³)` time. Costs may be any finite `f64` (including negative);
/// `f64::INFINITY` marks forbidden pairs, which must leave at least one
/// feasible perfect matching.
pub fn solve(m: &CostMatrix) -> Assignment {
    let mut s = AssignScratch::default();
    let cost = solve_into(m, &mut s);
    Assignment {
        row_to_col: s.row_to_col,
        cost,
    }
}

/// [`solve`] into caller-provided scratch: the assignment lands in
/// `s.row_to_col` and the total cost is returned. Allocation-free once the
/// scratch buffers have grown to the largest `n` seen.
// graphrep: hot-path
pub fn solve_into(m: &CostMatrix, s: &mut AssignScratch) -> f64 {
    let n = m.n();
    s.row_to_col.clear();
    if n == 0 {
        return 0.0;
    }
    // 1-based shortest-augmenting-path Hungarian (e-maxx formulation).
    let inf = f64::INFINITY;
    s.u.clear();
    s.u.resize(n + 1, 0.0);
    s.v.clear();
    s.v.resize(n + 1, 0.0);
    s.p.clear();
    s.p.resize(n + 1, 0); // p[j] = row matched to column j (0 = none)
    s.way.clear();
    s.way.resize(n + 1, 0);
    for i in 1..=n {
        s.p[0] = i;
        let mut j0 = 0usize;
        s.minv.clear();
        s.minv.resize(n + 1, inf);
        s.used.clear();
        s.used.resize(n + 1, false);
        loop {
            s.used[j0] = true;
            let i0 = s.p[j0];
            let mut delta = inf;
            let mut j1 = 0usize;
            for j in 1..=n {
                if s.used[j] {
                    continue;
                }
                let cur = m.get(i0 - 1, j - 1) - s.u[i0] - s.v[j];
                if cur < s.minv[j] {
                    s.minv[j] = cur;
                    s.way[j] = j0;
                }
                if s.minv[j] < delta {
                    delta = s.minv[j];
                    j1 = j;
                }
            }
            debug_assert!(delta.is_finite(), "no feasible assignment");
            for j in 0..=n {
                if s.used[j] {
                    s.u[s.p[j]] += delta;
                    s.v[j] -= delta;
                } else {
                    s.minv[j] -= delta;
                }
            }
            j0 = j1;
            if s.p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = s.way[j0];
            s.p[j0] = s.p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }
    s.row_to_col.resize(n, 0);
    for j in 1..=n {
        if s.p[j] != 0 {
            s.row_to_col[s.p[j] - 1] = j - 1;
        }
    }
    (0..n).map(|i| m.get(i, s.row_to_col[i])).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from_rows(rows: &[&[f64]]) -> CostMatrix {
        let n = rows.len();
        let mut m = CostMatrix::filled(n, 0.0);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), n);
            for (j, &c) in r.iter().enumerate() {
                m.set(i, j, c);
            }
        }
        m
    }

    /// Brute-force optimum by permutation enumeration.
    fn brute(m: &CostMatrix) -> f64 {
        fn rec(m: &CostMatrix, i: usize, used: &mut Vec<bool>, acc: f64, best: &mut f64) {
            if i == m.n() {
                *best = best.min(acc);
                return;
            }
            for j in 0..m.n() {
                if !used[j] && m.get(i, j).is_finite() {
                    used[j] = true;
                    rec(m, i + 1, used, acc + m.get(i, j), best);
                    used[j] = false;
                }
            }
        }
        let mut best = f64::INFINITY;
        let mut used = vec![false; m.n()];
        rec(m, 0, &mut used, 0.0, &mut best);
        best
    }

    #[test]
    fn empty_matrix() {
        let a = solve(&CostMatrix::filled(0, 0.0));
        assert_eq!(a.cost, 0.0);
        assert!(a.row_to_col.is_empty());
    }

    #[test]
    fn single_cell() {
        let a = solve(&from_rows(&[&[7.5]]));
        assert_eq!(a.cost, 7.5);
        assert_eq!(a.row_to_col, vec![0]);
    }

    #[test]
    fn classic_3x3() {
        // Optimal = 1 + 2 + 3 picking the off-diagonal.
        let m = from_rows(&[&[4.0, 1.0, 3.0], &[2.0, 0.0, 5.0], &[3.0, 2.0, 2.0]]);
        let a = solve(&m);
        assert_eq!(a.cost, 5.0);
        // Verify it is a permutation.
        let mut seen = [false; 3];
        for &c in &a.row_to_col {
            assert!(!seen[c]);
            seen[c] = true;
        }
    }

    #[test]
    fn handles_infinity_forbidden_pairs() {
        let inf = f64::INFINITY;
        let m = from_rows(&[&[inf, 1.0], &[1.0, inf]]);
        let a = solve(&m);
        assert_eq!(a.cost, 2.0);
        assert_eq!(a.row_to_col, vec![1, 0]);
    }

    #[test]
    fn negative_costs_supported() {
        let m = from_rows(&[&[-5.0, 0.0], &[0.0, -5.0]]);
        assert_eq!(solve(&m).cost, -10.0);
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(99);
        for n in 1..=7usize {
            for _ in 0..30 {
                let mut m = CostMatrix::filled(n, 0.0);
                for i in 0..n {
                    for j in 0..n {
                        m.set(i, j, (rng.gen_range(0..100) as f64) / 10.0);
                    }
                }
                let a = solve(&m);
                let b = brute(&m);
                assert!((a.cost - b).abs() < 1e-9, "n={n} got {} want {b}", a.cost);
            }
        }
    }
}
