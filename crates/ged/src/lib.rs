#![warn(missing_docs)]
#![deny(unsafe_code)]
#![deny(missing_debug_implementations)]

//! Graph edit distance for `graphrep`.
//!
//! The paper's distance function `d(g, g')` is the classical graph edit
//! distance (GED), which is NP-hard to compute. This crate provides the full
//! stack the rest of the workspace builds on:
//!
//! * [`cost::CostModel`] — symmetric edit-operation costs (metric-validated),
//! * [`exact`] — A\* exact GED with an admissible label-multiset heuristic,
//!   cutoff support (for θ-membership tests) and an expansion budget,
//! * [`bipartite`] — Riesen–Bunke style `O(n³)` upper bound via the
//!   [`assignment`] (Hungarian) solver,
//! * [`bounds`] — near-linear admissible lower bounds,
//! * [`GedEngine`] — the policy layer combining all of the above,
//! * [`DistanceOracle`] — database-level memoization plus the call counters
//!   every experiment reports.

pub mod assignment;
pub mod bipartite;
pub mod bounds;
pub mod cache;
pub mod cost;
pub mod counter;
pub mod depthfirst;
pub mod engine;
pub mod exact;
pub mod profile;
pub(crate) mod scratch;

pub use cache::{DistanceOracle, MetricHints, OracleStats, TierStats};
pub use profile::GraphProfile;

/// Asserts a paper-derived runtime invariant when the *consuming* crate is
/// compiled with its `invariant-audit` cargo feature; expands to nothing
/// otherwise.
///
/// Because `cfg` is resolved after macro expansion, the feature gate is
/// evaluated against the crate where the macro is used — each crate that
/// audits (this one, `graphrep-core`, the root package) declares its own
/// `invariant-audit` feature and forwards it down the dependency chain. When
/// the feature is off the condition tokens are stripped before name
/// resolution, so audits may reference audit-only fields and be arbitrarily
/// expensive.
///
/// ```
/// use graphrep_ged::audit_invariant;
/// let (lb, d) = (2.0_f64, 3.0_f64);
/// audit_invariant!(lb <= d + 1e-9, "Thm 4: lower bound {lb} exceeds exact {d}");
/// ```
#[macro_export]
macro_rules! audit_invariant {
    ($cond:expr, $($fmt:tt)+) => {
        match () {
            #[cfg(feature = "invariant-audit")]
            () => {
                if !($cond) {
                    // graphrep: allow(G001, audit violations must abort the process)
                    panic!(
                        "invariant-audit violation: {}",
                        format_args!($($fmt)+)
                    );
                }
            }
            #[cfg(not(feature = "invariant-audit"))]
            () => {}
        }
    };
}
pub use cost::CostModel;
pub use counter::{CounterSnapshot, GedCounters};
pub use depthfirst::{ged_depth_first, DfResult};
pub use engine::{GedConfig, GedEngine, GedMode};
pub use exact::{ged_exact, ged_exact_full, ExactResult, Outcome};
