#![warn(missing_docs)]

//! Graph edit distance for `graphrep`.
//!
//! The paper's distance function `d(g, g')` is the classical graph edit
//! distance (GED), which is NP-hard to compute. This crate provides the full
//! stack the rest of the workspace builds on:
//!
//! * [`cost::CostModel`] — symmetric edit-operation costs (metric-validated),
//! * [`exact`] — A\* exact GED with an admissible label-multiset heuristic,
//!   cutoff support (for θ-membership tests) and an expansion budget,
//! * [`bipartite`] — Riesen–Bunke style `O(n³)` upper bound via the
//!   [`assignment`] (Hungarian) solver,
//! * [`bounds`] — near-linear admissible lower bounds,
//! * [`GedEngine`] — the policy layer combining all of the above,
//! * [`DistanceOracle`] — database-level memoization plus the call counters
//!   every experiment reports.

pub mod assignment;
pub mod bipartite;
pub mod bounds;
pub mod cache;
pub mod cost;
pub mod counter;
pub mod depthfirst;
pub mod engine;
pub mod exact;

pub use cache::{DistanceOracle, OracleStats};
pub use cost::CostModel;
pub use counter::{CounterSnapshot, GedCounters};
pub use depthfirst::{ged_depth_first, DfResult};
pub use engine::{GedConfig, GedEngine, GedMode};
pub use exact::{ged_exact, ged_exact_full, ExactResult, Outcome};
