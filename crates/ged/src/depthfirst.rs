//! Depth-first branch-and-bound exact GED (DF-GED).
//!
//! An alternative to the A\* search of [`crate::exact`]: explores the same
//! mapping space depth-first, keeping only the current path in memory
//! (`O(n)` instead of the A\* frontier), pruning with the identical
//! admissible heuristic against the best complete edit path found so far.
//! Best-first usually expands fewer states; depth-first is preferable when
//! memory is the binding constraint. Cross-validated against A\* in tests —
//! both must return the same distances.

use crate::bipartite::bp_upper_bound_in;
use crate::cost::CostModel;
use crate::exact::{heuristic, G1View, HeurBufs};
use graphrep_graph::{Graph, NodeId};

/// Reusable DF-GED buffers: the current partial map and the shared
/// child-ordering stack (sliced per recursion level). Lives in the
/// per-thread [`crate::scratch::SearchScratch`].
#[derive(Debug, Default)]
pub(crate) struct DfBufs {
    map: Vec<u8>,
    children: Vec<(f64, u8)>,
}

/// Outcome of a DF-GED run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DfResult {
    /// The exact distance, or `None` if every path exceeded the cutoff.
    pub distance: Option<f64>,
    /// Number of recursive states visited.
    pub visited: u64,
}

struct Dfs<'a> {
    a: &'a Graph,
    b: &'a Graph,
    view: &'a G1View,
    cost: &'a CostModel,
    n1: usize,
    n2: usize,
    e2_total: usize,
    /// map[g1 node] = g2 node or EPS.
    map: &'a mut Vec<u8>,
    /// Shared child-ordering stack; each recursion level uses the slice it
    /// pushed and truncates back before returning.
    children: &'a mut Vec<(f64, u8)>,
    heur: &'a mut HeurBufs,
    best: f64,
    visited: u64,
}

const EPS_NODE: u8 = 0xFF;
const TOL: f64 = 1e-9;

impl Dfs<'_> {
    fn completion(&self, used: u32, g: f64) -> f64 {
        let unused = self.n2 - used.count_ones() as usize;
        let e2_internal = self
            .b
            .edges()
            .iter()
            .filter(|e| used & (1 << e.u) != 0 && used & (1 << e.v) != 0)
            .count();
        g + unused as f64 * self.cost.node_indel
            + (self.e2_total - e2_internal) as f64 * self.cost.edge_indel
    }

    // graphrep: hot-path
    fn step_cost(&self, depth: usize, k: NodeId, j: Option<NodeId>) -> f64 {
        match j {
            Some(j) => {
                let mut step = self
                    .cost
                    .node_subst(self.a.node_label(k), self.b.node_label(j));
                for d in 0..depth {
                    let p = self.view.order(d);
                    let e1 = self.a.edge_label(k, p);
                    let pm = self.map[p as usize];
                    let e2 = if pm == EPS_NODE {
                        None
                    } else {
                        self.b.edge_label(j, pm as NodeId)
                    };
                    step += match (e1, e2) {
                        (Some(l1), Some(l2)) => self.cost.edge_subst(l1, l2),
                        (Some(_), None) | (None, Some(_)) => self.cost.edge_indel,
                        (None, None) => 0.0,
                    };
                }
                step
            }
            None => {
                let mut step = self.cost.node_indel;
                for d in 0..depth {
                    if self.a.edge_label(k, self.view.order(d)).is_some() {
                        step += self.cost.edge_indel;
                    }
                }
                step
            }
        }
    }

    // graphrep: hot-path
    fn rec(&mut self, depth: usize, used: u32, g: f64) {
        self.visited += 1;
        if depth == self.n1 {
            let total = self.completion(used, g);
            if total < self.best {
                self.best = total;
            }
            return;
        }
        if g + heuristic(self.b, self.view, depth, used, self.cost, self.heur) >= self.best - TOL {
            return;
        }
        let k = self.view.order(depth);
        // Order children by step cost (cheapest first) to find good complete
        // paths early and tighten the bound. This level's slice of the shared
        // stack is `start..end`; recursion pushes beyond `end` and truncates
        // back, so the slice stays valid across the loop.
        let start = self.children.len();
        for j in 0..self.n2 as u8 {
            if used & (1 << j) == 0 {
                let c = self.step_cost(depth, k, Some(j as NodeId));
                self.children.push((c, j));
            }
        }
        let c_eps = self.step_cost(depth, k, None);
        self.children.push((c_eps, EPS_NODE));
        self.children[start..].sort_by(|a, b| a.0.total_cmp(&b.0));
        let end = self.children.len();
        for ci in start..end {
            let (step, j) = self.children[ci];
            if g + step >= self.best - TOL {
                continue;
            }
            self.map[k as usize] = j;
            let used2 = if j == EPS_NODE { used } else { used | (1 << j) };
            self.rec(depth + 1, used2, g + step);
            self.map[k as usize] = 0xFE;
        }
        self.children.truncate(start);
    }
}

/// Exact GED by depth-first branch and bound, pruning against `cutoff`
/// (pass `f64::INFINITY` for the unconstrained distance).
pub fn ged_depth_first(g1: &Graph, g2: &Graph, cost: &CostModel, cutoff: f64) -> DfResult {
    let (a, b) = if g1.node_count() <= g2.node_count() {
        (g1, g2)
    } else {
        (g2, g1)
    };
    assert!(b.node_count() <= 32, "DF-GED bitmask supports ≤ 32 nodes");
    let n1 = a.node_count();
    let n2 = b.node_count();
    let e2_total = b.edge_count();
    if n1 == 0 {
        let d = n2 as f64 * cost.node_indel + e2_total as f64 * cost.edge_indel;
        return DfResult {
            distance: (d <= cutoff + TOL).then_some(d),
            visited: 1,
        };
    }
    crate::scratch::with_scratch(|s| {
        let crate::scratch::SearchScratch {
            view, heur, bp, df, ..
        } = s;
        view.rebuild(a);
        // Seed with the bipartite upper bound: a tight initial best prunes
        // hard.
        let seed = bp_upper_bound_in(a, b, cost, bp);
        df.map.clear();
        df.map.resize(n1, 0xFE);
        df.children.clear();
        let mut dfs = Dfs {
            a,
            b,
            view,
            cost,
            n1,
            n2,
            e2_total,
            map: &mut df.map,
            children: &mut df.children,
            heur,
            // +TOL so a complete path *equal* to the seed is still recorded.
            best: seed.min(cutoff) + 2.0 * TOL,
            visited: 0,
        };
        dfs.rec(0, 0, 0.0);
        let found = dfs.best;
        let distance = (found <= cutoff + TOL && found.is_finite()).then_some(found);
        DfResult {
            distance,
            visited: dfs.visited,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ged_exact_full;
    use graphrep_graph::generate::{mutate, random_connected};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn agrees_with_astar_on_random_pairs() {
        let mut rng = SmallRng::seed_from_u64(13);
        let c = CostModel::uniform();
        for trial in 0..30 {
            let g1 = random_connected(&mut rng, 5 + trial % 3, 2, &[0, 1, 2], &[7, 8]);
            let g2 = if trial % 2 == 0 {
                mutate(&mut rng, &g1, 2, &[0, 1, 2], &[7, 8])
            } else {
                random_connected(&mut rng, 5 + trial % 4, 2, &[0, 1, 2], &[7, 8])
            };
            let astar = ged_exact_full(&g1, &g2, &c, 2_000_000).unwrap().0;
            let df = ged_depth_first(&g1, &g2, &c, f64::INFINITY);
            assert_eq!(df.distance, Some(astar), "trial {trial}");
        }
    }

    #[test]
    fn cutoff_rejects_far_pairs() {
        let mut rng = SmallRng::seed_from_u64(14);
        let c = CostModel::uniform();
        let g1 = random_connected(&mut rng, 5, 1, &[0], &[1]);
        let g2 = random_connected(&mut rng, 9, 4, &[5], &[6]);
        let d = ged_exact_full(&g1, &g2, &c, 2_000_000).unwrap().0;
        assert!(ged_depth_first(&g1, &g2, &c, d - 0.5).distance.is_none());
        assert_eq!(ged_depth_first(&g1, &g2, &c, d).distance, Some(d));
    }

    #[test]
    fn identical_graphs_zero() {
        let mut rng = SmallRng::seed_from_u64(15);
        let g = random_connected(&mut rng, 7, 3, &[0, 1], &[2]);
        assert_eq!(
            ged_depth_first(&g, &g, &CostModel::uniform(), f64::INFINITY).distance,
            Some(0.0)
        );
    }

    #[test]
    fn empty_graph_special_case() {
        let e = graphrep_graph::GraphBuilder::new().build();
        let mut rng = SmallRng::seed_from_u64(16);
        let g = random_connected(&mut rng, 3, 1, &[0], &[1]);
        let r = ged_depth_first(&e, &g, &CostModel::uniform(), f64::INFINITY);
        assert_eq!(r.distance, Some((3 + g.edge_count()) as f64));
    }
}
