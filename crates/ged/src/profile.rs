//! Per-graph profiles: precomputed sorted invariants for the cheap bound
//! tiers.
//!
//! [`crate::bounds::label_lower_bound`] re-sorts both graphs' label multisets
//! on every call, which dominates the cost of the filter tiers once the
//! NP-hard verifier is mostly avoided. A [`GraphProfile`] is computed once
//! per graph when the [`crate::DistanceOracle`] is created; the `*_profiled`
//! bound entry points then reduce to O(n) merges over the cached arrays.

use graphrep_graph::Graph;

/// Sorted structural invariants of one graph, computed once and reused by
/// every bound evaluation involving the graph.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GraphProfile {
    /// Node labels, sorted ascending (a multiset).
    pub node_labels: Vec<u32>,
    /// Edge labels, sorted ascending (a multiset).
    pub edge_labels: Vec<u32>,
    /// Node degrees, sorted ascending.
    pub degrees: Vec<u32>,
    /// Number of nodes.
    pub node_count: usize,
    /// Number of edges.
    pub edge_count: usize,
}

impl GraphProfile {
    /// Builds the profile of `g`.
    pub fn new(g: &Graph) -> Self {
        let node_labels = g.sorted_node_labels();
        let edge_labels = g.sorted_edge_labels();
        let mut degrees: Vec<u32> = (0..g.node_count())
            .map(|u| g.degree(u as graphrep_graph::NodeId) as u32)
            .collect();
        degrees.sort_unstable();
        Self {
            node_labels,
            edge_labels,
            degrees,
            node_count: g.node_count(),
            edge_count: g.edge_count(),
        }
    }
}

/// Profiles for a whole database, index-aligned with `graphs`.
pub fn profiles_for(graphs: &[Graph]) -> Vec<GraphProfile> {
    graphs.iter().map(GraphProfile::new).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphrep_graph::GraphBuilder;

    #[test]
    fn profile_matches_graph_invariants() {
        let mut b = GraphBuilder::new();
        b.add_node(5);
        b.add_node(3);
        b.add_node(3);
        b.add_edge(0, 1, 9).unwrap();
        b.add_edge(1, 2, 7).unwrap();
        let g = b.build();
        let p = GraphProfile::new(&g);
        assert_eq!(p.node_labels, vec![3, 3, 5]);
        assert_eq!(p.edge_labels, vec![7, 9]);
        assert_eq!(p.degrees, vec![1, 1, 2]);
        assert_eq!(p.node_count, 3);
        assert_eq!(p.edge_count, 2);
    }

    #[test]
    fn empty_graph_profile() {
        let p = GraphProfile::new(&GraphBuilder::new().build());
        assert!(p.node_labels.is_empty());
        assert!(p.degrees.is_empty());
        assert_eq!(p.node_count, 0);
        assert_eq!(p.edge_count, 0);
    }
}
