//! Exact graph edit distance via best-first (A*) search.
//!
//! The classical formulation [Zeng et al. 2009; He & Singh 2006]: states are
//! partial mappings of the first graph's nodes — in a fixed order — onto
//! nodes of the second graph or onto ε (deletion). Each expansion pays the
//! exactly attributable node and edge costs; an admissible label-multiset
//! heuristic prunes the search. With symmetric costs the result is a metric,
//! which the NB-Index theorems require.
//!
//! Computing GED is NP-hard, so the search takes both a `cutoff` (for
//! θ-membership tests, Sec 5–6 of the paper) and an expansion `budget`
//! (so index construction can fall back to the bipartite upper bound).

use crate::bounds::multiset_bound;
use crate::cost::CostModel;
use graphrep_graph::{Graph, NodeId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Sentinel meaning "mapped to ε" (node deleted).
const EPS: u8 = 0xFF;
/// Sentinel meaning "not yet processed".
const UNPROC: u8 = 0xFE;

/// Result of an exact GED search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Outcome {
    /// The exact distance (≤ cutoff).
    Distance(f64),
    /// The distance is certainly greater than the cutoff.
    ExceedsCutoff,
    /// The expansion budget ran out before a certificate was found.
    BudgetExhausted,
}

/// Search statistics returned along with the outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExactResult {
    /// What the search concluded.
    pub outcome: Outcome,
    /// Number of node expansions performed.
    pub expansions: u64,
}

#[derive(Debug, Clone, Copy)]
struct Node {
    parent: u32,
    g: f64,
    used: u32,
    depth: u8,
    j: u8,
}

#[derive(Debug)]
struct HeapEntry {
    f: f64,
    depth: u8,
    idx: u32,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.f == other.f && self.depth == other.depth
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert f (prefer small), prefer deep ties.
        other
            .f
            .total_cmp(&self.f)
            .then_with(|| self.depth.cmp(&other.depth))
    }
}

/// Precomputed, depth-indexed views of the first graph.
///
/// Stored as flat arrays with per-depth offsets so a reusable instance (in
/// the per-thread [`crate::scratch::SearchScratch`]) can be rebuilt for each
/// pair without allocating once its buffers have warmed up.
#[derive(Debug, Default)]
pub(crate) struct G1View {
    /// Processing order: `order[d]` is the g1 node handled at depth `d`.
    order: Vec<NodeId>,
    /// `rank[u]` is the depth at which node `u` is processed.
    rank: Vec<usize>,
    /// Sorted labels of nodes not yet processed, flattened over depths.
    suffix_node_labels: Vec<u32>,
    /// `suffix_node_labels` slice offsets, one per depth `0..=n`, plus end.
    suffix_off: Vec<usize>,
    /// Sorted labels of edges still pending (≥ one endpoint unprocessed).
    pending_edge_labels: Vec<u32>,
    /// `pending_edge_labels` slice offsets, one per depth `0..=n`, plus end.
    pending_off: Vec<usize>,
}

impl G1View {
    /// Recomputes the view for `g`, reusing all buffers.
    // graphrep: hot-path
    pub(crate) fn rebuild(&mut self, g: &Graph) {
        let n = g.node_count();
        // Degree-descending order: high-degree nodes first constrain more.
        self.order.clear();
        self.order.extend(0..n as NodeId);
        self.order.sort_by_key(|&u| std::cmp::Reverse(g.degree(u)));
        self.rank.clear();
        self.rank.resize(n, 0);
        for (d, &u) in self.order.iter().enumerate() {
            self.rank[u as usize] = d;
        }
        self.suffix_node_labels.clear();
        self.suffix_off.clear();
        self.pending_edge_labels.clear();
        self.pending_off.clear();
        for d in 0..=n {
            let nstart = self.suffix_node_labels.len();
            self.suffix_off.push(nstart);
            for i in d..n {
                let u = self.order[i];
                self.suffix_node_labels.push(g.node_label(u));
            }
            self.suffix_node_labels[nstart..].sort_unstable();
            let estart = self.pending_edge_labels.len();
            self.pending_off.push(estart);
            for e in g.edges() {
                if self.rank[e.u as usize] >= d || self.rank[e.v as usize] >= d {
                    self.pending_edge_labels.push(e.label);
                }
            }
            self.pending_edge_labels[estart..].sort_unstable();
        }
        self.suffix_off.push(self.suffix_node_labels.len());
        self.pending_off.push(self.pending_edge_labels.len());
    }

    /// The g1 node processed at depth `d`.
    #[inline]
    pub(crate) fn order(&self, d: usize) -> NodeId {
        self.order[d]
    }

    /// Sorted labels of g1 nodes not yet processed at depth `d`.
    #[inline]
    fn suffix(&self, d: usize) -> &[u32] {
        &self.suffix_node_labels[self.suffix_off[d]..self.suffix_off[d + 1]]
    }

    /// Sorted labels of g1 edges with an unprocessed endpoint at depth `d`.
    #[inline]
    fn pending(&self, d: usize) -> &[u32] {
        &self.pending_edge_labels[self.pending_off[d]..self.pending_off[d + 1]]
    }
}

/// Reusable buffers for the admissible heuristic's b-side multisets.
#[derive(Debug, Default)]
pub(crate) struct HeurBufs {
    rem2: Vec<u32>,
    pend2: Vec<u32>,
}

/// Reusable A* state: the node arena, the frontier heap, and the partial-map
/// reconstruction buffer.
#[derive(Debug, Default)]
pub(crate) struct AstarBufs {
    arena: Vec<Node>,
    heap: BinaryHeap<HeapEntry>,
    map: Vec<u8>,
}

/// Exact GED between `g1` and `g2` under `cost`, searching only edit paths of
/// cost ≤ `cutoff` and at most `budget` expansions.
///
/// Symmetric in its graph arguments. Graphs must have ≤ 250 nodes; the search
/// additionally requires the *smaller* side to have ≤ 32 nodes (bitmask
/// state) — our datasets are far below both.
pub fn ged_exact(
    g1: &Graph,
    g2: &Graph,
    cost: &CostModel,
    cutoff: f64,
    budget: u64,
) -> ExactResult {
    crate::scratch::with_scratch(|s| {
        let crate::scratch::SearchScratch {
            view, heur, astar, ..
        } = s;
        ged_exact_in(g1, g2, cost, cutoff, budget, view, heur, astar)
    })
}

/// [`ged_exact`] over caller-provided scratch buffers; allocation-free once
/// the buffers have warmed up to the largest instance seen on this thread.
#[allow(clippy::too_many_arguments)] // internal: the wrapper owns the API
                                     // graphrep: hot-path
pub(crate) fn ged_exact_in(
    g1: &Graph,
    g2: &Graph,
    cost: &CostModel,
    cutoff: f64,
    budget: u64,
    view: &mut G1View,
    hb: &mut HeurBufs,
    ab: &mut AstarBufs,
) -> ExactResult {
    // Map the smaller graph onto the larger: fewer levels, same distance
    // (costs are symmetric).
    let (a, b) = if g1.node_count() <= g2.node_count() {
        (g1, g2)
    } else {
        (g2, g1)
    };
    assert!(b.node_count() <= 250, "graph too large for exact GED");
    assert!(
        b.node_count() <= 32,
        "exact GED bitmask supports ≤ 32 nodes; use hybrid mode"
    );
    let n1 = a.node_count();
    let n2 = b.node_count();
    let e2_total = b.edge_count();
    let eps = 1e-9;
    if n1 == 0 {
        // Pure insertion: every node and edge of the larger graph.
        let d = n2 as f64 * cost.node_indel + e2_total as f64 * cost.edge_indel;
        let outcome = if d <= cutoff + eps {
            Outcome::Distance(d)
        } else {
            Outcome::ExceedsCutoff
        };
        return ExactResult {
            outcome,
            expansions: 0,
        };
    }
    view.rebuild(a);

    ab.arena.clear();
    ab.heap.clear();
    ab.arena.push(Node {
        parent: u32::MAX,
        g: 0.0,
        used: 0,
        depth: 0,
        j: UNPROC,
    });
    let h0 = heuristic(b, view, 0, 0, cost, hb);
    if h0 > cutoff + eps {
        return ExactResult {
            outcome: Outcome::ExceedsCutoff,
            expansions: 0,
        };
    }
    ab.heap.push(HeapEntry {
        f: h0,
        depth: 0,
        idx: 0,
    });

    let mut expansions = 0u64;
    ab.map.clear();
    ab.map.resize(n1.max(1), UNPROC);

    while let Some(entry) = ab.heap.pop() {
        let node = ab.arena[entry.idx as usize];
        if node.depth as usize == n1 {
            return ExactResult {
                outcome: Outcome::Distance(node.g),
                expansions,
            };
        }
        if expansions >= budget {
            return ExactResult {
                outcome: Outcome::BudgetExhausted,
                expansions,
            };
        }
        expansions += 1;

        // Reconstruct the partial map (g1 node -> g2 node / EPS).
        for m in ab.map.iter_mut() {
            *m = UNPROC;
        }
        {
            let mut cur = entry.idx as usize;
            while ab.arena[cur].parent != u32::MAX {
                let nd = ab.arena[cur];
                let g1_node = view.order(nd.depth as usize - 1);
                ab.map[g1_node as usize] = nd.j;
                cur = ab.arena[cur].parent as usize;
            }
        }

        let depth = node.depth as usize;
        let k = view.order(depth); // g1 node to map next
        let child_depth = (depth + 1) as u8;

        // Children: map k -> each unused j of b, plus k -> ε.
        for j in 0..n2 as u8 {
            if node.used & (1u32 << j) != 0 {
                continue;
            }
            let mut step = cost.node_subst(a.node_label(k), b.node_label(j as NodeId));
            // Edge costs against all previously processed g1 nodes.
            for d in 0..depth {
                let p = view.order(d);
                let e1 = a.edge_label(k, p);
                let pm = ab.map[p as usize];
                let e2 = if pm == EPS {
                    None
                } else {
                    b.edge_label(j as NodeId, pm as NodeId)
                };
                step += match (e1, e2) {
                    (Some(l1), Some(l2)) => cost.edge_subst(l1, l2),
                    (Some(_), None) | (None, Some(_)) => cost.edge_indel,
                    (None, None) => 0.0,
                };
            }
            push_child(
                b,
                view,
                cost,
                cutoff,
                eps,
                &mut ab.arena,
                &mut ab.heap,
                hb,
                entry.idx,
                node.g + step,
                node.used | (1u32 << j),
                child_depth,
                j,
                n1,
                e2_total,
            );
        }
        // k -> ε: delete the node and its edges to processed g1 nodes.
        {
            let mut step = cost.node_indel;
            for d in 0..depth {
                let p = view.order(d);
                if a.edge_label(k, p).is_some() {
                    step += cost.edge_indel;
                }
            }
            push_child(
                b,
                view,
                cost,
                cutoff,
                eps,
                &mut ab.arena,
                &mut ab.heap,
                hb,
                entry.idx,
                node.g + step,
                node.used,
                child_depth,
                EPS,
                n1,
                e2_total,
            );
        }
    }
    ExactResult {
        outcome: Outcome::ExceedsCutoff,
        expansions,
    }
}

#[allow(clippy::too_many_arguments)]
// graphrep: hot-path
fn push_child(
    b: &Graph,
    view: &G1View,
    cost: &CostModel,
    cutoff: f64,
    eps: f64,
    arena: &mut Vec<Node>,
    heap: &mut BinaryHeap<HeapEntry>,
    hb: &mut HeurBufs,
    parent: u32,
    mut g: f64,
    used: u32,
    depth: u8,
    j: u8,
    n1: usize,
    e2_total: usize,
) {
    let h = if depth as usize == n1 {
        // Completion: insert all unused b nodes and every b edge not fully
        // inside the used set (edges among used nodes were paid pairwise).
        let unused = b.node_count() - (used.count_ones() as usize);
        let e2_internal = b
            .edges()
            .iter()
            .filter(|e| used & (1 << e.u) != 0 && used & (1 << e.v) != 0)
            .count();
        g += unused as f64 * cost.node_indel + (e2_total - e2_internal) as f64 * cost.edge_indel;
        0.0
    } else {
        heuristic(b, view, depth as usize, used, cost, hb)
    };
    let f = g + h;
    if f > cutoff + eps {
        return;
    }
    let idx = arena.len() as u32;
    arena.push(Node {
        parent,
        g,
        used,
        depth,
        j,
    });
    heap.push(HeapEntry { f, depth, idx });
}

/// Admissible heuristic: label-multiset bound on remaining nodes plus a
/// pending-edge-multiset bound.
// graphrep: hot-path
pub(crate) fn heuristic(
    b: &Graph,
    view: &G1View,
    depth: usize,
    used: u32,
    cost: &CostModel,
    bufs: &mut HeurBufs,
) -> f64 {
    // Remaining node labels.
    let rem1 = view.suffix(depth);
    bufs.rem2.clear();
    for j in 0..b.node_count() {
        if used & (1 << j) == 0 {
            bufs.rem2.push(b.node_label(j as NodeId));
        }
    }
    bufs.rem2.sort_unstable();
    let h_nodes = multiset_bound(rem1, &bufs.rem2, cost.node_sub, cost.node_indel);

    // Pending edges: a-side is precomputed per depth; b-side depends on mask.
    let pend1 = view.pending(depth);
    bufs.pend2.clear();
    for e in b.edges() {
        if used & (1 << e.u) == 0 || used & (1 << e.v) == 0 {
            bufs.pend2.push(e.label);
        }
    }
    bufs.pend2.sort_unstable();
    let h_edges = multiset_bound(pend1, &bufs.pend2, cost.edge_sub, cost.edge_indel);
    h_nodes + h_edges
}

/// Convenience wrapper: unbounded exact distance (still budgeted).
///
/// Returns `None` if the budget is exhausted first.
pub fn ged_exact_full(g1: &Graph, g2: &Graph, cost: &CostModel, budget: u64) -> Option<(f64, u64)> {
    let r = ged_exact(g1, g2, cost, f64::INFINITY, budget);
    match r.outcome {
        Outcome::Distance(d) => Some((d, r.expansions)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphrep_graph::GraphBuilder;

    fn build(nodes: &[u32], edges: &[(u16, u16, u32)]) -> Graph {
        let mut b = GraphBuilder::new();
        for &l in nodes {
            b.add_node(l);
        }
        for &(u, v, l) in edges {
            b.add_edge(u, v, l).unwrap();
        }
        b.build()
    }

    fn d(g1: &Graph, g2: &Graph) -> f64 {
        ged_exact_full(g1, g2, &CostModel::uniform(), 1_000_000)
            .expect("budget")
            .0
    }

    #[test]
    fn identical_graphs_are_distance_zero() {
        let g = build(&[0, 1, 2], &[(0, 1, 5), (1, 2, 5)]);
        assert_eq!(d(&g, &g), 0.0);
    }

    #[test]
    fn empty_vs_graph_counts_everything() {
        let e = build(&[], &[]);
        let g = build(&[0, 1], &[(0, 1, 3)]);
        assert_eq!(d(&e, &g), 3.0); // 2 node inserts + 1 edge insert
        assert_eq!(d(&g, &e), 3.0);
    }

    #[test]
    fn single_relabel() {
        let g1 = build(&[0, 1], &[(0, 1, 3)]);
        let g2 = build(&[0, 2], &[(0, 1, 3)]);
        assert_eq!(d(&g1, &g2), 1.0);
    }

    #[test]
    fn edge_relabel() {
        let g1 = build(&[0, 1], &[(0, 1, 3)]);
        let g2 = build(&[0, 1], &[(0, 1, 4)]);
        assert_eq!(d(&g1, &g2), 1.0);
    }

    #[test]
    fn leaf_addition_costs_two() {
        let g1 = build(&[0, 1], &[(0, 1, 3)]);
        let g2 = build(&[0, 1, 2], &[(0, 1, 3), (1, 2, 3)]);
        assert_eq!(d(&g1, &g2), 2.0); // node insert + edge insert
    }

    #[test]
    fn isomorphic_relabeled_ordering() {
        // Same structure, nodes listed in different order.
        let g1 = build(&[7, 8, 9], &[(0, 1, 1), (1, 2, 2)]);
        let g2 = build(&[9, 8, 7], &[(2, 1, 1), (1, 0, 2)]);
        assert_eq!(d(&g1, &g2), 0.0);
    }

    #[test]
    fn triangle_vs_path() {
        let tri = build(&[0, 0, 0], &[(0, 1, 1), (1, 2, 1), (0, 2, 1)]);
        let path = build(&[0, 0, 0], &[(0, 1, 1), (1, 2, 1)]);
        assert_eq!(d(&tri, &path), 1.0); // delete one edge
    }

    #[test]
    fn cutoff_exceeded_detected() {
        let g1 = build(&[0; 4], &[(0, 1, 1), (1, 2, 1), (2, 3, 1)]);
        let g2 = build(&[5; 4], &[(0, 1, 2), (1, 2, 2), (2, 3, 2)]);
        let r = ged_exact(&g1, &g2, &CostModel::uniform(), 2.0, 1_000_000);
        assert_eq!(r.outcome, Outcome::ExceedsCutoff);
        // True distance is 7 (4 node relabels + 3 edge relabels).
        assert_eq!(d(&g1, &g2), 7.0);
    }

    #[test]
    fn cutoff_equal_to_distance_succeeds() {
        let g1 = build(&[0, 1], &[(0, 1, 3)]);
        let g2 = build(&[0, 2], &[(0, 1, 3)]);
        let r = ged_exact(&g1, &g2, &CostModel::uniform(), 1.0, 1_000_000);
        assert_eq!(r.outcome, Outcome::Distance(1.0));
    }

    #[test]
    fn budget_exhaustion_reported() {
        let g1 = build(
            &[0; 6],
            &[(0, 1, 1), (1, 2, 1), (2, 3, 1), (3, 4, 1), (4, 5, 1)],
        );
        let g2 = build(
            &[1; 6],
            &[(0, 1, 2), (1, 2, 2), (2, 3, 2), (3, 4, 2), (4, 5, 2)],
        );
        let r = ged_exact(&g1, &g2, &CostModel::uniform(), f64::INFINITY, 1);
        assert_eq!(r.outcome, Outcome::BudgetExhausted);
    }

    #[test]
    fn symmetry_on_random_pairs() {
        use graphrep_graph::generate::random_connected;
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(4);
        let c = CostModel::uniform();
        for _ in 0..10 {
            let g1 = random_connected(&mut rng, 5, 2, &[0, 1, 2], &[9, 8]);
            let g2 = random_connected(&mut rng, 6, 2, &[0, 1, 2], &[9, 8]);
            let d12 = ged_exact_full(&g1, &g2, &c, 500_000).unwrap().0;
            let d21 = ged_exact_full(&g2, &g1, &c, 500_000).unwrap().0;
            assert_eq!(d12, d21);
        }
    }

    #[test]
    fn triangle_inequality_on_random_triples() {
        use graphrep_graph::generate::random_connected;
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(21);
        let c = CostModel::uniform();
        for _ in 0..8 {
            let a = random_connected(&mut rng, 4, 1, &[0, 1], &[7]);
            let b = random_connected(&mut rng, 5, 2, &[0, 1], &[7]);
            let g = random_connected(&mut rng, 5, 1, &[0, 1], &[7]);
            let dab = ged_exact_full(&a, &b, &c, 500_000).unwrap().0;
            let dbg = ged_exact_full(&b, &g, &c, 500_000).unwrap().0;
            let dag = ged_exact_full(&a, &g, &c, 500_000).unwrap().0;
            assert!(dag <= dab + dbg + 1e-9, "{dag} > {dab} + {dbg}");
        }
    }
}
