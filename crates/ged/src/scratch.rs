//! Per-thread reusable search state for the GED hot path.
//!
//! Every public GED entry point (`ged_exact`, `bp_upper_bound`,
//! `bp_lower_bound`, `ged_depth_first`) borrows this thread's
//! [`SearchScratch`] exactly once, for the duration of one call, and runs an
//! internal `*_in` variant against its buffers. Buffers are `clear()`ed —
//! never shrunk — between calls, so after a few calls have warmed them up to
//! the largest instance seen, repeated `within(τ)` verification does zero
//! heap allocation.
//!
//! Borrow discipline: the public wrappers never nest (an `*_in` function
//! takes `&mut` buffer parts and cannot re-enter [`with_scratch`]), so the
//! `RefCell` borrow is provably exclusive and panic-free.

use crate::bipartite::BpBufs;
use crate::depthfirst::DfBufs;
use crate::exact::{AstarBufs, G1View, HeurBufs};
use std::cell::RefCell;

/// All reusable buffers of one worker thread, grouped so internal search
/// routines can borrow disjoint parts simultaneously.
#[derive(Debug, Default)]
pub(crate) struct SearchScratch {
    /// Depth-indexed g1 view for A* / DF-GED.
    pub(crate) view: G1View,
    /// Heuristic-side multiset buffers.
    pub(crate) heur: HeurBufs,
    /// A* arena, frontier heap, and map-reconstruction buffer.
    pub(crate) astar: AstarBufs,
    /// Bipartite matrix, star multisets, and Hungarian solver scratch.
    pub(crate) bp: BpBufs,
    /// DF-GED partial map and child-ordering stack.
    pub(crate) df: DfBufs,
}

thread_local! {
    static SCRATCH: RefCell<SearchScratch> = RefCell::new(SearchScratch::default());
}

/// Runs `f` with exclusive access to this thread's scratch buffers.
pub(crate) fn with_scratch<R>(f: impl FnOnce(&mut SearchScratch) -> R) -> R {
    SCRATCH.with(|s| f(&mut s.borrow_mut()))
}
