//! Timing probe (ignored by default): how expensive are full exact
//! distances at various graph sizes? Run with:
//! `cargo test -p graphrep-ged --test timing_probe -- --ignored --nocapture`

use graphrep_ged::{ged_exact, CostModel, Outcome};
use graphrep_graph::generate::random_connected;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::Instant;

#[test]
#[ignore]
fn probe_full_distance_cost_by_size() {
    let cost = CostModel::uniform();
    for n in [6usize, 7, 8, 9, 10] {
        let mut rng = SmallRng::seed_from_u64(n as u64);
        let mut total = 0.0;
        let mut worst = 0.0f64;
        let mut fallbacks = 0;
        let trials = 12;
        for t in 0..trials {
            let a = random_connected(&mut rng, n, 2, &[0, 1, 2, 3], &[7, 8]);
            let b = random_connected(&mut rng, n, 2, &[0, 1, 2, 3], &[7, 8]);
            let t0 = Instant::now();
            let r = ged_exact(&a, &b, &cost, f64::INFINITY, 400_000);
            let dt = t0.elapsed().as_secs_f64();
            total += dt;
            worst = worst.max(dt);
            if !matches!(r.outcome, Outcome::Distance(_)) {
                fallbacks += 1;
            }
            let _ = t;
        }
        println!(
            "n={n}: avg {:.4}s worst {:.4}s fallbacks {fallbacks}/{trials}",
            total / trials as f64,
            worst
        );
    }
}
