//! Property-based tests of the edit-distance stack: consistency between the
//! exact search, its cutoff variant, the bounds, and the engine policies.

use graphrep_ged::{bipartite, bounds, ged_exact, ged_exact_full, CostModel, Outcome};
use graphrep_graph::{generate, Graph};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn graph_from_seed(seed: u64, n: usize) -> Graph {
    let mut rng = SmallRng::seed_from_u64(seed);
    generate::random_connected(&mut rng, n.max(1), 2, &[0, 1, 2], &[7, 8])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn cutoff_never_changes_the_distance(
        s1 in 0u64..300, s2 in 0u64..300, n1 in 2usize..7, n2 in 2usize..7
    ) {
        let (a, b) = (graph_from_seed(s1, n1), graph_from_seed(s2, n2));
        let cost = CostModel::uniform();
        let d = ged_exact_full(&a, &b, &cost, 2_000_000).unwrap().0;
        // At cutoff = d the search must succeed with the same value.
        match ged_exact(&a, &b, &cost, d, 2_000_000).outcome {
            Outcome::Distance(v) => prop_assert_eq!(v, d),
            other => prop_assert!(false, "expected Distance, got {:?}", other),
        }
        // At cutoff just below d it must report ExceedsCutoff.
        if d > 0.5 {
            match ged_exact(&a, &b, &cost, d - 0.5, 2_000_000).outcome {
                Outcome::ExceedsCutoff => {}
                other => prop_assert!(false, "expected ExceedsCutoff, got {:?}", other),
            }
        }
    }

    #[test]
    fn mutation_distance_bounded_by_edit_count(
        seed in 0u64..300, edits in 0usize..4
    ) {
        // `mutate` applies local edits; each costs at most 2 under uniform
        // costs (AddLeaf/RemoveLeaf = node + edge), so GED ≤ 2 · edits.
        let mut rng = SmallRng::seed_from_u64(seed);
        let base = generate::random_connected(&mut rng, 6, 2, &[0, 1], &[5]);
        let m = generate::mutate(&mut rng, &base, edits, &[0, 1], &[5]);
        let d = ged_exact_full(&base, &m, &CostModel::uniform(), 3_000_000).unwrap().0;
        prop_assert!(d <= 2.0 * edits as f64 + 1e-9, "d = {d}, edits = {edits}");
    }

    #[test]
    fn bp_bound_tight_on_identical_graphs(seed in 0u64..300, n in 2usize..8) {
        let g = graph_from_seed(seed, n);
        prop_assert_eq!(bipartite::bp_upper_bound(&g, &g, &CostModel::uniform()), 0.0);
        prop_assert_eq!(bounds::label_lower_bound(&g, &g, &CostModel::uniform()), 0.0);
    }

    #[test]
    fn non_uniform_costs_stay_sandwiched(
        s1 in 0u64..100, s2 in 0u64..100,
        node_sub in 1u32..=4, edge_indel in 1u32..=3
    ) {
        let cost = CostModel {
            node_sub: node_sub as f64 / 2.0,
            node_indel: 1.0,
            edge_sub: 1.0,
            edge_indel: edge_indel as f64,
        };
        prop_assume!(cost.validate().is_ok());
        let (a, b) = (graph_from_seed(s1, 5), graph_from_seed(s2, 5));
        let exact = ged_exact_full(&a, &b, &cost, 2_000_000).unwrap().0;
        let lb = bounds::label_lower_bound(&a, &b, &cost);
        let ub = bipartite::bp_upper_bound(&a, &b, &cost);
        prop_assert!(lb <= exact + 1e-9);
        prop_assert!(ub >= exact - 1e-9);
    }
}
