//! Quickstart: build a database, build the NB-Index, run a top-k
//! representative query, inspect the answer.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use graphrep::core::{NbIndex, NbIndexConfig};
use graphrep::datagen::{DatasetKind, DatasetSpec};
use graphrep::ged::GedConfig;

fn main() {
    // 1. A graph database: 300 DUD-like molecules, each tagged with a
    //    10-dimensional binding-affinity feature vector.
    let data = DatasetSpec::new(DatasetKind::DudLike, 300, 42).generate();
    println!(
        "database: {} graphs, {} feature dims",
        data.db.len(),
        data.db.dims()
    );

    // 2. Offline: a distance oracle (exact graph edit distance, cached) and
    //    the NB-Index over it.
    let oracle = data.db.oracle(GedConfig::default());
    let index = NbIndex::build(
        oracle.clone(),
        NbIndexConfig {
            num_vps: 12,
            ladder: data.default_ladder.clone(),
            ..NbIndexConfig::default()
        },
    );
    let b = index.build_stats();
    println!(
        "index built in {:.2?} with {} edit-distance computations ({} possible pairs)",
        b.wall,
        b.distance_calls,
        data.db.len() * (data.db.len() - 1) / 2
    );

    // 3. Online: relevance is defined at query time — here, molecules whose
    //    mean binding affinity is in the top quartile.
    let query = data.default_query();
    let relevant = query.relevant_set(&data.db);
    println!("relevant graphs |L_q| = {}", relevant.len());

    // 4. The top-k representative query.
    let k = 8;
    let (answer, stats) = index.query(relevant, data.default_theta, k);
    println!(
        "\ntop-{k} representatives at θ = {} ({} edit distances, {:.2?}):",
        data.default_theta, stats.distance_calls, stats.wall
    );
    for (i, &g) in answer.ids.iter().enumerate() {
        let graph = data.db.graph(g);
        println!(
            "  {}. graph {g:>4}  ({} atoms, {} bonds)  π after pick: {:.3}",
            i + 1,
            graph.node_count(),
            graph.edge_count(),
            answer.pi_trajectory[i]
        );
    }
    println!(
        "\nπ(A) = {:.3}  — the answer set represents {:.1}% of relevant graphs",
        answer.pi(),
        100.0 * answer.pi()
    );
    println!(
        "compression ratio |N_θ(A)|/|A| = {:.1}",
        answer.compression_ratio()
    );
}
