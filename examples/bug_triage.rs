//! Bug triage (paper Table 1, Example 3): summarize the spectrum of
//! crashing call-graph patterns instead of k copies of the loudest bug.
//!
//! Each crash is a function-call graph; the feature vector counts crashes
//! per day over the last week, scored with recency weights. A traditional
//! top-k surfaces the single most frequent bug k times; the representative
//! query surfaces distinct bug classes.
//!
//! ```sh
//! cargo run --release --example bug_triage
//! ```

use graphrep::baselines::traditional_topk;
use graphrep::core::{GraphDatabase, NbIndex, NbIndexConfig, RelevanceQuery, Scorer};
use graphrep::datagen::callgraphs::{self, CallGraphParams};
use graphrep::ged::GedConfig;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let mut rng = SmallRng::seed_from_u64(77);
    let params = CallGraphParams {
        size: 400,
        bugs: 12,
        ..Default::default()
    };
    let crashes = callgraphs::generate(&mut rng, params);
    let family = crashes.family.clone();
    let db = GraphDatabase::new(crashes.graphs, crashes.features, crashes.labels);

    // Recency-weighted crash frequency: yesterday counts 7×, last week 1×.
    let weights: Vec<f64> = (0..params.days).map(|d| (d + 1) as f64).collect();
    let query = RelevanceQuery::top_quantile(&db, Scorer::Weighted(weights), 0.75);
    let relevant = query.relevant_set(&db);
    println!(
        "{} crashes, {} currently-hot (top quartile by weighted frequency)",
        db.len(),
        relevant.len()
    );

    let oracle = db.oracle(GedConfig::default());
    let index = NbIndex::build(
        oracle,
        NbIndexConfig {
            num_vps: 10,
            ladder: vec![2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 20.0],
            ..NbIndexConfig::default()
        },
    );

    let k = 6;
    let theta = 3.0;
    let trad = traditional_topk(&db, &query, k);
    let (rep, _) = index.query(relevant, theta, k);

    let bug_classes = |ids: &[u32]| {
        let mut bugs: Vec<u32> = ids.iter().map(|&g| family[g as usize]).collect();
        bugs.sort_unstable();
        bugs.dedup();
        bugs
    };
    println!(
        "\ntraditional top-{k}: crashes {:?} → bug classes {:?}",
        trad,
        bug_classes(&trad)
    );
    println!(
        "representative top-{k} (θ = {theta}): crashes {:?} → bug classes {:?}",
        rep.ids,
        bug_classes(&rep.ids)
    );
    println!(
        "\nrepresentative answer covers {:.0}% of hot crashes (π = {:.3}, CR = {:.1})",
        100.0 * rep.pi(),
        rep.pi(),
        rep.compression_ratio()
    );
    for (i, &g) in rep.ids.iter().enumerate() {
        let graph = db.graph(g);
        println!(
            "  exemplar {}: crash {g} — {} frames, {} calls, bug class {}",
            i + 1,
            graph.node_count(),
            graph.edge_count(),
            family[g as usize]
        );
    }
}
