//! Information-cascade exploration (paper Table 1, Example 2): the spectrum
//! of cascade shapes discussing a topic set, not k cascades from the single
//! most active community.
//!
//! Relevance is the Jaccard similarity between a cascade's topic set and the
//! query topics — defined entirely at query time, which is the flexibility
//! DisC's static-relevance index cannot offer.
//!
//! ```sh
//! cargo run --release --example cascade_explorer
//! ```

use graphrep::core::{GraphDatabase, NbIndex, NbIndexConfig, RelevanceQuery, Scorer};
use graphrep::datagen::cascades::{self, CascadeParams};
use graphrep::ged::GedConfig;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let mut rng = SmallRng::seed_from_u64(1234);
    let params = CascadeParams {
        size: 500,
        ..Default::default()
    };
    let set = cascades::generate(&mut rng, params);
    let family = set.family.clone();
    let db = GraphDatabase::new(set.graphs, set.features, set.labels);
    let oracle = db.oracle(GedConfig::default());
    let index = NbIndex::build(
        oracle,
        NbIndexConfig {
            num_vps: 10,
            ladder: vec![2.0, 3.0, 4.0, 6.0, 8.0, 12.0],
            ..NbIndexConfig::default()
        },
    );

    // Two different query-time topic sets against ONE index build — the
    // dynamic-relevance scenario of Sec 3.1.
    for (label, topics) in [
        ("sports-ish", vec![0, 1, 2]),
        ("politics-ish", vec![8, 9, 10, 11]),
    ] {
        let query = RelevanceQuery {
            scorer: Scorer::Jaccard(topics.clone()),
            threshold: 0.25,
        };
        let relevant = query.relevant_set(&db);
        if relevant.is_empty() {
            println!("{label}: no cascades match topics {topics:?}");
            continue;
        }
        let (answer, stats) = index.query(relevant.clone(), 3.0, 5);
        println!(
            "{label}: topics {topics:?} → |L_q| = {}, {} edit distances",
            relevant.len(),
            stats.distance_calls
        );
        for &g in &answer.ids {
            let graph = db.graph(g);
            let depthish = graph.node_ids().map(|u| graph.degree(u)).max().unwrap_or(0);
            println!(
                "  cascade {g:>4}: {} reshares, max fan-out {}, community {}, jaccard {:.2}",
                graph.node_count() - 1,
                depthish,
                family[g as usize],
                query.score(&db, g)
            );
        }
        println!(
            "  π = {:.3}, CR = {:.1}\n",
            answer.pi(),
            answer.compression_ratio()
        );
    }
}
