//! Collaboration groups (paper Table 1, Example 4): the most knowledgeable
//! *non-overlapping* groups in a DBLP-style network.
//!
//! Each graph is a 2-hop ego-net labeled by community; a traditional top-k
//! returns heavily overlapping neighborhoods of the same hot community,
//! while the representative query returns groups spread across the network.
//!
//! ```sh
//! cargo run --release --example collaboration_groups
//! ```

use graphrep::baselines::traditional_topk;
use graphrep::core::{NbIndex, NbIndexConfig};
use graphrep::datagen::{DatasetKind, DatasetSpec};
use graphrep::ged::GedConfig;

fn main() {
    let data = DatasetSpec::new(DatasetKind::DblpLike, 500, 55).generate();
    let query = data.default_query();
    let relevant = query.relevant_set(&data.db);
    println!(
        "{} collaboration groups, {} in the top activity quartile",
        data.db.len(),
        relevant.len()
    );

    let oracle = data.db.oracle(GedConfig::default());
    let index = NbIndex::build(
        oracle.clone(),
        NbIndexConfig {
            num_vps: 12,
            ladder: data.default_ladder.clone(),
            ..NbIndexConfig::default()
        },
    );

    let k = 6;
    let theta = data.default_theta;
    let trad = traditional_topk(&data.db, &query, k);
    let (rep, _) = index.query(relevant, theta, k);

    // Structural overlap inside each answer set: count pairs closer than θ.
    let overlapping_pairs = |ids: &[u32]| {
        let mut c = 0;
        for (i, &a) in ids.iter().enumerate() {
            for &b in &ids[i + 1..] {
                if oracle.within(a, b, theta).is_some() {
                    c += 1;
                }
            }
        }
        c
    };

    println!("\ntraditional top-{k} groups: {trad:?}");
    println!(
        "  pairs within θ of each other: {}",
        overlapping_pairs(&trad)
    );
    println!("\nrepresentative top-{k} groups: {:?}", rep.ids);
    println!(
        "  pairs within θ of each other: {}",
        overlapping_pairs(&rep.ids)
    );
    println!(
        "  coverage of active groups: {:.0}% (π = {:.3}), compression ratio {:.1}",
        100.0 * rep.pi(),
        rep.pi(),
        rep.compression_ratio()
    );
    for &g in &rep.ids {
        let graph = data.db.graph(g);
        println!(
            "  group {g:>4}: {} members, {} ties, activity {:.3}",
            graph.node_count(),
            graph.edge_count(),
            query.score(&data.db, g)
        );
    }
}
