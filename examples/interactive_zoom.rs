//! Interactive θ refinement (paper Sec 7 goal 2, Fig 6(i)): finding the
//! right "zoom level" by re-running the search-and-update phase against one
//! initialization, like adjusting zoom in a map application.
//!
//! ```sh
//! cargo run --release --example interactive_zoom
//! ```

use graphrep::core::{NbIndex, NbIndexConfig};
use graphrep::datagen::{DatasetKind, DatasetSpec};
use graphrep::ged::GedConfig;

fn main() {
    let data = DatasetSpec::new(DatasetKind::DblpLike, 400, 11).generate();
    let oracle = data.db.oracle(GedConfig::default());
    let index = NbIndex::build(
        oracle,
        NbIndexConfig {
            num_vps: 12,
            ladder: data.default_ladder.clone(),
            ..NbIndexConfig::default()
        },
    );
    let relevant = data.default_query().relevant_set(&data.db);
    println!("indexed ladder: {:?}", index.ladder().thetas());

    // The initialization phase runs once per relevance function.
    let session = index.start_session(relevant);
    println!(
        "initialization phase: {:.2?} (no edit distances — vantage orderings only)\n",
        session.init_wall()
    );

    // Zoom: start at the default θ, then refine in and out. Each refinement
    // repeats only the search-and-update phase.
    let k = 6;
    let mut theta = data.default_theta;
    for step in 0..6 {
        let (answer, stats) = session.run(theta, k);
        println!(
            "θ = {theta:>5.2}  π(A) = {:.3}  CR = {:>5.1}  slot {:?}  {} edit distances, {:.2?}",
            answer.pi(),
            answer.compression_ratio(),
            stats.ladder_slot,
            stats.distance_calls,
            stats.wall,
        );
        // A plausible analyst loop: too little coverage → zoom out (+10%);
        // plenty of coverage → zoom in (−10%) for tighter exemplars.
        theta = if answer.pi() < 0.3 {
            theta * 1.1
        } else {
            theta * 0.9
        };
        let _ = step;
    }
}
