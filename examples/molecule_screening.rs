//! Molecule screening (paper Sec 8.4, Fig 7): traditional top-k vs top-k
//! representative on an AChE-style target.
//!
//! A traditional top-k returns five near-duplicates from the single
//! highest-scoring scaffold family; the representative query returns five
//! structurally distinct classes, each worth a separate lead-optimization
//! campaign.
//!
//! ```sh
//! cargo run --release --example molecule_screening
//! ```

use graphrep::baselines::traditional_topk;
use graphrep::core::{evaluate_answer, NbIndex, NbIndexConfig, RelevanceQuery, Scorer};
use graphrep::datagen::{DatasetKind, DatasetSpec};
use graphrep::ged::GedConfig;

fn main() {
    let data = DatasetSpec::new(DatasetKind::DudLike, 400, 7).generate();
    // "Binding affinity against AChE": a single target dimension.
    let query = RelevanceQuery::top_quantile(&data.db, Scorer::MeanOfDims(vec![0]), 0.75);
    let relevant = query.relevant_set(&data.db);
    let oracle = data.db.oracle(GedConfig::default());
    let theta = data.default_theta;
    let k = 5;

    let trad = traditional_topk(&data.db, &query, k);

    let index = NbIndex::build(
        oracle.clone(),
        NbIndexConfig {
            num_vps: 12,
            ladder: data.default_ladder.clone(),
            ..NbIndexConfig::default()
        },
    );
    let (rep, _) = index.query(relevant.clone(), theta, k);

    let describe = |ids: &[u32]| {
        for &g in ids {
            let graph = data.db.graph(g);
            println!(
                "    graph {g:>4}: {} atoms / {} bonds, affinity {:.3}, family {}",
                graph.node_count(),
                graph.edge_count(),
                query.score(&data.db, g),
                data.family[g as usize]
            );
        }
    };

    println!("traditional top-{k} (score only):");
    describe(&trad);
    let trad_eval = evaluate_answer(&trad, &relevant, |g| {
        relevant
            .iter()
            .copied()
            .filter(|&r| oracle.within(g, r, theta).is_some())
            .collect()
    });
    println!(
        "  distinct scaffold families: {}",
        distinct_families(&data.family, &trad)
    );
    println!(
        "  π = {:.3}, CR = {:.1}",
        trad_eval.pi(),
        trad_eval.compression_ratio()
    );

    println!("\ntop-{k} representative query (θ = {theta}):");
    describe(&rep.ids);
    println!(
        "  distinct scaffold families: {}",
        distinct_families(&data.family, &rep.ids)
    );
    println!("  π = {:.3}, CR = {:.1}", rep.pi(), rep.compression_ratio());

    // Intra-answer structural diversity: average pairwise edit distance.
    let avg_pairwise = |ids: &[u32]| {
        let mut tot = 0.0;
        let mut cnt = 0.0;
        for (i, &a) in ids.iter().enumerate() {
            for &b in &ids[i + 1..] {
                tot += oracle.distance(a, b);
                cnt += 1.0;
            }
        }
        if cnt == 0.0 {
            0.0
        } else {
            tot / cnt
        }
    };
    println!(
        "\navg pairwise edit distance — traditional: {:.1}, representative: {:.1}",
        avg_pairwise(&trad),
        avg_pairwise(&rep.ids)
    );
}

fn distinct_families(family: &[u32], ids: &[u32]) -> usize {
    let mut fams: Vec<u32> = ids.iter().map(|&g| family[g as usize]).collect();
    fams.sort_unstable();
    fams.dedup();
    fams.len()
}
