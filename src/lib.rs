#![warn(missing_docs)]
#![deny(unsafe_code)]
#![deny(missing_debug_implementations)]

//! # graphrep — top-k representative queries on graph databases
//!
//! A from-scratch Rust implementation of *Answering Top-k Representative
//! Queries on Graph Databases* (SIGMOD 2014): given a graph database with
//! per-graph feature vectors, a query-time relevance function, a graph-edit
//! distance threshold θ and a budget `k`, return the `k` relevant graphs
//! whose θ-neighborhoods cover the most relevant graphs.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`graph`] — the labeled graph data model,
//! * [`ged`] — exact and approximate graph edit distance,
//! * [`metric`] — vantage embeddings, bitsets, distance statistics,
//! * [`core`] — the greedy approximation and the **NB-Index**,
//! * [`baselines`] — DisC, DIV, C-tree, M-tree, distance-matrix and
//!   traditional top-k comparators,
//! * [`datagen`] — synthetic DUD/DBLP/Amazon-like dataset generators.
//!
//! ## Quickstart
//!
//! ```
//! use graphrep::datagen::{DatasetKind, DatasetSpec};
//! use graphrep::core::{NbIndex, NbIndexConfig};
//! use graphrep::ged::GedConfig;
//!
//! // A small DUD-like molecule database.
//! let data = DatasetSpec::new(DatasetKind::DudLike, 120, 7).generate();
//! let oracle = data.db.oracle(GedConfig::default());
//!
//! // Build the NB-Index once, offline.
//! let index = NbIndex::build(oracle, NbIndexConfig {
//!     ladder: data.default_ladder.clone(),
//!     ..NbIndexConfig::default()
//! });
//!
//! // Relevance is defined at query time; ask for 5 representatives.
//! let relevant = data.default_query().relevant_set(&data.db);
//! let (answer, _stats) = index.query(relevant, data.default_theta, 5);
//! assert!(answer.len() <= 5);
//! println!("π(A) = {:.2}", answer.pi());
//! ```

pub use graphrep_baselines as baselines;
pub use graphrep_core as core;
pub use graphrep_datagen as datagen;
pub use graphrep_ged as ged;
pub use graphrep_graph as graph;
pub use graphrep_metric as metric;
