//! Vendored offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API
//! (`lock()`/`read()`/`write()` return guards directly, no `Result`).
//! Poisoning is translated to a panic-propagating `unwrap`-with-recovery:
//! a poisoned std lock yields its inner guard, matching parking_lot's
//! behavior of ignoring panics in other threads.

use std::sync;

pub use sync::{MutexGuard as StdMutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A reader-writer lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// A mutual-exclusion lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
        assert_eq!(l.into_inner(), 6);
    }

    #[test]
    fn mutex_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    *m.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }
}
