//! Vendored offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`/`prop_flat_map`, range and tuple
//! strategies, `collection::{vec, hash_set}`, the `proptest!` macro with an
//! optional `#![proptest_config(..)]` header, and the
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!` macros.
//!
//! Differences from real proptest, deliberate for an offline test shim:
//! inputs are generated from a fixed per-case seed (fully deterministic
//! runs), there is no shrinking (the failing input is reported as-is via
//! `Debug` where available), and rejection sampling is bounded per test.

use rand::rngs::SmallRng;
use rand::Rng;

/// The generator driving input creation.
pub type TestRng = SmallRng;

/// How a single test case ended, when not `Ok`.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case's assumptions did not hold; resample.
    Reject,
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// Constructs a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Test-run configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of (non-rejected) cases to run.
    pub cases: u32,
    /// Maximum rejected samples across the whole run.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases, other settings default.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_global_rejects: 4096,
        }
    }
}

/// A recipe for generating test inputs.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from generated values.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::collections::HashSet;
    use std::hash::Hash;

    /// Sizes a generated collection: a fixed count or a sampled range.
    pub trait SizeRange {
        /// Picks a concrete size.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            if self.is_empty() {
                self.start
            } else {
                rng.gen_range(self.clone())
            }
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// A strategy for `Vec`s of `element` values.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for `HashSet`s of roughly the requested size (duplicate
    /// draws may produce smaller sets; bounded retries top them up).
    pub fn hash_set<S, Z>(element: S, size: Z) -> HashSetStrategy<S, Z>
    where
        S: Strategy,
        S::Value: Hash + Eq,
        Z: SizeRange,
    {
        HashSetStrategy { element, size }
    }

    /// See [`hash_set`].
    pub struct HashSetStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S, Z> Strategy for HashSetStrategy<S, Z>
    where
        S: Strategy,
        S::Value: Hash + Eq,
        Z: SizeRange,
    {
        type Value = HashSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let target = self.size.pick(rng);
            let mut set = HashSet::with_capacity(target);
            let mut attempts = 0usize;
            while set.len() < target && attempts < target.saturating_mul(16) + 16 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

/// The runner invoked by the [`proptest!`] macro expansion.
pub mod test_runner {
    pub use super::{ProptestConfig, TestCaseError};
    use super::{Strategy, TestRng};
    use rand::SeedableRng;

    /// Runs `body` against `config.cases` generated inputs, panicking on the
    /// first failure. Each case uses a fixed seed, so runs are reproducible.
    pub fn run<S: Strategy>(
        config: &ProptestConfig,
        strategy: &S,
        test_name: &str,
        mut body: impl FnMut(S::Value) -> Result<(), TestCaseError>,
    ) {
        let mut rejects = 0u32;
        let mut case = 0u32;
        let mut sample = 0u64;
        while case < config.cases {
            // Decorrelate cases while keeping the whole run deterministic.
            let mut rng = TestRng::seed_from_u64(0x9e3779b9_u64.wrapping_mul(sample + 1));
            sample += 1;
            let input = strategy.generate(&mut rng);
            match body(input) {
                Ok(()) => case += 1,
                Err(TestCaseError::Reject) => {
                    rejects += 1;
                    if rejects > config.max_global_rejects {
                        panic!(
                            "{test_name}: too many rejected inputs \
                             ({rejects} rejects for {case} accepted cases)"
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("{test_name}: case {case} (sample {sample}) failed: {msg}")
                }
            }
        }
    }
}

/// The glob import every property test starts with.
pub mod prelude {
    pub use crate::collection;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    pub use crate::{Just, Strategy};
}

/// Declares property tests: `#[test]` functions whose arguments are drawn
/// from strategies (`arg in strategy`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal: expands each test function inside [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
    )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let __strategy = ( $( $strat, )+ );
                $crate::test_runner::run(
                    &__config,
                    &__strategy,
                    stringify!($name),
                    |( $( $arg, )+ )| {
                        $body
                        Ok(())
                    },
                );
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)
            )));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({:?} vs {:?})",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({:?} vs {:?}): {}",
                stringify!($left), stringify!($right), l, r, format!($($fmt)+)
            )));
        }
    }};
}

/// Fails the current case unless the two values differ.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Rejects the current case (resampled, not counted) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

// Keep a crate-root re-export so macro expansions can use short paths.
pub use collection::SizeRange;

#[allow(unused_imports)]
use prelude as _check_prelude_compiles;

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn small_vec() -> impl Strategy<Value = Vec<u32>> {
        (1usize..6).prop_flat_map(|n| collection::vec(0u32..100, n))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3usize..17, y in 2u32..=5, f in 0.0f64..8.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((2..=5).contains(&y));
            prop_assert!((0.0..8.0).contains(&f), "f = {}", f);
        }

        #[test]
        fn flat_map_respects_inner_size(v in small_vec()) {
            prop_assert!(!v.is_empty() && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn hash_sets_resample_on_reject(
            xs in collection::hash_set(0usize..64, 0..10),
        ) {
            prop_assume!(xs.len() != 3);
            prop_assert_ne!(xs.len(), 3);
        }

        #[test]
        fn maps_apply(x in (0u32..10).prop_map(|v| v * 2)) {
            prop_assert_eq!(x % 2, 0);
            prop_assert!(x < 20);
        }
    }

    #[test]
    fn runs_are_deterministic() {
        use super::Strategy;
        let strat = (0u64..1_000_000, 0.0f64..1.0);
        let mut first = Vec::new();
        super::test_runner::run(&ProptestConfig::with_cases(5), &strat, "det", |pair| {
            first.push(pair);
            Ok(())
        });
        let mut second = Vec::new();
        super::test_runner::run(&ProptestConfig::with_cases(5), &strat, "det", |pair| {
            second.push(pair);
            Ok(())
        });
        assert_eq!(first, second);
        let mut rng = <super::TestRng as rand::SeedableRng>::seed_from_u64(0);
        assert_eq!(Just(7u8).generate(&mut rng), 7);
    }
}
