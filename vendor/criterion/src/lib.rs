//! Vendored offline stand-in for the `criterion` crate.
//!
//! Provides the API the workspace's `harness = false` benches use —
//! `criterion_group!` / `criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function` / `bench_with_input` / `BenchmarkId`, `sample_size`,
//! and `Bencher::iter` — backed by a simple wall-clock loop: a short
//! calibration pass picks an iteration count, then `sample_size` samples
//! are timed and min/median/mean are printed per benchmark.

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level benchmark context.
pub struct Criterion {
    /// Target time per sample; calibration aims each sample at about this.
    sample_target: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_target: Duration::from_millis(50),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            criterion: self,
            samples: 10,
        }
    }

    /// Registers a stand-alone benchmark (group of one).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let mut g = BenchmarkGroup {
            criterion: self,
            samples: 10,
        };
        g.bench_function(name, f);
        self
    }
}

/// A named group sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Times `f`, which should call [`Bencher::iter`] exactly once.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            target: self.criterion.sample_target,
            samples: self.samples,
            report: Vec::new(),
        };
        f(&mut b);
        b.print(name);
        self
    }

    /// Times `f` with an auxiliary input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            target: self.criterion.sample_target,
            samples: self.samples,
            report: Vec::new(),
        };
        f(&mut b, input);
        b.print(&id.to_string());
        self
    }

    /// Ends the group (printing is already done per-benchmark).
    pub fn finish(&mut self) {}
}

/// Identifies one parameterized benchmark.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// An id `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Runs and times one closure.
pub struct Bencher {
    target: Duration,
    samples: usize,
    report: Vec<Duration>,
}

impl Bencher {
    /// Benchmarks `routine`: calibrates an iteration count, then records
    /// `samples` timed samples of per-iteration cost.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibration: run once to estimate cost, then pick iterations so a
        // sample takes roughly `target`.
        let start = Instant::now();
        std_black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (self.target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                std_black_box(routine());
            }
            self.report.push(start.elapsed() / iters as u32);
        }
    }

    fn print(&self, name: &str) {
        if self.report.is_empty() {
            println!("  {name}: no samples recorded");
            return;
        }
        let mut sorted = self.report.clone();
        sorted.sort();
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
        println!(
            "  {name}: min {min:.2?}  median {median:.2?}  mean {mean:.2?}  ({} samples)",
            sorted.len()
        );
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_and_reports() {
        let mut c = Criterion {
            sample_target: Duration::from_micros(200),
        };
        let mut g = c.benchmark_group("test");
        g.sample_size(3);
        let mut calls = 0u64;
        g.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        g.bench_with_input(BenchmarkId::new("param", 4), &4u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.finish();
        assert!(calls > 3);
    }
}
