//! Vendored offline stand-in for `serde_json`, targeting the shim `serde`
//! crate's [`Value`] tree: `to_string` / `to_string_pretty` render the tree
//! to JSON text, `from_str` parses JSON text and rebuilds the caller's type.
//!
//! The emitted JSON is deterministic: struct fields appear in declaration
//! order, floats print via Rust's shortest-round-trip formatting, and map
//! keys are sorted by the shim `serde` impls. Byte-identical output for
//! equal inputs is load-bearing for the workspace's determinism tests.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// A serialization or parse failure.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

// ---------------------------------------------------------------- writing

/// Serializes `value` to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` to indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => {
            let _ = fmt::Write::write_fmt(out, format_args!("{i}"));
        }
        Value::UInt(u) => {
            let _ = fmt::Write::write_fmt(out, format_args!("{u}"));
        }
        Value::Float(f) => {
            // `{:?}` is Rust's shortest representation that round-trips; it
            // always includes a `.` or exponent, so ints and floats stay
            // distinguishable in the output.
            let _ = fmt::Write::write_fmt(out, format_args!("{f:?}"));
        }
        Value::Str(s) => write_string(s, out),
        Value::Arr(items) => write_seq(
            out,
            indent,
            depth,
            '[',
            ']',
            items.iter(),
            |item, out, d| write_value(item, out, indent, d),
        ),
        Value::Obj(entries) => write_seq(
            out,
            indent,
            depth,
            '{',
            '}',
            entries.iter(),
            |(k, v), out, d| {
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(v, out, indent, d)
            },
        ),
    }
}

fn write_seq<T>(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    items: impl ExactSizeIterator<Item = T>,
    mut write_item: impl FnMut(T, &mut String, usize),
) {
    out.push(open);
    let empty = items.len() == 0;
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        write_item(item, out, depth + 1);
    }
    if !empty {
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * depth));
        }
    }
    out.push(close);
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parsing

/// Parses JSON text into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value_str(s)?;
    T::from_value(&value).map_err(|e| Error::new(e.0))
}

fn parse_value_str(s: &str) -> Result<Value, Error> {
    let bytes = s.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(Error::new(format!(
                "unexpected `{}` at byte {}",
                c as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !fractional {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(to_string(&-1.5f64).unwrap(), "-1.5");
        assert_eq!(from_str::<f64>("-1.5").unwrap(), -1.5);
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
    }

    #[test]
    fn vec_and_tuple_round_trip() {
        let v: Vec<(u16, u32)> = vec![(1, 2), (3, 4)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1,2],[3,4]]");
        assert_eq!(from_str::<Vec<(u16, u32)>>(&json).unwrap(), v);
    }

    #[test]
    fn float_precision_survives() {
        for &f in &[0.1f64, 1.0 / 3.0, 1e300, -2.2250738585072014e-308] {
            let json = to_string(&f).unwrap();
            assert_eq!(from_str::<f64>(&json).unwrap(), f);
        }
    }

    #[test]
    fn malformed_input_is_an_error() {
        assert!(from_str::<Vec<u32>>("{not json").is_err());
        assert!(from_str::<Vec<u32>>("[1,2").is_err());
        assert!(from_str::<Vec<u32>>("[1,2] trailing").is_err());
        assert!(from_str::<u32>("").is_err());
    }

    #[test]
    fn pretty_output_is_indented_and_parseable() {
        let v: Vec<Vec<u32>> = vec![vec![1], vec![]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<Vec<u32>>>(&pretty).unwrap(), v);
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(from_str::<String>("\"\\u0041\"").unwrap(), "A");
    }
}
