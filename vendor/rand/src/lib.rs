//! Vendored offline stand-in for the `rand` crate (API-compatible subset).
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the exact API surface it consumes: [`Rng`] with
//! `gen_range`/`gen_bool`/`gen`, [`SeedableRng::seed_from_u64`],
//! [`rngs::SmallRng`], and [`seq::SliceRandom`] (`shuffle`/`choose`).
//!
//! The generator is xoshiro256** seeded through SplitMix64 — the same
//! construction the real `SmallRng` uses on 64-bit targets. Streams are
//! deterministic for a given seed, which is all the reproduction relies on
//! (seeds pin datasets and index builds; no statistical-quality claims are
//! made beyond passing the workspace's own distribution sanity tests).

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next word of the stream.
    fn next_u64(&mut self) -> u64;

    /// The next 32-bit word (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Element types [`Rng::gen_range`] can sample uniformly.
pub trait SampleUniform: Sized {
    /// Uniform value in `[start, end)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;
    /// Uniform value in `[start, end]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                assert!(start < end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64);
                // Debiased multiply-shift (Lemire); span = 0 means full width.
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                let mut x = rng.next_u64();
                let mut m = (x as u128) * (span as u128);
                let mut lo = m as u64;
                if lo < span {
                    let t = span.wrapping_neg() % span;
                    while lo < t {
                        x = rng.next_u64();
                        m = (x as u128) * (span as u128);
                        lo = m as u64;
                    }
                }
                start.wrapping_add((m >> 64) as u64 as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                assert!(start <= end, "cannot sample empty range");
                if end < <$t>::MAX {
                    Self::sample_half_open(rng, start, end + 1)
                } else if start > <$t>::MIN {
                    Self::sample_half_open(rng, start - 1, end).wrapping_add(1)
                } else {
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                assert!(start < end, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                start + unit * (end - start)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                assert!(start <= end, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                start + unit * (end - start)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Ranges that [`Rng::gen_range`] can sample from. The single blanket impl
/// per range shape lets inference unify `T` with the range's element type
/// (matching real rand, where `0.0..1.0` needs no annotation).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        T::sample_inclusive(rng, start, end)
    }
}

/// User-facing random-value methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value from `range` (half-open or inclusive).
    fn gen_range<T, B: SampleRange<T>>(&mut self, range: B) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        <f64 as Standard>::sample(self) < p
    }

    /// A uniform value of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Rngs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as rand_core does for u64 seeds.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the subset we vendor does not distinguish Std from Small.
    pub type StdRng = SmallRng;
}

/// Sequence-related extensions.
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let f = r.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
            let i = r.gen_range(2..=5u32);
            assert!((2..=5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut r = SmallRng::seed_from_u64(9);
        for _ in 0..100 {
            assert!(!r.gen_bool(0.0));
            assert!(r.gen_bool(1.0));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SmallRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_covers_all_elements_eventually() {
        let mut r = SmallRng::seed_from_u64(13);
        let v = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..200 {
            let &x = v.choose(&mut r).unwrap();
            seen[x - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut r).is_none());
    }

    #[test]
    fn rough_uniformity() {
        let mut r = SmallRng::seed_from_u64(17);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[r.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "counts: {counts:?}");
        }
    }
}
