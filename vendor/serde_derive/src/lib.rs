//! Vendored offline stand-in for `serde_derive`.
//!
//! Generates impls of the shim `serde::Serialize` / `serde::Deserialize`
//! traits (the `Value`-tree model) without syn or quote: the input item is
//! walked as raw `proc_macro` token trees and the impl is emitted as a
//! string, then re-parsed into a `TokenStream`.
//!
//! Supported shapes — exactly what this workspace derives on:
//! * structs with named fields (any visibility, no generics);
//! * enums with unit and tuple variants;
//! * field attributes `#[serde(skip)]` and `#[serde(with = "module")]`.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write;

/// Derives the shim `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Which::Serialize)
}

/// Derives the shim `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Which::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Which {
    Serialize,
    Deserialize,
}

struct Field {
    name: String,
    skip: bool,
    with: Option<String>,
}

struct Variant {
    name: String,
    arity: usize,
}

enum Shape {
    Struct(Vec<Field>),
    Enum(Vec<Variant>),
}

fn expand(input: TokenStream, which: Which) -> TokenStream {
    let (name, shape) = parse_item(input);
    let code = match (&shape, which) {
        (Shape::Struct(fields), Which::Serialize) => gen_struct_ser(&name, fields),
        (Shape::Struct(fields), Which::Deserialize) => gen_struct_de(&name, fields),
        (Shape::Enum(variants), Which::Serialize) => gen_enum_ser(&name, variants),
        (Shape::Enum(variants), Which::Deserialize) => gen_enum_de(&name, variants),
    };
    code.parse()
        .unwrap_or_else(|e| panic!("serde_derive generated invalid code for {name}: {e}"))
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> (String, Shape) {
    let mut toks = input.into_iter().peekable();
    // Item-level attributes and visibility.
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                toks.next(); // the [...] group
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                toks.next();
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        toks.next();
                    }
                }
            }
            _ => break,
        }
    }
    let kind = match toks.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive: expected item name, got {other:?}"),
    };
    // No generic types are derived in this workspace; scan to the brace body.
    let body = loop {
        match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                panic!("serde_derive: tuple/unit struct `{name}` is not supported")
            }
            Some(_) => continue,
            None => panic!("serde_derive: no body found for `{name}`"),
        }
    };
    let shape = match kind.as_str() {
        "struct" => Shape::Struct(parse_fields(body.stream())),
        "enum" => Shape::Enum(parse_variants(body.stream())),
        other => panic!("serde_derive: cannot derive on `{other}` items"),
    };
    (name, shape)
}

/// Parses serde field/variant attributes out of one `#[...]` group body.
fn parse_serde_attr(group: TokenStream, skip: &mut bool, with: &mut Option<String>) {
    let mut toks = group.into_iter();
    match toks.next() {
        Some(TokenTree::Ident(i)) if i.to_string() == "serde" => {}
        _ => return, // doc comment or unrelated attribute
    }
    let Some(TokenTree::Group(args)) = toks.next() else {
        return;
    };
    let mut inner = args.stream().into_iter();
    while let Some(tok) = inner.next() {
        if let TokenTree::Ident(i) = &tok {
            match i.to_string().as_str() {
                "skip" => *skip = true,
                "with" => {
                    // `with = "module::path"`
                    inner.next(); // `=`
                    if let Some(TokenTree::Literal(lit)) = inner.next() {
                        let raw = lit.to_string();
                        *with = Some(raw.trim_matches('"').to_string());
                    }
                }
                other => panic!("serde_derive: unsupported attribute `{other}`"),
            }
        }
    }
}

fn parse_fields(body: TokenStream) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut toks = body.into_iter().peekable();
    loop {
        let mut skip = false;
        let mut with = None;
        // Attributes.
        while let Some(TokenTree::Punct(p)) = toks.peek() {
            if p.as_char() != '#' {
                break;
            }
            toks.next();
            if let Some(TokenTree::Group(g)) = toks.next() {
                parse_serde_attr(g.stream(), &mut skip, &mut with);
            }
        }
        // Visibility.
        if let Some(TokenTree::Ident(i)) = toks.peek() {
            if i.to_string() == "pub" {
                toks.next();
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        toks.next();
                    }
                }
            }
        }
        let Some(TokenTree::Ident(name)) = toks.next() else {
            break; // trailing comma or end of body
        };
        fields.push(Field {
            name: name.to_string(),
            skip,
            with,
        });
        toks.next(); // `:`
                     // Skip the type: everything up to a comma outside angle brackets.
        let mut angle = 0i32;
        for tok in toks.by_ref() {
            if let TokenTree::Punct(p) = &tok {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => break,
                    _ => {}
                }
            }
        }
    }
    fields
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut toks = body.into_iter().peekable();
    loop {
        // Attributes (doc comments).
        while let Some(TokenTree::Punct(p)) = toks.peek() {
            if p.as_char() != '#' {
                break;
            }
            toks.next();
            toks.next();
        }
        let Some(TokenTree::Ident(name)) = toks.next() else {
            break;
        };
        let mut arity = 0usize;
        if let Some(TokenTree::Group(g)) = toks.peek() {
            if g.delimiter() == Delimiter::Parenthesis {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                if !inner.is_empty() {
                    let mut angle = 0i32;
                    arity = 1;
                    for tok in &inner {
                        if let TokenTree::Punct(p) = tok {
                            match p.as_char() {
                                '<' => angle += 1,
                                '>' => angle -= 1,
                                ',' if angle == 0 => arity += 1,
                                _ => {}
                            }
                        }
                    }
                    // A trailing comma inside the parens is not a new field.
                    if matches!(inner.last(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
                        arity -= 1;
                    }
                }
                toks.next();
            } else {
                panic!("serde_derive: struct-like enum variant `{name}` is not supported");
            }
        }
        // Skip to the comma separating variants.
        for tok in toks.by_ref() {
            if let TokenTree::Punct(p) = &tok {
                if p.as_char() == ',' {
                    break;
                }
            }
        }
        variants.push(Variant {
            name: name.to_string(),
            arity,
        });
    }
    variants
}

// ---------------------------------------------------------------- codegen

fn gen_struct_ser(name: &str, fields: &[Field]) -> String {
    let mut body = String::new();
    for f in fields.iter().filter(|f| !f.skip) {
        let expr = match &f.with {
            Some(path) => format!("{path}::serialize(&self.{})", f.name),
            None => format!("serde::Serialize::to_value(&self.{})", f.name),
        };
        let _ = writeln!(
            body,
            "        __fields.push((\"{}\".to_string(), {expr}));",
            f.name
        );
    }
    format!(
        "impl serde::Serialize for {name} {{\n\
         \x20   fn to_value(&self) -> serde::Value {{\n\
         \x20       let mut __fields: Vec<(String, serde::Value)> = Vec::new();\n\
         {body}\
         \x20       serde::Value::Obj(__fields)\n\
         \x20   }}\n\
         }}\n"
    )
}

fn gen_struct_de(name: &str, fields: &[Field]) -> String {
    let mut body = String::new();
    for f in fields {
        let expr = if f.skip {
            "::core::default::Default::default()".to_string()
        } else {
            match &f.with {
                Some(path) => format!(
                    "{path}::deserialize(serde::field(__obj, \"{}\", \"{name}\")?)?",
                    f.name
                ),
                None => format!(
                    "serde::Deserialize::from_value(serde::field(__obj, \"{}\", \"{name}\")?)?",
                    f.name
                ),
            }
        };
        let _ = writeln!(body, "            {}: {expr},", f.name);
    }
    format!(
        "impl serde::Deserialize for {name} {{\n\
         \x20   fn from_value(__v: &serde::Value) -> Result<Self, serde::DeError> {{\n\
         \x20       let __obj = __v.as_obj()\n\
         \x20           .ok_or_else(|| serde::DeError::expected(\"object\", \"{name}\"))?;\n\
         \x20       Ok({name} {{\n\
         {body}\
         \x20       }})\n\
         \x20   }}\n\
         }}\n"
    )
}

fn gen_enum_ser(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        if v.arity == 0 {
            let _ = writeln!(
                arms,
                "            {name}::{v} => serde::Value::Str(\"{v}\".to_string()),",
                v = v.name
            );
        } else {
            let binds: Vec<String> = (0..v.arity).map(|i| format!("__f{i}")).collect();
            let inner = if v.arity == 1 {
                "serde::Serialize::to_value(__f0)".to_string()
            } else {
                let elems: Vec<String> = binds
                    .iter()
                    .map(|b| format!("serde::Serialize::to_value({b})"))
                    .collect();
                format!("serde::Value::Arr(vec![{}])", elems.join(", "))
            };
            let _ = writeln!(
                arms,
                "            {name}::{v}({binds}) => serde::Value::Obj(vec![(\"{v}\".to_string(), {inner})]),",
                v = v.name,
                binds = binds.join(", ")
            );
        }
    }
    format!(
        "impl serde::Serialize for {name} {{\n\
         \x20   fn to_value(&self) -> serde::Value {{\n\
         \x20       match self {{\n\
         {arms}\
         \x20       }}\n\
         \x20   }}\n\
         }}\n"
    )
}

fn gen_enum_de(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut tagged_arms = String::new();
    for v in variants {
        if v.arity == 0 {
            let _ = writeln!(
                unit_arms,
                "                \"{v}\" => return Ok({name}::{v}),",
                v = v.name
            );
        } else if v.arity == 1 {
            let _ = writeln!(
                tagged_arms,
                "                \"{v}\" => Ok({name}::{v}(serde::Deserialize::from_value(__inner)?)),",
                v = v.name
            );
        } else {
            let elems: Vec<String> = (0..v.arity)
                .map(|i| format!("serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            let _ = writeln!(
                tagged_arms,
                "                \"{v}\" => {{\n\
                 \x20                   let __items = __inner.as_arr()\n\
                 \x20                       .ok_or_else(|| serde::DeError::expected(\"array\", \"{name}::{v}\"))?;\n\
                 \x20                   if __items.len() != {arity} {{\n\
                 \x20                       return Err(serde::DeError::expected(\"{arity} elements\", \"{name}::{v}\"));\n\
                 \x20                   }}\n\
                 \x20                   Ok({name}::{v}({elems}))\n\
                 \x20               }}",
                v = v.name,
                arity = v.arity,
                elems = elems.join(", ")
            );
        }
    }
    format!(
        "impl serde::Deserialize for {name} {{\n\
         \x20   fn from_value(__v: &serde::Value) -> Result<Self, serde::DeError> {{\n\
         \x20       if let Some(__s) = __v.as_str() {{\n\
         \x20           match __s {{\n\
         {unit_arms}\
         \x20               __other => return Err(serde::DeError(format!(\n\
         \x20                   \"unknown variant `{{__other}}` of {name}\"))),\n\
         \x20           }}\n\
         \x20       }}\n\
         \x20       let __obj = __v.as_obj()\n\
         \x20           .ok_or_else(|| serde::DeError::expected(\"object\", \"{name}\"))?;\n\
         \x20       if __obj.len() != 1 {{\n\
         \x20           return Err(serde::DeError::expected(\"single-key object\", \"{name}\"));\n\
         \x20       }}\n\
         \x20       let (__tag, __inner) = &__obj[0];\n\
         \x20       match __tag.as_str() {{\n\
         {tagged_arms}\
         \x20           __other => Err(serde::DeError(format!(\n\
         \x20               \"unknown variant `{{__other}}` of {name}\"))),\n\
         \x20       }}\n\
         \x20   }}\n\
         }}\n"
    )
}
