//! Vendored offline stand-in for the `rayon` crate.
//!
//! Implements the indexed-parallel-map subset the workspace's parallel GED
//! layer uses: `into_par_iter()` over ranges, `par_iter()` over slices,
//! `.map(..).collect()/for_each(..)`, plus `ThreadPoolBuilder` /
//! `ThreadPool::install` / `current_num_threads` for thread-count control.
//!
//! Execution model: `run_indexed(len, f)` spawns scoped `std::thread`
//! workers that pull indices from a shared atomic cursor (work-stealing by
//! index), accumulate `(index, value)` pairs, and merge them back in index
//! order. Output ordering therefore never depends on thread interleaving —
//! the property the workspace's determinism guarantees rest on.
//!
//! Unlike real rayon, the global thread count may be reconfigured at any
//! time (`build_global` never errors on reuse); tests rely on this to
//! compare threads=1 and threads=N runs inside one process. Workers are
//! scoped `std::thread`s spawned per call rather than a persistent pool —
//! acceptable here because every parallel region in the workspace wraps an
//! NP-hard GED batch that dwarfs thread spawn cost. Workers inherit the
//! caller's scoped thread-count override, so nested parallel calls respect
//! `ThreadPool::install` (e.g. threads=1 pinning) like real rayon would.

use std::cell::Cell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Global thread count; 0 means "auto" (`available_parallelism`).
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Per-thread override installed by [`ThreadPool::install`].
    static SCOPED_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The number of threads parallel calls on this thread will use.
pub fn current_num_threads() -> usize {
    let configured = SCOPED_THREADS
        .with(Cell::get)
        .unwrap_or_else(|| GLOBAL_THREADS.load(Ordering::Relaxed));
    if configured == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        configured
    }
}

/// Error type for pool construction (never produced by this shim, kept for
/// API compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool construction failed")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Configures thread counts.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Starts a builder with automatic thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests `n` threads; 0 means automatic.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Sets the process-global thread count. Reconfigurable at any time.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        GLOBAL_THREADS.store(self.num_threads, Ordering::Relaxed);
        Ok(())
    }

    /// Builds a scoped pool handle.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A handle scoping a thread count over a region of code.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `f` with this pool's thread count in effect on this thread.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = SCOPED_THREADS.with(|c| c.replace(Some(self.num_threads)));
        let result = f();
        SCOPED_THREADS.with(|c| c.set(prev));
        result
    }

    /// This pool's effective thread count.
    pub fn current_num_threads(&self) -> usize {
        if self.num_threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.num_threads
        }
    }
}

/// Evaluates `f(0..len)` across worker threads, returning results in index
/// order regardless of scheduling.
fn run_indexed<T: Send, F: Fn(usize) -> T + Sync>(len: usize, f: F) -> Vec<T> {
    let threads = current_num_threads().min(len);
    if threads <= 1 || len <= 1 {
        return (0..len).map(f).collect();
    }
    // Workers inherit the caller's scoped thread-count override so a nested
    // parallel call inside `f` respects the same `ThreadPool::install` /
    // global configuration as the calling thread (real rayon runs nested
    // work on the same pool). Workers are fresh scoped threads, so there is
    // nothing to restore.
    let scoped = SCOPED_THREADS.with(Cell::get);
    let cursor = AtomicUsize::new(0);
    let mut parts: Vec<Vec<(usize, T)>> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            handles.push(scope.spawn(|| {
                SCOPED_THREADS.with(|c| c.set(scoped));
                let mut local = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= len {
                        break;
                    }
                    local.push((i, f(i)));
                }
                local
            }));
        }
        for h in handles {
            // A worker panic propagates here, matching rayon's behavior of
            // poisoning the join.
            parts.push(h.join().expect("parallel worker panicked"));
        }
    });
    let mut slots: Vec<Option<T>> = (0..len).map(|_| None).collect();
    for (i, v) in parts.into_iter().flatten() {
        slots[i] = Some(v);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index is produced exactly once"))
        .collect()
}

/// An indexed parallel pipeline: `len` items produced by `f(index)`.
pub struct IndexedPar<F, T> {
    len: usize,
    f: F,
    _t: PhantomData<fn() -> T>,
}

impl<T: Send, F: Fn(usize) -> T + Sync> IndexedPar<F, T> {
    /// Chains a per-item transformation.
    pub fn map<U: Send, G: Fn(T) -> U + Sync>(
        self,
        g: G,
    ) -> IndexedPar<impl Fn(usize) -> U + Sync, U> {
        let f = self.f;
        IndexedPar {
            len: self.len,
            f: move |i| g(f(i)),
            _t: PhantomData,
        }
    }

    /// Runs the pipeline, collecting results in index order.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        run_indexed(self.len, self.f).into_iter().collect()
    }

    /// Runs the pipeline for its effects.
    pub fn for_each<G: Fn(T) + Sync>(self, g: G) {
        let f = self.f;
        run_indexed(self.len, move |i| g(f(i)));
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the pipeline is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Starts an indexed pipeline over `0..len`, mapping each index with `f`.
pub fn par_indexed<T: Send, F: Fn(usize) -> T + Sync>(len: usize, f: F) -> IndexedPar<F, T> {
    IndexedPar {
        len,
        f,
        _t: PhantomData,
    }
}

/// `par_iter()` over slices.
pub trait ParallelSlice<T: Sync> {
    /// A pipeline yielding `&T` in index order.
    fn par_iter<'a>(&'a self) -> IndexedPar<impl Fn(usize) -> &'a T + Sync, &'a T>
    where
        T: 'a;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter<'a>(&'a self) -> IndexedPar<impl Fn(usize) -> &'a T + Sync, &'a T>
    where
        T: 'a,
    {
        par_indexed(self.len(), move |i| &self[i])
    }
}

/// `into_par_iter()` over integer ranges.
pub trait ParallelRange {
    /// The integer type.
    type Item: Send;

    /// A pipeline yielding the range's values in order.
    fn into_par_iter(self) -> IndexedPar<impl Fn(usize) -> Self::Item + Sync, Self::Item>;
}

macro_rules! impl_parallel_range {
    ($($t:ty),*) => {$(
        impl ParallelRange for core::ops::Range<$t> {
            type Item = $t;

            fn into_par_iter(
                self,
            ) -> IndexedPar<impl Fn(usize) -> $t + Sync, $t> {
                let start = self.start;
                let len = if self.end > self.start {
                    (self.end - self.start) as usize
                } else {
                    0
                };
                par_indexed(len, move |i| start + i as $t)
            }
        }
    )*};
}
impl_parallel_range!(u32, u64, usize);

/// The glob import mirroring `rayon::prelude::*`.
pub mod prelude {
    pub use crate::{IndexedPar, ParallelRange, ParallelSlice};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn collect_preserves_index_order() {
        let out: Vec<usize> = (0usize..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn slice_par_iter_borrows_in_order() {
        let data: Vec<String> = (0..100).map(|i| format!("v{i}")).collect();
        let lens: Vec<usize> = data.par_iter().map(|s| s.len()).collect();
        assert_eq!(lens, data.iter().map(|s| s.len()).collect::<Vec<usize>>());
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let work = |threads: usize| -> Vec<u64> {
            let pool = ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            pool.install(|| {
                (0u64..500)
                    .into_par_iter()
                    .map(|i| i.wrapping_mul(0x9e3779b97f4a7c15).rotate_left(17))
                    .collect()
            })
        };
        let one = work(1);
        for &n in &[2, 4, 8] {
            assert_eq!(work(n), one, "results differ at {n} threads");
        }
    }

    #[test]
    fn install_scopes_and_restores() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let before = current_num_threads();
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 3);
        assert_eq!(current_num_threads(), before);
    }

    #[test]
    fn build_global_is_reconfigurable() {
        // Scoped installs shield this test from the global it sets.
        let pool1 = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let pool2 = ThreadPoolBuilder::new().num_threads(5).build().unwrap();
        assert_eq!(pool1.install(current_num_threads), 2);
        assert_eq!(pool2.install(current_num_threads), 5);
        assert!(ThreadPoolBuilder::new()
            .num_threads(1)
            .build_global()
            .is_ok());
        assert!(ThreadPoolBuilder::new()
            .num_threads(0)
            .build_global()
            .is_ok());
    }

    #[test]
    fn workers_inherit_scoped_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let counts: Vec<usize> = pool.install(|| {
            (0usize..64)
                .into_par_iter()
                .map(|_| current_num_threads())
                .collect()
        });
        assert!(
            counts.iter().all(|&c| c == 4),
            "workers saw thread counts {counts:?}, expected all 4"
        );
        // A nested parallel call inside a worker also respects the install.
        let pinned = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let nested: Vec<Vec<usize>> = pinned.install(|| {
            (0usize..8)
                .into_par_iter()
                .map(|_| {
                    (0usize..8)
                        .into_par_iter()
                        .map(|_| current_num_threads())
                        .collect()
                })
                .collect()
        });
        assert!(
            nested.iter().flatten().all(|&c| c == 2),
            "nested workers saw {nested:?}, expected all 2"
        );
    }

    #[test]
    fn for_each_visits_every_index() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let sum = AtomicU64::new(0);
        (0u64..100).into_par_iter().for_each(|i| {
            sum.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4950);
    }

    #[test]
    fn empty_and_single_domains() {
        let empty: Vec<u32> = (5u32..5).into_par_iter().collect();
        assert!(empty.is_empty());
        let one: Vec<u32> = (7u32..8).into_par_iter().map(|x| x + 1).collect();
        assert_eq!(one, vec![8]);
    }
}
