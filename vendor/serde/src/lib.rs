//! Vendored offline stand-in for the `serde` crate.
//!
//! Instead of serde's visitor architecture, this shim routes everything
//! through an owned [`Value`] tree: [`Serialize`] renders a value into the
//! tree, [`Deserialize`] rebuilds a value from it, and `serde_json` maps the
//! tree to and from JSON text. The `#[derive(Serialize, Deserialize)]`
//! macros (re-exported from the vendored `serde_derive`) generate those two
//! conversions for structs with named fields and for enums with unit or
//! tuple variants, honoring `#[serde(skip)]` and `#[serde(with = "module")]`.
//!
//! A `with` module implements the simplified contract
//! `fn serialize(&T) -> Value` / `fn deserialize(&Value) -> Result<T, DeError>`.

use std::collections::HashMap;

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data tree every type serializes into.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also non-finite floats).
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer outside `i64` range.
    UInt(u64),
    /// A finite float.
    Float(f64),
    /// A string.
    Str(String),
    /// A sequence.
    Arr(Vec<Value>),
    /// A map with string keys, insertion-ordered.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// The entries if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(entries) => Some(entries),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A one-word description used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }
}

/// A deserialization failure.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl DeError {
    /// "expected X while deserializing Y" constructor.
    pub fn expected(what: &str, context: &str) -> Self {
        DeError(format!("expected {what} while deserializing {context}"))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Looks up a field of a derived struct, by name.
pub fn field<'a>(obj: &'a [(String, Value)], name: &str, ty: &str) -> Result<&'a Value, DeError> {
    obj.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError(format!("missing field `{name}` in {ty}")))
}

/// Types renderable into a [`Value`] tree.
pub trait Serialize {
    /// Renders `self`.
    fn to_value(&self) -> Value;
}

/// Types rebuildable from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds a value, or explains why the tree doesn't fit.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other.kind())),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let wide: i64 = match v {
                    Value::Int(i) => *i,
                    Value::UInt(u) => i64::try_from(*u)
                        .map_err(|_| DeError::expected(stringify!($t), "huge integer"))?,
                    other => return Err(DeError::expected("integer", other.kind())),
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError(format!("{wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = *self as u64;
                match i64::try_from(wide) {
                    Ok(i) => Value::Int(i),
                    Err(_) => Value::UInt(wide),
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let wide: u64 = match v {
                    Value::Int(i) => u64::try_from(*i)
                        .map_err(|_| DeError::expected(stringify!($t), "negative integer"))?,
                    Value::UInt(u) => *u,
                    other => return Err(DeError::expected("integer", other.kind())),
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError(format!("{wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        if self.is_finite() {
            Value::Float(*self)
        } else {
            // JSON has no Infinity/NaN; types that need them round-trip
            // through a `with` adapter (e.g. nbtree's radius encoding).
            Value::Null
        }
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            Value::Null => Ok(f64::NAN),
            other => Err(DeError::expected("number", other.kind())),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        (*self as f64).to_value()
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other.kind())),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other.kind())),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sorted for a stable byte representation.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Obj(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Obj(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(DeError::expected("object", other.kind())),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = v.as_arr().ok_or_else(|| DeError::expected("array", v.kind()))?;
                let want = [$($idx),+].len();
                if items.len() != want {
                    return Err(DeError(format!(
                        "expected {want}-tuple, got array of {}", items.len()
                    )));
                }
                Ok(($($t::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert!(bool::from_value(&true.to_value()).unwrap());
    }

    #[test]
    fn big_u64_round_trips() {
        let big = u64::MAX - 3;
        assert_eq!(u64::from_value(&big.to_value()).unwrap(), big);
    }

    #[test]
    fn vec_of_tuples_round_trips() {
        let v: Vec<(u16, u32)> = vec![(1, 9), (2, 8)];
        assert_eq!(Vec::<(u16, u32)>::from_value(&v.to_value()).unwrap(), v);
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(f64::INFINITY.to_value(), Value::Null);
        assert!(f64::from_value(&Value::Null).unwrap().is_nan());
    }

    #[test]
    fn type_mismatch_errors() {
        assert!(u32::from_value(&Value::Str("x".into())).is_err());
        assert!(String::from_value(&Value::Int(3)).is_err());
        assert!(u32::from_value(&Value::Int(-1)).is_err());
    }
}
